"""Materialized views over UDF results.

A :class:`MaterializedView` records, for one UDF signature, which input keys
have been computed and what output rows each produced.  Keys identify UDF
inputs: ``(frame_id,)`` for detectors, ``(frame_id, bbox_key)`` for patch
classifiers.  A key may map to *zero* output rows (e.g. a frame with no
detections) — recording emptiness is what lets the conditional APPLY
operator skip re-evaluating the UDF on such inputs.

Views live in memory and can be serialized through the columnar format to
measure the storage footprint the paper reports in section 5.2 (~0.09 % of
the video's size).
"""

from __future__ import annotations

import io
import json
import threading
from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.errors import StorageError
from repro.types import BoundingBox

Key = tuple[Hashable, ...]


class MaterializedView:
    """Append-only map from UDF input keys to tuples of output rows."""

    def __init__(self, name: str, key_columns: list[str],
                 output_columns: list[str]):
        if not key_columns:
            raise StorageError(f"view {name!r} needs at least one key column")
        self.name = name
        self.key_columns = list(key_columns)
        self.output_columns = list(output_columns)
        self._entries: dict[Key, tuple[dict, ...]] = {}
        #: Lazily-built secondary index: first key component -> keys.
        #: Used by fuzzy bounding-box reuse to enumerate a frame's boxes.
        self._prefix_index: dict[Hashable, list[Key]] | None = None
        #: Guards the entries/prefix-index pair.  Without it, a lazy index
        #: build racing a concurrent :meth:`put` could either miss the new
        #: key (put saw ``_prefix_index is None`` mid-build) or record it
        #: twice (build snapshot already contained it and put appended
        #: again) — so *every* mutation and the build run under this lock.
        #: Uncontended acquisition is tens of nanoseconds, irrelevant next
        #: to the dict work it protects.
        self._lock = threading.Lock()

    # -- writes ----------------------------------------------------------------

    def put(self, key: Key, rows: Iterable[Mapping]) -> bool:
        """Record that ``key`` was computed, producing ``rows``.

        Re-putting an existing key is a no-op (results are deterministic, so
        the stored rows are already correct); this makes concurrent appends
        from overlapping queries idempotent.  Returns True when the key was
        newly added (callers use this for write attribution).
        """
        stored = tuple(
            {col: row[col] for col in self.output_columns} for row in rows)
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = stored
            if self._prefix_index is not None:
                self._prefix_index.setdefault(key[0], []).append(key)
        return True

    def put_many(self, items: Iterable[tuple[Key, Iterable[Mapping]]]
                 ) -> list[bool]:
        """Bulk :meth:`put` under **one** lock acquisition.

        Returns one inserted-flag per item (in input order): True when the
        key was newly added, False when it already existed (including keys
        duplicated earlier in ``items`` — the first occurrence wins, the
        way sequential :meth:`put` calls behave).  Callers use the flags
        for write attribution and for charging materialization costs
        per-key.
        """
        prepared = [
            (key,
             tuple({col: row[col] for col in self.output_columns}
                   for row in rows))
            for key, rows in items
        ]
        inserted: list[bool] = []
        with self._lock:
            for key, stored in prepared:
                if key in self._entries:
                    inserted.append(False)
                    continue
                self._entries[key] = stored
                if self._prefix_index is not None:
                    self._prefix_index.setdefault(key[0], []).append(key)
                inserted.append(True)
        return inserted

    # -- reads ------------------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def get(self, key: Key) -> tuple[dict, ...] | None:
        """Stored output rows for ``key``, or None if never computed."""
        return self._entries.get(key)

    def get_many(self, keys: Iterable[Key]
                 ) -> list[tuple[dict, ...] | None]:
        """Bulk :meth:`get`: one result slot per key, in input order.

        The whole probe runs under one lock acquisition — this is what
        lets the vectorized APPLY operators resolve a batch's hits and
        misses without taking the view lock once per row.
        """
        entries = self._entries
        with self._lock:
            return [entries.get(key) for key in keys]

    def keys(self) -> Iterable[Key]:
        return self._entries.keys()

    def keys_with_prefix(self, first_component: Hashable) -> list[Key]:
        """All keys whose first component equals ``first_component``.

        Backs fuzzy bounding-box reuse: enumerate the stored boxes of one
        frame to find a spatial near-match.  The index is built lazily on
        first call and kept consistent by :meth:`put` afterwards; both run
        under the view lock so keys added before and after the first build
        are indexed exactly once.
        """
        with self._lock:
            if self._prefix_index is None:
                index: dict[Hashable, list[Key]] = {}
                for key in self._entries:
                    index.setdefault(key[0], []).append(key)
                self._prefix_index = index
            return list(self._prefix_index.get(first_component, ()))

    @property
    def num_keys(self) -> int:
        return len(self._entries)

    @property
    def num_output_rows(self) -> int:
        return sum(len(rows) for rows in self._entries.values())

    # -- serialization ----------------------------------------------------------

    def serialized_bytes(self) -> int:
        """Bytes this view occupies when serialized (compressed)."""
        return len(self.serialize())

    def serialize(self) -> bytes:
        """Serialize all entries (compressed npz + JSON payloads)."""
        with self._lock:
            entries = list(self._entries.items())
        keys_flat: list[list] = []
        rows_flat: list[tuple[int, dict]] = []
        for idx, (key, rows) in enumerate(entries):
            keys_flat.append([_jsonable(part) for part in key])
            for row in rows:
                rows_flat.append((idx, row))
        buffer = io.BytesIO()
        arrays = {
            "keys": _to_json_array(keys_flat),
            "row_keys": np.asarray([i for i, _ in rows_flat],
                                   dtype=np.int64),
        }
        for col in self.output_columns:
            arrays[f"col_{col}"] = _to_json_array(
                [_jsonable(row[col]) for _, row in rows_flat])
        np.savez_compressed(buffer, **arrays)
        return buffer.getvalue()

    @classmethod
    def deserialize(cls, name: str, key_columns: list[str],
                    output_columns: list[str],
                    payload: bytes) -> "MaterializedView":
        """Rebuild a view previously produced by :meth:`serialize`."""
        view = cls(name, key_columns, output_columns)
        with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
            keys_flat = _from_json_array(arrays["keys"])
            row_keys = [int(v) for v in arrays["row_keys"]]
            columns = {col: _from_json_array(arrays[f"col_{col}"])
                       for col in output_columns}
        rows_by_key: dict[int, list[dict]] = {i: [] for i in
                                              range(len(keys_flat))}
        for position, key_index in enumerate(row_keys):
            rows_by_key[key_index].append({
                col: _from_jsonable(columns[col][position])
                for col in output_columns})
        for index, raw_key in enumerate(keys_flat):
            key = tuple(_from_jsonable(part) for part in raw_key)
            view.put(key, rows_by_key[index])
        return view


class ViewStore:
    """All materialized views of a session, by view name."""

    def __init__(self) -> None:
        self._views: dict[str, MaterializedView] = {}
        #: Guards the name -> view map.  Two threads racing to create the
        #: same view must receive the *same* instance, or one thread's
        #: entries would be silently lost when the other's map write wins.
        self._lock = threading.Lock()

    def create_or_get(self, name: str, key_columns: list[str],
                      output_columns: list[str]) -> MaterializedView:
        with self._lock:
            view = self._views.get(name)
            if view is None:
                view = MaterializedView(name, key_columns, output_columns)
                self._views[name] = view
                return view
        if (view.key_columns != list(key_columns)
                or view.output_columns != list(output_columns)):
            raise StorageError(
                f"view {name!r} exists with a different layout")
        return view

    def get(self, name: str) -> MaterializedView | None:
        return self._views.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._views)

    def total_serialized_bytes(self) -> int:
        with self._lock:
            views = list(self._views.values())
        return sum(v.serialized_bytes() for v in views)

    def drop(self, name: str) -> bool:
        """Evict one view; returns whether it existed.

        Single-view eviction is the primitive the server's storage-budget
        policies build on (drop the coldest view when over budget).
        """
        with self._lock:
            return self._views.pop(name, None) is not None

    def drop_all(self) -> None:
        with self._lock:
            self._views.clear()

    # -- persistence -------------------------------------------------------------

    def save_to(self, directory) -> int:
        """Persist every view under ``directory``; returns bytes written."""
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = []
        total = 0
        for index, (name, view) in enumerate(sorted(self._views.items())):
            filename = f"view_{index:04d}.npz"
            payload = view.serialize()
            (directory / filename).write_bytes(payload)
            total += len(payload)
            manifest.append({
                "name": name,
                "file": filename,
                "key_columns": view.key_columns,
                "output_columns": view.output_columns,
            })
        manifest_bytes = json.dumps(manifest, indent=2).encode("utf-8")
        (directory / "views.json").write_bytes(manifest_bytes)
        return total + len(manifest_bytes)

    @classmethod
    def load_from(cls, directory) -> "ViewStore":
        """Rebuild a store previously written by :meth:`save_to`."""
        from pathlib import Path

        directory = Path(directory)
        manifest_path = directory / "views.json"
        if not manifest_path.exists():
            raise StorageError(f"no view store at {directory}")
        store = cls()
        for entry in json.loads(manifest_path.read_text("utf-8")):
            payload = (directory / entry["file"]).read_bytes()
            view = MaterializedView.deserialize(
                entry["name"], entry["key_columns"],
                entry["output_columns"], payload)
            store._views[entry["name"]] = view
        return store


def _jsonable(value):
    if isinstance(value, BoundingBox):
        return ["__bbox__", value.x1, value.y1, value.x2, value.y2]
    if isinstance(value, tuple):
        return ["__tuple__"] + [_jsonable(v) for v in value]
    return value


def _from_jsonable(value):
    if isinstance(value, list):
        if value and value[0] == "__bbox__":
            return BoundingBox(*value[1:])
        if value and value[0] == "__tuple__":
            return tuple(_from_jsonable(v) for v in value[1:])
        return tuple(_from_jsonable(v) for v in value)
    return value


def _to_json_array(values: list) -> np.ndarray:
    payload = json.dumps(values).encode("utf-8")
    return np.frombuffer(payload, dtype=np.uint8)


def _from_json_array(array: np.ndarray) -> list:
    return json.loads(array.tobytes().decode("utf-8"))
