"""Materialized views over UDF results.

A :class:`MaterializedView` records, for one UDF signature, which input keys
have been computed and what output rows each produced.  Keys identify UDF
inputs: ``(frame_id,)`` for detectors, ``(frame_id, bbox_key)`` for patch
classifiers.  A key may map to *zero* output rows (e.g. a frame with no
detections) — recording emptiness is what lets the conditional APPLY
operator skip re-evaluating the UDF on such inputs.

Views live in memory and can be serialized through the columnar format to
measure the storage footprint the paper reports in section 5.2 (~0.09 % of
the video's size).
"""

from __future__ import annotations

import io
import json
import threading
from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.errors import StorageError
from repro.obs.lineage import (
    record_view_create,
    record_view_probe,
    record_view_probe_many,
    record_view_write,
    suppress_lineage,
)
from repro.types import BoundingBox

Key = tuple[Hashable, ...]

#: Serialized size of an *empty* view (npz container + headers); measured
#: 576 bytes for a two-column layout, rounded down so the estimate stays
#: a mild over-approximation only through the payload term.
SERIALIZED_BASE_OVERHEAD = 512

#: Compressed-bytes per raw-JSON-payload byte.  Calibrated against real
#: query output (detector views compress to 0.33, patch-classifier views
#: to 0.20 of their raw JSON); 0.35 over-estimates both slightly, which
#: is the safe direction for byte-budget enforcement.
SERIALIZED_COMPRESSION_FACTOR = 0.35


class MaterializedView:
    """Append-only map from UDF input keys to tuples of output rows."""

    def __init__(self, name: str, key_columns: list[str],
                 output_columns: list[str]):
        if not key_columns:
            raise StorageError(f"view {name!r} needs at least one key column")
        self.name = name
        self.key_columns = list(key_columns)
        self.output_columns = list(output_columns)
        #: Optional write observer (duck-typed; see ``repro.store``): gets
        #: ``view_put(view, key, rows)`` / ``view_put_many(view, items)``
        #: after inserts commit, *outside* the view lock.  Durable backends
        #: use this to append WAL records; re-put no-ops are not reported.
        self.listener = None
        self._entries: dict[Key, tuple[dict, ...]] = {}
        #: Running raw-JSON payload size, maintained by put/put_many so
        #: :meth:`serialized_bytes` is O(1) — it is the eviction hot path.
        self._approx_payload_bytes = 0
        #: Lazily-built secondary index: first key component -> keys.
        #: Used by fuzzy bounding-box reuse to enumerate a frame's boxes.
        self._prefix_index: dict[Hashable, list[Key]] | None = None
        #: Opaque scratch space for data *derived* from stored entries
        #: (e.g. the executor's decoded view-hit cache).  The view is
        #: append-only — a key's rows never change once stored — so
        #: derived entries can never go stale; the cache simply dies with
        #: the view object (eviction, restart) and is never serialized.
        self.runtime_cache: dict = {}
        #: Guards the entries/prefix-index pair.  Without it, a lazy index
        #: build racing a concurrent :meth:`put` could either miss the new
        #: key (put saw ``_prefix_index is None`` mid-build) or record it
        #: twice (build snapshot already contained it and put appended
        #: again) — so *every* mutation and the build run under this lock.
        #: Uncontended acquisition is tens of nanoseconds, irrelevant next
        #: to the dict work it protects.
        self._lock = threading.Lock()

    # -- writes ----------------------------------------------------------------

    def put(self, key: Key, rows: Iterable[Mapping]) -> bool:
        """Record that ``key`` was computed, producing ``rows``.

        Re-putting an existing key is a no-op (results are deterministic, so
        the stored rows are already correct); this makes concurrent appends
        from overlapping queries idempotent.  Returns True when the key was
        newly added (callers use this for write attribution).
        """
        stored = tuple(
            {col: row[col] for col in self.output_columns} for row in rows)
        nbytes = _payload_bytes(key, stored)
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = stored
            self._approx_payload_bytes += nbytes
            if self._prefix_index is not None:
                self._prefix_index.setdefault(key[0], []).append(key)
        listener = self.listener
        if listener is not None:
            listener.view_put(self, key, stored)
        record_view_write(self.name, ((key, stored),))
        return True

    def put_many(self, items: Iterable[tuple[Key, Iterable[Mapping]]]
                 ) -> list[bool]:
        """Bulk :meth:`put` under **one** lock acquisition.

        Returns one inserted-flag per item (in input order): True when the
        key was newly added, False when it already existed (including keys
        duplicated earlier in ``items`` — the first occurrence wins, the
        way sequential :meth:`put` calls behave).  Callers use the flags
        for write attribution and for charging materialization costs
        per-key.
        """
        prepared = [
            (key,
             tuple({col: row[col] for col in self.output_columns}
                   for row in rows))
            for key, rows in items
        ]
        inserted: list[bool] = []
        fresh: list[tuple[Key, tuple[dict, ...]]] = []
        with self._lock:
            for key, stored in prepared:
                if key in self._entries:
                    inserted.append(False)
                    continue
                self._entries[key] = stored
                self._approx_payload_bytes += _payload_bytes(key, stored)
                if self._prefix_index is not None:
                    self._prefix_index.setdefault(key[0], []).append(key)
                inserted.append(True)
                fresh.append((key, stored))
        listener = self.listener
        if listener is not None and fresh:
            listener.view_put_many(self, fresh)
        record_view_write(self.name, fresh)
        return inserted

    # -- reads ------------------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def get(self, key: Key) -> tuple[dict, ...] | None:
        """Stored output rows for ``key``, or None if never computed."""
        rows = self._entries.get(key)
        record_view_probe(self.name, rows)
        return rows

    def get_many(self, keys: Iterable[Key]
                 ) -> list[tuple[dict, ...] | None]:
        """Bulk :meth:`get`: one result slot per key, in input order.

        The whole probe runs under one lock acquisition — this is what
        lets the vectorized APPLY operators resolve a batch's hits and
        misses without taking the view lock once per row.
        """
        entries = self._entries
        with self._lock:
            found = [entries.get(key) for key in keys]
        record_view_probe_many(self.name, found)
        return found

    def keys(self) -> Iterable[Key]:
        return self._entries.keys()

    def keys_with_prefix(self, first_component: Hashable) -> list[Key]:
        """All keys whose first component equals ``first_component``.

        Backs fuzzy bounding-box reuse: enumerate the stored boxes of one
        frame to find a spatial near-match.  The index is built lazily on
        first call and kept consistent by :meth:`put` afterwards; both run
        under the view lock so keys added before and after the first build
        are indexed exactly once.
        """
        with self._lock:
            if self._prefix_index is None:
                index: dict[Hashable, list[Key]] = {}
                for key in self._entries:
                    index.setdefault(key[0], []).append(key)
                self._prefix_index = index
            return list(self._prefix_index.get(first_component, ()))

    @property
    def num_keys(self) -> int:
        return len(self._entries)

    def items(self) -> list[tuple[Key, tuple[dict, ...]]]:
        """Consistent snapshot of all (key, rows) entries under the lock."""
        with self._lock:
            return list(self._entries.items())

    @property
    def num_output_rows(self) -> int:
        return sum(len(rows) for rows in self._entries.values())

    # -- serialization ----------------------------------------------------------

    def serialized_bytes(self) -> int:
        """Estimated compressed size of :meth:`serialize` output, in O(1).

        Maintained incrementally from the raw JSON payload written per
        insert; :meth:`serialize` itself remains exact.  Calibrated to
        over-estimate real views by 1.05–1.75x — byte-budget policies
        built on it (tier eviction, footprint caps) err conservative.
        """
        return SERIALIZED_BASE_OVERHEAD + int(
            self._approx_payload_bytes * SERIALIZED_COMPRESSION_FACTOR)

    def serialize(self) -> bytes:
        """Serialize all entries (compressed npz + JSON payloads)."""
        with self._lock:
            entries = list(self._entries.items())
        keys_flat: list[list] = []
        rows_flat: list[tuple[int, dict]] = []
        for idx, (key, rows) in enumerate(entries):
            keys_flat.append([_jsonable(part) for part in key])
            for row in rows:
                rows_flat.append((idx, row))
        buffer = io.BytesIO()
        arrays = {
            "keys": _to_json_array(keys_flat),
            "row_keys": np.asarray([i for i, _ in rows_flat],
                                   dtype=np.int64),
        }
        for col in self.output_columns:
            arrays[f"col_{col}"] = _to_json_array(
                [_jsonable(row[col]) for _, row in rows_flat])
        np.savez_compressed(buffer, **arrays)
        return buffer.getvalue()

    @classmethod
    def deserialize(cls, name: str, key_columns: list[str],
                    output_columns: list[str],
                    payload: bytes) -> "MaterializedView":
        """Rebuild a view previously produced by :meth:`serialize`."""
        view = cls(name, key_columns, output_columns)
        with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
            keys_flat = _from_json_array(arrays["keys"])
            row_keys = [int(v) for v in arrays["row_keys"]]
            columns = {col: _from_json_array(arrays[f"col_{col}"])
                       for col in output_columns}
        rows_by_key: dict[int, list[dict]] = {i: [] for i in
                                              range(len(keys_flat))}
        for position, key_index in enumerate(row_keys):
            rows_by_key[key_index].append({
                col: _from_jsonable(columns[col][position])
                for col in output_columns})
        # Replaying stored entries is not query work: without the
        # suppression, a warm-tier promotion happening mid-query would
        # attribute the whole view's materialization to that query.
        with suppress_lineage():
            for index, raw_key in enumerate(keys_flat):
                key = tuple(_from_jsonable(part) for part in raw_key)
                view.put(key, rows_by_key[index])
        return view


class ViewStore:
    """All materialized views of a session, by view name."""

    def __init__(self) -> None:
        self._views: dict[str, MaterializedView] = {}
        #: Pluggable durability backend (duck-typed; see ``repro.store``):
        #: gets ``view_created(view)`` after a view is registered and
        #: ``view_dropped(name)`` after one is removed.  ``None`` (the
        #: default) keeps the store purely in-memory with zero overhead.
        self.backend = None
        #: Optional :class:`repro.obs.lineage.ViewLedger`: told about
        #: creations (generation bump) and drops.  Like ``backend`` it is
        #: duck-typed and defaults to None for zero overhead.
        self.ledger = None
        #: Guards the name -> view map.  Two threads racing to create the
        #: same view must receive the *same* instance, or one thread's
        #: entries would be silently lost when the other's map write wins.
        self._lock = threading.Lock()

    def create_or_get(self, name: str, key_columns: list[str],
                      output_columns: list[str]) -> MaterializedView:
        with self._lock:
            view = self._views.get(name)
            if view is None:
                view = MaterializedView(name, key_columns, output_columns)
                backend = self.backend
                if backend is not None:
                    # Log the creation and attach the WAL listener *before*
                    # the view becomes reachable through the map — a racing
                    # writer must never see a view whose puts would miss
                    # the WAL.  Creation is rare (once per view name), so
                    # the control-log fsync under the lock is immaterial.
                    backend.view_created(view)
                ledger = self.ledger
                if ledger is not None:
                    ledger.on_create(name, key_columns, output_columns)
                    record_view_create(name)
                self._views[name] = view
                return view
        if (view.key_columns != list(key_columns)
                or view.output_columns != list(output_columns)):
            raise StorageError(
                f"view {name!r} exists with a different layout")
        return view

    def get(self, name: str) -> MaterializedView | None:
        return self._views.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._views)

    def total_serialized_bytes(self) -> int:
        with self._lock:
            views = list(self._views.values())
        return sum(v.serialized_bytes() for v in views)

    def view_bytes(self, names) -> dict[str, int]:
        """Serialized sizes of the named resident views.

        Observability-path accessor: no promotion, no per-view lock
        acquisition (``serialized_bytes`` is O(1)), so the lineage
        ledger's post-query fold cannot perturb flight-record stage
        attribution or the durable store's tiering.
        """
        sizes: dict[str, int] = {}
        with self._lock:
            for name in names:
                view = self._views.get(name)
                if view is not None:
                    sizes[name] = view.serialized_bytes()
        return sizes

    def drop(self, name: str, *, reason: str = "drop") -> int:
        """Evict one view; returns the (estimated) bytes it freed, 0 if
        the view did not exist.  ``reason`` feeds the lineage ledger's
        status (``"evicted"`` marks budget evictions).

        An existing view always frees a non-zero amount (the serialized
        container overhead), so truthiness still answers "did it exist".
        Single-view eviction is the primitive the server's storage-budget
        policies build on (drop the coldest view when over budget); the
        durability backend is told *after* the map removal so the
        tombstone it logs cannot race a resurrection through
        :meth:`create_or_get` (which would re-log a create afterwards).
        """
        with self._lock:
            view = self._views.pop(name, None)
        if view is None:
            return 0
        freed = view.serialized_bytes()
        view.listener = None
        ledger = self.ledger
        if ledger is not None:
            ledger.on_drop(name, reason=reason)
        backend = self.backend
        if backend is not None:
            backend.view_dropped(name)
        return freed

    def drop_all(self) -> int:
        """Drop every view; returns the total (estimated) bytes freed."""
        with self._lock:
            names = list(self._views)
        return sum(self.drop(name) for name in names)

    # -- persistence -------------------------------------------------------------

    def save_to(self, directory) -> int:
        """Persist every view under ``directory``; returns bytes written."""
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = []
        total = 0
        for index, (name, view) in enumerate(sorted(self._views.items())):
            filename = f"view_{index:04d}.npz"
            payload = view.serialize()
            (directory / filename).write_bytes(payload)
            total += len(payload)
            manifest.append({
                "name": name,
                "file": filename,
                "key_columns": view.key_columns,
                "output_columns": view.output_columns,
            })
        manifest_bytes = json.dumps(manifest, indent=2).encode("utf-8")
        (directory / "views.json").write_bytes(manifest_bytes)
        return total + len(manifest_bytes)

    @classmethod
    def load_from(cls, directory) -> "ViewStore":
        """Rebuild a store previously written by :meth:`save_to`."""
        from pathlib import Path

        directory = Path(directory)
        manifest_path = directory / "views.json"
        if not manifest_path.exists():
            raise StorageError(f"no view store at {directory}")
        store = cls()
        for entry in json.loads(manifest_path.read_text("utf-8")):
            payload = (directory / entry["file"]).read_bytes()
            view = MaterializedView.deserialize(
                entry["name"], entry["key_columns"],
                entry["output_columns"], payload)
            store._views[entry["name"]] = view
        return store


def _payload_bytes(key: Key, stored: tuple[dict, ...]) -> int:
    """Raw JSON size of one entry — the unit the running estimate sums."""
    nbytes = len(json.dumps([_jsonable(part) for part in key]))
    for row in stored:
        for value in row.values():
            nbytes += len(json.dumps(_jsonable(value)))
    return nbytes


def _jsonable(value):
    if isinstance(value, BoundingBox):
        return ["__bbox__", value.x1, value.y1, value.x2, value.y2]
    if isinstance(value, tuple):
        return ["__tuple__"] + [_jsonable(v) for v in value]
    return value


def _from_jsonable(value):
    if isinstance(value, list):
        if value and value[0] == "__bbox__":
            return BoundingBox(*value[1:])
        if value and value[0] == "__tuple__":
            return tuple(_from_jsonable(v) for v in value[1:])
        return tuple(_from_jsonable(v) for v in value)
    return value


def _to_json_array(values: list) -> np.ndarray:
    payload = json.dumps(values).encode("utf-8")
    return np.frombuffer(payload, dtype=np.uint8)


def _from_json_array(array: np.ndarray) -> list:
    return json.loads(array.tobytes().decode("utf-8"))
