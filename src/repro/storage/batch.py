"""Column-oriented batches: the unit of data flow between operators.

A :class:`Batch` holds named columns of equal length.  Values are arbitrary
Python objects (ints, strings, :class:`~repro.types.BoundingBox`, frame
handles), so batches can carry video frames and model outputs alike.  The
execution engine streams batches between physical operators, mirroring the
paper's batch-level processing (section 5.3).

Row-subset transforms (``take`` / ``filter_mask`` / ``slice``) are
zero-copy: they return :class:`ColumnView` columns — a (base, indices)
indirection over the source column — instead of copying every value.  The
selection index list is built once per batch and shared by every column, so
selecting k rows out of an n-row, c-column batch costs O(k + c) instead of
O(k * c); columns that are never read downstream are never copied at all.
A view materializes (copies) lazily, at most once, on first element access.
Batches are immutable by convention, which is what makes the aliasing safe;
:func:`aliasing_debug` turns on a checker that verifies the convention.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import ExecutorError


class _DebugState:
    """Process-wide state for the debug-mode aliasing checker.

    Disabled by default (zero overhead beyond a truthiness check on the
    cold paths).  When enabled via :func:`aliasing_debug`, every view
    records the length of its base column at creation time and re-checks
    it at materialization time — a mutated base (the one way aliasing can
    go wrong under the immutable-by-convention contract) is reported as an
    :class:`ExecutorError` instead of silent corruption.  The checker also
    counts column-list allocations, which the ``Batch.concat`` unit test
    uses to pin the one-allocation-per-output-column guarantee.
    """

    __slots__ = ("enabled", "column_allocations", "view_creations",
                 "materializations", "_base_lengths")

    def __init__(self) -> None:
        self.enabled = False
        self.column_allocations = 0
        self.view_creations = 0
        self.materializations = 0
        self._base_lengths: dict[int, int] = {}

    def reset(self) -> None:
        self.column_allocations = 0
        self.view_creations = 0
        self.materializations = 0
        self._base_lengths.clear()

    def note_view(self, base: list) -> None:
        self.view_creations += 1
        key = id(base)
        recorded = self._base_lengths.get(key)
        if recorded is None:
            self._base_lengths[key] = len(base)
        elif recorded != len(base):
            raise ExecutorError(
                f"aliasing violation: base column length changed from "
                f"{recorded} to {len(base)} while views were outstanding")

    def note_allocation(self) -> None:
        self.column_allocations += 1

    def check_base(self, base: list) -> None:
        recorded = self._base_lengths.get(id(base))
        if recorded is not None and recorded != len(base):
            raise ExecutorError(
                f"aliasing violation: base column mutated ({recorded} -> "
                f"{len(base)} values) after a zero-copy view was taken")


_debug = _DebugState()


@contextlib.contextmanager
def aliasing_debug():
    """Enable the aliasing checker for a ``with`` block.

    Yields the debug-state object so tests can read
    ``column_allocations`` / ``view_creations`` / ``materializations``.
    Counters are reset on entry.  Not reentrant.
    """
    _debug.reset()
    _debug.enabled = True
    try:
        yield _debug
    finally:
        _debug.enabled = False
        _debug.reset()


class ColumnView(Sequence):
    """A zero-copy view over a base column list.

    Either a contiguous range (``start``/``stop``) or an explicit index
    list selects rows from ``base``.  Length is O(1); element access goes
    through a lazily cached materialization, so a view costs nothing until
    (unless) it is actually read, and at most one copy ever.  Index lists
    are shared between all columns of the batch that created the views.
    """

    __slots__ = ("_base", "_indices", "_start", "_stop", "_materialized")

    def __init__(self, base: list, indices: list | None = None,
                 start: int = 0, stop: int | None = None):
        self._base = base
        self._indices = indices
        self._materialized: list | None = None
        if indices is None:
            self._start = start
            self._stop = len(base) if stop is None else stop
        else:
            self._start = 0
            self._stop = len(indices)
        if _debug.enabled:
            _debug.note_view(base)

    def __len__(self) -> int:
        indices = self._indices
        if indices is not None:
            return len(indices)
        return self._stop - self._start

    def materialized(self) -> list:
        """The selected values as a real list (computed once, cached)."""
        values = self._materialized
        if values is None:
            base = self._base
            if _debug.enabled:
                _debug.check_base(base)
                _debug.materializations += 1
                _debug.note_allocation()
            indices = self._indices
            if indices is None:
                values = base[self._start:self._stop]
            else:
                values = list(map(base.__getitem__, indices))
            self._materialized = values
        return values

    def __getitem__(self, item):
        return self.materialized()[item]

    def __iter__(self) -> Iterator:
        return iter(self.materialized())

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnView):
            return self.materialized() == other.materialized()
        if isinstance(other, list):
            return self.materialized() == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # views compare by value, like lists

    def __array__(self, dtype=None, copy=None):
        """Numpy interop: ``np.asarray(view)`` converts via one list."""
        import numpy as np
        array = np.asarray(self.materialized())
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        return array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "range" if self._indices is None else "indices"
        state = "materialized" if self._materialized is not None else "lazy"
        return f"<ColumnView {len(self)} rows via {kind}, {state}>"


def materialize_column(values) -> list:
    """``values`` as a plain list; no copy when it already is one."""
    if isinstance(values, ColumnView):
        return values.materialized()
    if isinstance(values, list):
        return values
    return list(values)


def _view_take(values, indices: list, memo: dict):
    """A view of ``values`` at ``indices``, flattening nested views.

    Composed index lists are memoised by the identity of the inner
    indirection so sibling columns created by the same earlier selection
    share one composed list.
    """
    if not isinstance(values, ColumnView):
        return ColumnView(values, indices)
    inner = values._materialized
    if inner is not None:
        return ColumnView(inner, indices)
    inner_indices = values._indices
    if inner_indices is not None:
        key = (id(inner_indices), id(indices))
        composed = memo.get(key)
        if composed is None:
            composed = [inner_indices[i] for i in indices]
            memo[key] = composed
        return ColumnView(values._base, composed)
    start = values._start
    if start == 0:
        return ColumnView(values._base, indices)
    key = (("range", start), id(indices))
    composed = memo.get(key)
    if composed is None:
        composed = [start + i for i in indices]
        memo[key] = composed
    return ColumnView(values._base, composed)


def _view_slice(values, start: int, stop: int, memo: dict):
    """A view of ``values[start:stop]``, flattening nested views."""
    if not isinstance(values, ColumnView):
        return ColumnView(values, start=start, stop=min(stop, len(values)))
    inner = values._materialized
    if inner is not None:
        return ColumnView(inner, start=start, stop=min(stop, len(inner)))
    inner_indices = values._indices
    if inner_indices is not None:
        key = (id(inner_indices), "slice", start, stop)
        sliced = memo.get(key)
        if sliced is None:
            sliced = inner_indices[start:stop]
            memo[key] = sliced
        return ColumnView(values._base, sliced)
    base_start = values._start + start
    base_stop = min(values._start + stop, values._stop)
    return ColumnView(values._base, start=base_start,
                      stop=max(base_start, base_stop))


class Batch:
    """An immutable-by-convention set of equal-length named columns."""

    __slots__ = ("_columns", "_names")

    def __init__(self, columns: Mapping[str, list] | None = None):
        self._columns: dict[str, list] = dict(columns or {})
        self._names: list[str] = list(self._columns)
        lengths = {len(col) for col in self._columns.values()}
        if len(lengths) > 1:
            raise ExecutorError(
                f"ragged batch: column lengths {sorted(lengths)}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, column_names: Iterable[str] = ()) -> "Batch":
        return cls({name: [] for name in column_names})

    @classmethod
    def from_rows(cls, column_names: list[str],
                  rows: Iterable[tuple]) -> "Batch":
        columns: dict[str, list] = {name: [] for name in column_names}
        for row in rows:
            if len(row) != len(column_names):
                raise ExecutorError(
                    f"row width {len(row)} != {len(column_names)} columns")
            for name, value in zip(column_names, row):
                columns[name].append(value)
        return cls(columns)

    @classmethod
    def concat(cls, batches: Iterable["Batch"]) -> "Batch":
        """Concatenate batches holding the same column *set*.

        Column order is allowed to differ between inputs (operators that
        assemble columns from dicts do not guarantee one order); the
        result uses the first batch's order.  Differing column *sets*
        still raise.  Each output column is built with exactly one list
        allocation (sized up front, filled by slice assignment), not one
        per input batch.
        """
        batches = [b for b in batches if b.num_rows or b.column_names]
        if not batches:
            return cls()
        if len(batches) == 1:
            return batches[0]
        names = batches[0].column_names
        name_set = set(names)
        for batch in batches[1:]:
            if batch.column_names != names \
                    and set(batch.column_names) != name_set:
                raise ExecutorError(
                    "cannot concat batches with differing columns: "
                    f"{names} vs {batch.column_names}")
        total = sum(batch.num_rows for batch in batches)
        columns: dict[str, list] = {}
        for name in names:
            out = [None] * total
            if _debug.enabled:
                _debug.note_allocation()
            position = 0
            for batch in batches:
                values = materialize_column(batch.column(name))
                end = position + len(values)
                out[position:end] = values
                position = end
            columns[name] = out
        return cls(columns)

    # -- shape ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self._names:
            return 0
        return len(self._columns[self._names[0]])

    @property
    def column_names(self) -> list[str]:
        return list(self._names)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Batch {self.num_rows} rows x {self._names}>"

    # -- access ---------------------------------------------------------------

    def column(self, name: str) -> list:
        try:
            return self._columns[name]
        except KeyError:
            raise ExecutorError(
                f"no column {name!r}; have {self._names}") from None

    def column_values(self, name: str) -> list:
        """Column as a plain list (materializes a lazy view once).

        Hot per-row loops index lists at C speed; going through
        ``ColumnView.__getitem__`` would re-enter Python per element.
        """
        column = self.column(name)
        if isinstance(column, ColumnView):
            return column.materialized()
        return column

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> dict[str, Any]:
        return {name: self._columns[name][index] for name in self._names}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        columns = [self._columns[name] for name in self._names]
        for values in zip(*columns):
            yield dict(zip(self._names, values))

    def to_tuples(self, column_names: list[str] | None = None
                  ) -> list[tuple]:
        names = column_names if column_names is not None else self._names
        columns = [self.column(name) for name in names]
        return list(zip(*columns)) if names else []

    # -- transforms ------------------------------------------------------------

    def project(self, column_names: list[str]) -> "Batch":
        return Batch({name: self.column(name) for name in column_names})

    def rename(self, mapping: Mapping[str, str]) -> "Batch":
        return Batch({mapping.get(name, name): values
                      for name, values in self._columns.items()})

    def with_column(self, name: str, values: list) -> "Batch":
        """A new batch with ``name`` added (or replaced)."""
        if self._names and len(values) != self.num_rows:
            raise ExecutorError(
                f"column {name!r} has {len(values)} values, "
                f"batch has {self.num_rows} rows")
        columns = dict(self._columns)
        columns[name] = values if isinstance(values, ColumnView) \
            else list(values)
        return Batch(columns)

    def with_columns(self, new_columns: Mapping[str, list]) -> "Batch":
        """A new batch with every column of ``new_columns`` added (or
        replaced) in one pass — the bulk form of :meth:`with_column` used
        by the vectorized operators (one copy of the column dict instead
        of one per added column)."""
        columns = dict(self._columns)
        for name, values in new_columns.items():
            if self._names and len(values) != self.num_rows:
                raise ExecutorError(
                    f"column {name!r} has {len(values)} values, "
                    f"batch has {self.num_rows} rows")
            columns[name] = values if isinstance(values, ColumnView) \
                else list(values)
        return Batch(columns)

    def filter(self, mask) -> "Batch":
        if len(mask) != self.num_rows:
            raise ExecutorError(
                f"mask length {len(mask)} != {self.num_rows} rows")
        return Batch({
            name: [v for v, keep in zip(values, mask) if keep]
            for name, values in self._columns.items()
        })

    def filter_mask(self, mask) -> "Batch":
        """Like :meth:`filter`, but tuned for the vectorized path.

        Accepts any boolean sequence (including numpy bool arrays) and
        short-circuits the all-true / all-false cases: an all-true mask
        returns ``self`` unchanged (columns are immutable by convention,
        so sharing them is safe), an all-false mask skips per-column work.
        Partial selections return zero-copy :class:`ColumnView` columns
        over one shared index list.
        """
        if len(mask) != self.num_rows:
            raise ExecutorError(
                f"mask length {len(mask)} != {self.num_rows} rows")
        keep = [i for i, flag in enumerate(mask) if flag]
        if len(keep) == self.num_rows:
            return self
        if not keep:
            return Batch({name: [] for name in self._names})
        return self._select(keep)

    def take(self, indices) -> "Batch":
        """Rows at ``indices`` (any integer sequence, numpy included)."""
        if not isinstance(indices, list):
            indices = list(indices)
        return self._select(indices)

    def _select(self, indices: list) -> "Batch":
        memo: dict = {}
        return Batch({
            name: _view_take(values, indices, memo)
            for name, values in self._columns.items()
        })

    def slice(self, start: int, stop: int) -> "Batch":
        memo: dict = {}
        return Batch({
            name: _view_slice(values, start, stop, memo)
            for name, values in self._columns.items()
        })

    def sorted_by(self, column_name: str) -> "Batch":
        values = materialize_column(self.column(column_name))
        order = sorted(range(self.num_rows), key=values.__getitem__)
        return self.take(order)
