"""Column-oriented batches: the unit of data flow between operators.

A :class:`Batch` holds named columns of equal length.  Values are arbitrary
Python objects (ints, strings, :class:`~repro.types.BoundingBox`, frame
handles), so batches can carry video frames and model outputs alike.  The
execution engine streams batches between physical operators, mirroring the
paper's batch-level processing (section 5.3).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ExecutorError


class Batch:
    """An immutable-by-convention set of equal-length named columns."""

    __slots__ = ("_columns", "_names")

    def __init__(self, columns: Mapping[str, list] | None = None):
        self._columns: dict[str, list] = dict(columns or {})
        self._names: list[str] = list(self._columns)
        lengths = {len(col) for col in self._columns.values()}
        if len(lengths) > 1:
            raise ExecutorError(
                f"ragged batch: column lengths {sorted(lengths)}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, column_names: Iterable[str] = ()) -> "Batch":
        return cls({name: [] for name in column_names})

    @classmethod
    def from_rows(cls, column_names: list[str],
                  rows: Iterable[tuple]) -> "Batch":
        columns: dict[str, list] = {name: [] for name in column_names}
        for row in rows:
            if len(row) != len(column_names):
                raise ExecutorError(
                    f"row width {len(row)} != {len(column_names)} columns")
            for name, value in zip(column_names, row):
                columns[name].append(value)
        return cls(columns)

    @classmethod
    def concat(cls, batches: Iterable["Batch"]) -> "Batch":
        """Concatenate batches holding the same column *set*.

        Column order is allowed to differ between inputs (operators that
        assemble columns from dicts do not guarantee one order); the
        result uses the first batch's order.  Differing column *sets*
        still raise.
        """
        batches = [b for b in batches if b.num_rows or b.column_names]
        if not batches:
            return cls()
        names = batches[0].column_names
        name_set = set(names)
        for batch in batches[1:]:
            if batch.column_names != names \
                    and set(batch.column_names) != name_set:
                raise ExecutorError(
                    "cannot concat batches with differing columns: "
                    f"{names} vs {batch.column_names}")
        columns = {
            name: [v for batch in batches for v in batch.column(name)]
            for name in names
        }
        return cls(columns)

    # -- shape ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self._names:
            return 0
        return len(self._columns[self._names[0]])

    @property
    def column_names(self) -> list[str]:
        return list(self._names)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Batch {self.num_rows} rows x {self._names}>"

    # -- access ---------------------------------------------------------------

    def column(self, name: str) -> list:
        try:
            return self._columns[name]
        except KeyError:
            raise ExecutorError(
                f"no column {name!r}; have {self._names}") from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> dict[str, Any]:
        return {name: self._columns[name][index] for name in self._names}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        columns = [self._columns[name] for name in self._names]
        for values in zip(*columns):
            yield dict(zip(self._names, values))

    def to_tuples(self, column_names: list[str] | None = None
                  ) -> list[tuple]:
        names = column_names if column_names is not None else self._names
        columns = [self.column(name) for name in names]
        return list(zip(*columns)) if names else []

    # -- transforms ------------------------------------------------------------

    def project(self, column_names: list[str]) -> "Batch":
        return Batch({name: self.column(name) for name in column_names})

    def rename(self, mapping: Mapping[str, str]) -> "Batch":
        return Batch({mapping.get(name, name): values
                      for name, values in self._columns.items()})

    def with_column(self, name: str, values: list) -> "Batch":
        """A new batch with ``name`` added (or replaced)."""
        if self._names and len(values) != self.num_rows:
            raise ExecutorError(
                f"column {name!r} has {len(values)} values, "
                f"batch has {self.num_rows} rows")
        columns = dict(self._columns)
        columns[name] = list(values)
        return Batch(columns)

    def with_columns(self, new_columns: Mapping[str, list]) -> "Batch":
        """A new batch with every column of ``new_columns`` added (or
        replaced) in one pass — the bulk form of :meth:`with_column` used
        by the vectorized operators (one copy of the column dict instead
        of one per added column)."""
        columns = dict(self._columns)
        for name, values in new_columns.items():
            if self._names and len(values) != self.num_rows:
                raise ExecutorError(
                    f"column {name!r} has {len(values)} values, "
                    f"batch has {self.num_rows} rows")
            columns[name] = list(values)
        return Batch(columns)

    def filter(self, mask) -> "Batch":
        if len(mask) != self.num_rows:
            raise ExecutorError(
                f"mask length {len(mask)} != {self.num_rows} rows")
        return Batch({
            name: [v for v, keep in zip(values, mask) if keep]
            for name, values in self._columns.items()
        })

    def filter_mask(self, mask) -> "Batch":
        """Like :meth:`filter`, but tuned for the vectorized path.

        Accepts any boolean sequence (including numpy bool arrays) and
        short-circuits the all-true / all-false cases: an all-true mask
        returns ``self`` unchanged (columns are immutable by convention,
        so sharing them is safe), an all-false mask skips per-column work.
        """
        if len(mask) != self.num_rows:
            raise ExecutorError(
                f"mask length {len(mask)} != {self.num_rows} rows")
        keep = [i for i, flag in enumerate(mask) if flag]
        if len(keep) == self.num_rows:
            return self
        if not keep:
            return Batch({name: [] for name in self._names})
        return Batch({
            name: [values[i] for i in keep]
            for name, values in self._columns.items()
        })

    def take(self, indices) -> "Batch":
        """Rows at ``indices`` (any integer sequence, numpy included)."""
        return Batch({
            name: [values[i] for i in indices]
            for name, values in self._columns.items()
        })

    def slice(self, start: int, stop: int) -> "Batch":
        return Batch({name: values[start:stop]
                      for name, values in self._columns.items()})

    def sorted_by(self, column_name: str) -> "Batch":
        order = sorted(range(self.num_rows),
                       key=lambda i: self.column(column_name)[i])
        return self.take(order)
