"""A simple columnar on-disk table format.

Stand-in for the paper's Petastorm/Parquet storage: a table is a directory
containing ``manifest.json`` (schema + row count) and one ``.npz`` file per
column group.  Numeric columns are stored as numpy arrays; strings as JSON;
bounding boxes as an ``(n, 4)`` float array; arbitrary objects via pickle.

The format exists so the storage footprint experiment (section 5.2) measures
real serialized bytes, and so materialized views survive process restarts.
"""

from __future__ import annotations

import io
import json
import pickle
from pathlib import Path

import numpy as np

from repro.errors import StorageError
from repro.catalog.schema import ColumnType, TableSchema
from repro.storage.batch import Batch, materialize_column
from repro.types import BoundingBox

_MANIFEST = "manifest.json"
_COLUMNS = "columns.npz"
_MANIFEST_VERSION = 1


def write_table(directory: str | Path, schema: TableSchema,
                batch: Batch) -> int:
    """Write ``batch`` with ``schema`` into ``directory``.

    Returns:
        Total bytes written (manifest + column data).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    for col in schema.columns:
        values = batch.column(col.name)
        arrays[col.name] = _encode_column(col.ctype, values)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    column_bytes = buffer.getvalue()
    (directory / _COLUMNS).write_bytes(column_bytes)
    manifest = {
        "version": _MANIFEST_VERSION,
        "num_rows": batch.num_rows,
        "columns": [
            {"name": c.name, "type": c.ctype.value} for c in schema.columns
        ],
    }
    manifest_bytes = json.dumps(manifest, indent=2).encode("utf-8")
    (directory / _MANIFEST).write_bytes(manifest_bytes)
    return len(column_bytes) + len(manifest_bytes)


def read_table(directory: str | Path) -> tuple[TableSchema, Batch]:
    """Read a table previously written by :func:`write_table`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise StorageError(f"no table at {directory}")
    manifest = json.loads(manifest_path.read_text("utf-8"))
    if manifest.get("version") != _MANIFEST_VERSION:
        raise StorageError(
            f"unsupported table version {manifest.get('version')}")
    schema = TableSchema.of(*[
        (c["name"], ColumnType(c["type"])) for c in manifest["columns"]
    ])
    with np.load(directory / _COLUMNS, allow_pickle=False) as arrays:
        columns = {
            col.name: _decode_column(col.ctype, arrays[col.name])
            for col in schema.columns
        }
    batch = Batch(columns)
    if batch.num_rows != manifest["num_rows"]:
        raise StorageError(
            f"row count mismatch: manifest says {manifest['num_rows']}, "
            f"data has {batch.num_rows}")
    return schema, batch


def _encode_column(ctype: ColumnType, values: list) -> np.ndarray:
    values = materialize_column(values)
    if ctype is ColumnType.INTEGER:
        return np.asarray(values, dtype=np.int64)
    if ctype is ColumnType.FLOAT:
        return np.asarray(values, dtype=np.float64)
    if ctype is ColumnType.BOOLEAN:
        return np.asarray(values, dtype=np.bool_)
    if ctype is ColumnType.STRING:
        payload = json.dumps(values).encode("utf-8")
        return np.frombuffer(payload, dtype=np.uint8)
    if ctype is ColumnType.BBOX:
        flat = [(b.x1, b.y1, b.x2, b.y2) for b in values]
        return np.asarray(flat, dtype=np.float64).reshape(-1, 4)
    if ctype in (ColumnType.OBJECT, ColumnType.FRAME):
        payload = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
        return np.frombuffer(payload, dtype=np.uint8)
    raise StorageError(f"cannot encode column type {ctype}")


def _decode_column(ctype: ColumnType, array: np.ndarray) -> list:
    # tolist() converts int64/float64/bool_ arrays to native Python
    # values in one C-level pass instead of one boxed conversion per
    # element.
    if ctype is ColumnType.INTEGER:
        return array.tolist()
    if ctype is ColumnType.FLOAT:
        return array.tolist()
    if ctype is ColumnType.BOOLEAN:
        return array.tolist()
    if ctype is ColumnType.STRING:
        return json.loads(array.tobytes().decode("utf-8"))
    if ctype is ColumnType.BBOX:
        return [BoundingBox(*row) for row in array.reshape(-1, 4)]
    if ctype in (ColumnType.OBJECT, ColumnType.FRAME):
        return pickle.loads(array.tobytes())
    raise StorageError(f"cannot decode column type {ctype}")
