"""Storage engine: batches, a columnar on-disk format, and view storage.

The paper stores videos through Petastorm/Parquet and moves data as pandas
dataframes.  Offline we provide the same roles with local code: a
column-oriented :class:`~repro.storage.batch.Batch` as the unit of data flow,
a simple columnar on-disk format, and a materialized-view store keyed by UDF
input identity (frame id, or frame id + bounding box).
"""

from repro.storage.batch import Batch
from repro.storage.columnar import read_table, write_table
from repro.storage.view_store import MaterializedView, ViewStore
from repro.storage.engine import StorageEngine, VideoTable

__all__ = [
    "Batch",
    "read_table",
    "write_table",
    "MaterializedView",
    "ViewStore",
    "StorageEngine",
    "VideoTable",
]
