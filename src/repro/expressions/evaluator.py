"""Row-wise expression evaluation.

The executor materializes UDF outputs into row columns before predicates
referencing them are evaluated, so by evaluation time every
:class:`FunctionCall` resolves either to a pre-computed column (looked up by
its term key) or to a cheap builtin implementation.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ExecutorError
from repro.expressions.analysis import term_key
from repro.expressions.expr import (
    AggregateCall,
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Not,
    Or,
    Star,
)

#: Column name under which a UDF term's computed value is stored in rows.
def udf_column_name(key: str) -> str:
    return f"__udf::{key}"


class ExpressionEvaluator:
    """Evaluates expressions against row dicts.

    Args:
        builtins: map of UDF name -> python callable for cheap builtin UDFs
            (e.g. ``area``).  Called with the evaluated argument values.
    """

    def __init__(self, builtins: Mapping[str, Callable] | None = None):
        self._builtins = {k.lower(): v for k, v in (builtins or {}).items()}

    def evaluate(self, expr: Expression, row: Mapping[str, object]):
        """Evaluate ``expr`` for one row; comparisons use SQL-ish semantics
        (any comparison against a missing/None value is False)."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return row.get(expr.name)
        if isinstance(expr, Comparison):
            left = self.evaluate(expr.left, row)
            right = self.evaluate(expr.right, row)
            try:
                return expr.op.apply(left, right)
            except TypeError:
                raise ExecutorError(
                    f"cannot compare {type(left).__name__} with "
                    f"{type(right).__name__} in {expr.to_sql()}") from None
        if isinstance(expr, And):
            return all(bool(self.evaluate(o, row)) for o in expr.operands)
        if isinstance(expr, Or):
            return any(bool(self.evaluate(o, row)) for o in expr.operands)
        if isinstance(expr, Not):
            return not bool(self.evaluate(expr.operand, row))
        if isinstance(expr, Arithmetic):
            left = self.evaluate(expr.left, row)
            right = self.evaluate(expr.right, row)
            if left is None or right is None:
                return None  # NULL propagation
            try:
                if expr.op == "+":
                    return left + right
                if expr.op == "-":
                    return left - right
                if expr.op == "*":
                    return left * right
                if right == 0:
                    return None  # SQL-ish: division by zero yields NULL
                return left / right
            except TypeError:
                raise ExecutorError(
                    f"cannot compute {expr.to_sql()} over "
                    f"{type(left).__name__} and {type(right).__name__}"
                ) from None
        if isinstance(expr, FunctionCall):
            return self._evaluate_call(expr, row)
        if isinstance(expr, Star):
            raise ExecutorError("'*' cannot be evaluated as a value")
        if isinstance(expr, AggregateCall):
            # Above a GROUP BY, the aggregate's value is the output column
            # named after it (so ORDER BY COUNT(*) works).
            column = expr.to_sql()
            if column in row:
                return row[column]
            raise ExecutorError(
                f"aggregate {expr.to_sql()} outside GROUP BY context")
        raise ExecutorError(f"cannot evaluate {expr!r}")

    def evaluate_predicate(self, expr: Expression,
                           row: Mapping[str, object]) -> bool:
        return bool(self.evaluate(expr, row))

    def builtin_impl(self, name: str) -> Callable | None:
        """The builtin implementation registered for ``name`` (or None).

        Exposed for the batch-kernel compiler
        (:mod:`repro.expressions.compiler`), which resolves UDF calls the
        same way the row path does: pre-computed column first, builtin
        second.
        """
        return self._builtins.get(name.lower())

    def _evaluate_call(self, call: FunctionCall, row: Mapping[str, object]):
        # A pre-computed UDF column takes precedence: the plan has already
        # applied the (possibly reused) model for this term.
        column = udf_column_name(term_key(call))
        if column in row:
            return row[column]
        impl = self._builtins.get(call.name)
        if impl is None:
            raise ExecutorError(
                f"UDF {call.name!r} was not applied before evaluation and "
                "has no builtin implementation")
        args = [self.evaluate(arg, row) for arg in call.args]
        return impl(*args)
