"""Expression ASTs, evaluation, and predicate analysis helpers."""

from repro.expressions.expr import (
    AggregateCall,
    And,
    ColumnRef,
    CompOp,
    Comparison,
    Expression,
    FALSE,
    FunctionCall,
    Literal,
    Not,
    Or,
    Star,
    TRUE,
)
from repro.expressions.analysis import (
    collect_columns,
    collect_function_calls,
    conjunction_of,
    references_only,
    split_conjuncts,
    substitute,
    term_key,
)
from repro.expressions.evaluator import ExpressionEvaluator
from repro.expressions.compiler import (
    CompiledKernel,
    compile_expression,
    supports_vectorized,
)

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "FunctionCall",
    "AggregateCall",
    "Comparison",
    "CompOp",
    "And",
    "Or",
    "Not",
    "Star",
    "TRUE",
    "FALSE",
    "split_conjuncts",
    "conjunction_of",
    "collect_function_calls",
    "collect_columns",
    "references_only",
    "substitute",
    "term_key",
    "ExpressionEvaluator",
    "CompiledKernel",
    "compile_expression",
    "supports_vectorized",
]
