"""Expression AST nodes.

The grammar matches the paper's predicate syntax (section 4.1):

    p     ::= expr cp expr | p logic p | NOT p
    cp    ::= > | < | = | != | <= | >=
    logic ::= AND | OR

plus the non-predicate expressions queries need: column references,
literals, UDF calls (with an optional ACCURACY annotation), aggregates, and
``*``.  Nodes are frozen dataclasses, so structural equality and hashing
come for free — the symbolic engine and optimizer rely on both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.types import Accuracy


class CompOp(enum.Enum):
    """Comparison operators."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="

    def negate(self) -> "CompOp":
        return _NEGATIONS[self]

    def flip(self) -> "CompOp":
        """Operator with sides swapped: ``a < b`` == ``b > a``."""
        return _FLIPS[self]

    def apply(self, left, right) -> bool:
        if left is None or right is None:
            return False
        if self is CompOp.EQ:
            return left == right
        if self is CompOp.NE:
            return left != right
        if self is CompOp.LT:
            return left < right
        if self is CompOp.LE:
            return left <= right
        if self is CompOp.GT:
            return left > right
        return left >= right


_NEGATIONS = {
    CompOp.LT: CompOp.GE, CompOp.GE: CompOp.LT,
    CompOp.GT: CompOp.LE, CompOp.LE: CompOp.GT,
    CompOp.EQ: CompOp.NE, CompOp.NE: CompOp.EQ,
}
_FLIPS = {
    CompOp.LT: CompOp.GT, CompOp.GT: CompOp.LT,
    CompOp.LE: CompOp.GE, CompOp.GE: CompOp.LE,
    CompOp.EQ: CompOp.EQ, CompOp.NE: CompOp.NE,
}


@dataclass(frozen=True)
class Expression:
    """Base class for all expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column; names are case-insensitive (stored lower)."""

    name: str

    def __post_init__(self):
        object.__setattr__(self, "name", self.name.lower())

    def to_sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, or boolean."""

    value: object

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


TRUE = Literal(True)
FALSE = Literal(False)


@dataclass(frozen=True)
class Star(Expression):
    """``*`` in a select list or COUNT(*)."""

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A UDF invocation, e.g. ``CarType(frame, bbox)``.

    ``accuracy`` carries the ``ACCURACY 'HIGH'`` annotation used when the
    name denotes a logical vision task (Listing 1's OBJECT_DETECTOR).
    """

    name: str
    args: tuple[Expression, ...] = ()
    accuracy: Accuracy | None = None

    def __post_init__(self):
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "args", tuple(self.args))

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def to_sql(self) -> str:
        args = ", ".join(a.to_sql() for a in self.args)
        suffix = f" ACCURACY '{self.accuracy.value}'" if self.accuracy else ""
        return f"{self.name}({args}){suffix}"


@dataclass(frozen=True)
class AggregateCall(Expression):
    """An aggregate in the select list, e.g. ``COUNT(*)``."""

    func: str
    arg: Expression = field(default_factory=Star)

    def __post_init__(self):
        object.__setattr__(self, "func", self.func.lower())

    def children(self) -> tuple[Expression, ...]:
        return (self.arg,)

    def to_sql(self) -> str:
        return f"{self.func.upper()}({self.arg.to_sql()})"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic: ``left op right`` with op in ``+ - * /``.

    The symbolic engine solves *affine* arithmetic over a single term
    (column or UDF call) down to an axis-aligned constraint; anything
    beyond that executes fine but is not symbolically analyzable.
    """

    left: Expression
    op: str
    right: Expression

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        left = self._wrap(self.left)
        right = self._wrap(self.right)
        return f"{left} {self.op} {right}"

    @staticmethod
    def _wrap(expr: Expression) -> str:
        if isinstance(expr, Arithmetic):
            return f"({expr.to_sql()})"
        return expr.to_sql()


@dataclass(frozen=True)
class Comparison(Expression):
    """``left cp right``."""

    left: Expression
    op: CompOp
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op.value} {self.right.to_sql()}"


@dataclass(frozen=True)
class And(Expression):
    """N-ary conjunction (flattened at construction)."""

    operands: tuple[Expression, ...]

    def __post_init__(self):
        flat: list[Expression] = []
        for operand in self.operands:
            if isinstance(operand, And):
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        object.__setattr__(self, "operands", tuple(flat))

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def to_sql(self) -> str:
        return " AND ".join(_parenthesize(o) for o in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """N-ary disjunction (flattened at construction)."""

    operands: tuple[Expression, ...]

    def __post_init__(self):
        flat: list[Expression] = []
        for operand in self.operands:
            if isinstance(operand, Or):
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        object.__setattr__(self, "operands", tuple(flat))

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def to_sql(self) -> str:
        return " OR ".join(_parenthesize(o) for o in self.operands)


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"NOT {_parenthesize(self.operand)}"


def _parenthesize(expr: Expression) -> str:
    if isinstance(expr, (And, Or, Not)):
        return f"({expr.to_sql()})"
    return expr.to_sql()
