"""Static analysis helpers over expression trees."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.expressions.expr import (
    And,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    TRUE,
)


def split_conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None or expr == TRUE:
        return []
    if isinstance(expr, And):
        out: list[Expression] = []
        for operand in expr.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [expr]


def conjunction_of(conjuncts: Iterable[Expression]) -> Expression:
    """AND the conjuncts back together (TRUE when empty)."""
    conjuncts = [c for c in conjuncts if c != TRUE]
    if not conjuncts:
        return TRUE
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(tuple(conjuncts))


def collect_function_calls(expr: Expression) -> list[FunctionCall]:
    """All UDF calls in the tree, in pre-order, deduplicated."""
    seen: set[FunctionCall] = set()
    out: list[FunctionCall] = []
    for node in expr.walk():
        if isinstance(node, FunctionCall) and node not in seen:
            seen.add(node)
            out.append(node)
    return out


def collect_columns(expr: Expression) -> set[str]:
    """Names of all columns referenced anywhere in the tree."""
    return {node.name for node in expr.walk() if isinstance(node, ColumnRef)}


def references_only(expr: Expression, columns: set[str],
                    allow_functions: bool = False) -> bool:
    """True when every leaf is a literal or a column from ``columns``.

    With ``allow_functions=False``, any UDF call disqualifies the
    expression — used to separate direct-column predicates from UDF-based
    predicates during pushdown.
    """
    for node in expr.walk():
        if isinstance(node, ColumnRef) and node.name not in columns:
            return False
        if isinstance(node, FunctionCall) and not allow_functions:
            return False
    return True


def substitute(expr: Expression,
               replace: Callable[[Expression], Expression | None]
               ) -> Expression:
    """Rebuild the tree, replacing nodes where ``replace`` returns non-None.

    ``replace`` is consulted top-down; when it rewrites a node, the new node
    is *not* recursed into.
    """
    replacement = replace(expr)
    if replacement is not None:
        return replacement
    # Reconstruct with substituted children where anything changed.
    from repro.expressions.expr import (
        AggregateCall, And, Arithmetic, Comparison, Not, Or)

    if isinstance(expr, Comparison):
        left = substitute(expr.left, replace)
        right = substitute(expr.right, replace)
        if left is not expr.left or right is not expr.right:
            return Comparison(left, expr.op, right)
        return expr
    if isinstance(expr, Arithmetic):
        left = substitute(expr.left, replace)
        right = substitute(expr.right, replace)
        if left is not expr.left or right is not expr.right:
            return Arithmetic(left, expr.op, right)
        return expr
    if isinstance(expr, And):
        operands = tuple(substitute(o, replace) for o in expr.operands)
        return And(operands) if operands != expr.operands else expr
    if isinstance(expr, Or):
        operands = tuple(substitute(o, replace) for o in expr.operands)
        return Or(operands) if operands != expr.operands else expr
    if isinstance(expr, Not):
        operand = substitute(expr.operand, replace)
        return Not(operand) if operand is not expr.operand else expr
    if isinstance(expr, FunctionCall):
        args = tuple(substitute(a, replace) for a in expr.args)
        if args != expr.args:
            return FunctionCall(expr.name, args, expr.accuracy)
        return expr
    if isinstance(expr, AggregateCall):
        arg = substitute(expr.arg, replace)
        return AggregateCall(expr.func, arg) if arg is not expr.arg else expr
    return expr


def term_key(call: FunctionCall) -> str:
    """Canonical identity of a UDF *term*: name + argument shape.

    Two calls with the same term key denote the same computation over a row
    (e.g. every occurrence of ``CarType(frame, bbox)``), which is the unit
    at which results are shared within a query plan.
    """
    parts = []
    for arg in call.args:
        if isinstance(arg, ColumnRef):
            parts.append(arg.name)
        elif isinstance(arg, Literal):
            parts.append(repr(arg.value))
        elif isinstance(arg, FunctionCall):
            parts.append(term_key(arg))
        else:
            parts.append(arg.to_sql())
    return f"{call.name}({','.join(parts)})"
