"""Compilation of expression trees into column-at-a-time batch kernels.

The row interpreter (:class:`~repro.expressions.evaluator.ExpressionEvaluator`)
walks the AST once *per row*, building a dict per row along the way.  For the
hot filter/project path that interpretation overhead dominates real wall-clock
time.  This module compiles an :class:`~repro.expressions.expr.Expression`
once into a **batch kernel**: a closure evaluated once *per batch* that
operates on whole columns — numpy where the operands are numeric, plain list
comprehensions otherwise.

Semantics are bit-identical to the row interpreter by construction:

* comparisons against ``None`` are ``False`` (SQL-ish missing semantics);
* arithmetic propagates ``None`` and maps division by zero to ``None``;
* logical operators coerce operands with ``bool(...)``;
* a :class:`FunctionCall` resolves to its pre-computed UDF column when the
  plan materialized one, and to the builtin implementation otherwise.

Two safety nets keep the old behavior reachable:

* **compile-time fallback** — :func:`supports_vectorized` rejects nodes the
  kernel generator does not understand (``*``, unknown node types); the
  compiler then returns a kernel that runs the row interpreter, flagged
  ``vectorized=False``;
* **runtime fallback** — if a vectorized kernel raises while evaluating a
  batch (e.g. a type error that the row path would surface mid-evaluation),
  the kernel transparently re-evaluates that batch through the row
  interpreter, which reproduces the exact legacy result or error (including
  short-circuit semantics the columnar path cannot honor).  Fallback batches
  are counted on the kernel (``fallback_batches``) so EXPLAIN ANALYZE and
  the obs layer can report them.

Expression evaluation never charges the virtual clock, so a runtime retry is
cost-neutral and side-effect free.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ExecutorError
from repro.expressions.analysis import term_key
from repro.expressions.evaluator import ExpressionEvaluator, udf_column_name
from repro.expressions.expr import (
    AggregateCall,
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    CompOp,
    Expression,
    FunctionCall,
    Literal,
    Not,
    Or,
    Star,
)
from repro.storage.batch import Batch, ColumnView

#: numpy dtype kinds treated as numeric for arithmetic (bool is excluded:
#: ``True + True`` is ``2`` in Python but ``True`` in numpy).
_ARITH_KINDS = frozenset("iuf")
#: numpy dtype kinds comparable through numpy ufuncs (bool compares like
#: 0/1 in both Python and numpy, so it is safe here).
_COMPARE_KINDS = frozenset("iufb")

_NUMPY_COMPARE = {
    CompOp.LT: np.less,
    CompOp.LE: np.less_equal,
    CompOp.GT: np.greater,
    CompOp.GE: np.greater_equal,
    CompOp.EQ: np.equal,
    CompOp.NE: np.not_equal,
}


class _Scalar:
    """A compile-time constant flowing through the kernel graph.

    Kept symbolic (not materialized to an ``n``-long list) so numpy
    broadcasting applies and scalar-only subtrees stay O(1).
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


#: A column value inside the kernel graph: a full column (list or ndarray)
#: or a broadcast scalar.
_Col = "list | np.ndarray | _Scalar"


def supports_vectorized(expr: Expression) -> bool:
    """Can every node of ``expr`` be compiled to a batch kernel?

    ``Star`` has no value semantics (it is handled structurally by the
    project operator) and unknown node types have no kernel generator;
    everything else — including UDF calls, which resolve to pre-computed
    columns or builtins at batch time — vectorizes.
    """
    supported = (Literal, ColumnRef, Comparison, And, Or, Not, Arithmetic,
                 FunctionCall, AggregateCall)
    for node in expr.walk():
        if isinstance(node, Star):
            return False
        if not isinstance(node, supported):
            return False
    return True


class CompiledKernel:
    """A batch-at-a-time evaluator for one expression.

    Attributes:
        expr: the compiled expression.
        vectorized: compile-time decision — False means the kernel is a
            plain row-interpreter wrapper (``row-fallback``).
        batches: number of batches evaluated.
        fallback_batches: batches that hit the runtime fallback (the
            vectorized kernel raised and the row interpreter re-ran them).
    """

    __slots__ = ("expr", "vectorized", "batches", "fallback_batches",
                 "_fn", "_evaluator")

    def __init__(self, expr: Expression, evaluator: ExpressionEvaluator,
                 fn: Callable | None):
        self.expr = expr
        self._evaluator = evaluator
        self._fn = fn
        self.vectorized = fn is not None
        self.batches = 0
        self.fallback_batches = 0

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, batch: Batch) -> list:
        """The expression's value column for ``batch`` (a Python list)."""
        self.batches += 1
        if self._fn is not None:
            try:
                return _materialize(self._fn(batch), batch.num_rows)
            except ExecutorError:
                # Re-run through the row interpreter: it reproduces the
                # legacy result *or* the legacy error (e.g. short-circuit
                # semantics the columnar path cannot honor).
                self.fallback_batches += 1
        return self._evaluate_rows(batch)

    def evaluate_mask(self, batch: Batch) -> list[bool]:
        """The expression as a predicate: one ``bool`` per row."""
        self.batches += 1
        if self._fn is not None:
            try:
                return _materialize_mask(self._fn(batch), batch.num_rows)
            except ExecutorError:
                self.fallback_batches += 1
        evaluator = self._evaluator
        expr = self.expr
        return [evaluator.evaluate_predicate(expr, row)
                for row in batch.iter_rows()]

    def _evaluate_rows(self, batch: Batch) -> list:
        evaluator = self._evaluator
        expr = self.expr
        return [evaluator.evaluate(expr, row) for row in batch.iter_rows()]

    @property
    def mode(self) -> str:
        """``vectorized`` or ``row-fallback`` (compile-time decision)."""
        return "vectorized" if self.vectorized else "row-fallback"


def compile_expression(expr: Expression,
                       evaluator: ExpressionEvaluator) -> CompiledKernel:
    """Compile ``expr`` into a :class:`CompiledKernel`.

    Falls back to a row-interpreter kernel (``vectorized=False``) when any
    node fails :func:`supports_vectorized`.
    """
    if not supports_vectorized(expr):
        return CompiledKernel(expr, evaluator, None)
    fn = _compile_node(expr, evaluator)
    return CompiledKernel(expr, evaluator, fn)


# ---------------------------------------------------------------------------
# shared-kernel runners (used by plan-level fusion)
# ---------------------------------------------------------------------------
#
# Fused plans (executor/fusion.py) cache compiled kernels and share them
# across queries, sessions, and morsel threads.  The kernel's own
# ``batches`` / ``fallback_batches`` counters are per-instance state and
# would race (and misattribute) under sharing, so fusion runs kernels
# through these functions, which report runtime fallbacks into a
# caller-owned per-execution ``counts`` dict instead.


def run_kernel_values(kernel: CompiledKernel, batch: Batch,
                      counts: dict | None = None, label: str = "") -> list:
    """:meth:`CompiledKernel.evaluate` with caller-owned fallback counts."""
    fn = kernel._fn
    if fn is not None:
        try:
            return _materialize(fn(batch), batch.num_rows)
        except ExecutorError:
            if counts is not None:
                counts[label] = counts.get(label, 0) + 1
    evaluator = kernel._evaluator
    expr = kernel.expr
    return [evaluator.evaluate(expr, row) for row in batch.iter_rows()]


def run_kernel_mask(kernel: CompiledKernel, batch: Batch,
                    counts: dict | None = None,
                    label: str = "") -> list[bool]:
    """:meth:`CompiledKernel.evaluate_mask` with caller-owned counts."""
    fn = kernel._fn
    if fn is not None:
        try:
            return _materialize_mask(fn(batch), batch.num_rows)
        except ExecutorError:
            if counts is not None:
                counts[label] = counts.get(label, 0) + 1
    evaluator = kernel._evaluator
    expr = kernel.expr
    return [evaluator.evaluate_predicate(expr, row)
            for row in batch.iter_rows()]


def run_kernel_mask_vectorized(kernel: CompiledKernel,
                               batch: Batch) -> np.ndarray:
    """The kernel's mask via the vectorized path *only*, as a bool array.

    No fallback: any exception propagates so the caller can demote (used
    for the speculative evaluation of upper filters in a fused mask
    group, where errors must not surface for rows a lower filter would
    have removed).  Requires ``kernel.vectorized``.
    """
    return _as_bool_array(kernel._fn(batch), batch.num_rows)


# ---------------------------------------------------------------------------
# kernel generators (one per node type)
# ---------------------------------------------------------------------------


def _compile_node(expr: Expression,
                  evaluator: ExpressionEvaluator) -> Callable:
    if isinstance(expr, Literal):
        scalar = _Scalar(expr.value)
        return lambda batch: scalar
    if isinstance(expr, ColumnRef):
        name = expr.name
        none = _Scalar(None)

        def column_fn(batch: Batch):
            if batch.has_column(name):
                return batch.column(name)
            return none  # row.get() semantics: missing column -> None

        return column_fn
    if isinstance(expr, Comparison):
        left = _compile_node(expr.left, evaluator)
        right = _compile_node(expr.right, evaluator)
        op = expr.op
        sql = expr.to_sql()

        def compare_fn(batch: Batch):
            return _compare(op, left(batch), right(batch),
                            batch.num_rows, sql)

        return compare_fn
    if isinstance(expr, And):
        operands = [_compile_node(o, evaluator) for o in expr.operands]

        def and_fn(batch: Batch):
            masks = [_as_bool_array(fn(batch), batch.num_rows)
                     for fn in operands]
            return np.logical_and.reduce(masks)

        return and_fn
    if isinstance(expr, Or):
        operands = [_compile_node(o, evaluator) for o in expr.operands]

        def or_fn(batch: Batch):
            masks = [_as_bool_array(fn(batch), batch.num_rows)
                     for fn in operands]
            return np.logical_or.reduce(masks)

        return or_fn
    if isinstance(expr, Not):
        operand = _compile_node(expr.operand, evaluator)

        def not_fn(batch: Batch):
            return np.logical_not(
                _as_bool_array(operand(batch), batch.num_rows))

        return not_fn
    if isinstance(expr, Arithmetic):
        left = _compile_node(expr.left, evaluator)
        right = _compile_node(expr.right, evaluator)
        op = expr.op
        sql = expr.to_sql()

        def arith_fn(batch: Batch):
            return _arithmetic(op, left(batch), right(batch),
                               batch.num_rows, sql)

        return arith_fn
    if isinstance(expr, FunctionCall):
        column = udf_column_name(term_key(expr))
        name = expr.name
        args = [_compile_node(a, evaluator) for a in expr.args]

        def call_fn(batch: Batch):
            # A pre-computed UDF column takes precedence (the plan already
            # applied the possibly-reused model for this term).
            if batch.has_column(column):
                return batch.column(column)
            impl = evaluator.builtin_impl(name)
            if impl is None:
                raise ExecutorError(
                    f"UDF {name!r} was not applied before evaluation and "
                    "has no builtin implementation")
            n = batch.num_rows
            arg_cols = [_values(fn(batch), n) for fn in args]
            return [impl(*row_args) for row_args in zip(*arg_cols)] \
                if arg_cols else [impl() for _ in range(n)]

        return call_fn
    if isinstance(expr, AggregateCall):
        # Above a GROUP BY the aggregate's value is its output column.
        column = expr.to_sql()
        sql = expr.to_sql()

        def aggregate_fn(batch: Batch):
            if batch.has_column(column):
                return batch.column(column)
            raise ExecutorError(
                f"aggregate {sql} outside GROUP BY context")

        return aggregate_fn
    raise ExecutorError(
        f"no kernel generator for {type(expr).__name__}")


# ---------------------------------------------------------------------------
# columnar primitives
# ---------------------------------------------------------------------------


def _compare(op: CompOp, left, right, n: int, sql: str):
    if isinstance(left, _Scalar) and isinstance(right, _Scalar):
        try:
            return _Scalar(op.apply(left.value, right.value))
        except TypeError:
            raise ExecutorError(
                f"cannot compare {type(left.value).__name__} with "
                f"{type(right.value).__name__} in {sql}") from None
    larr = _numeric_operand(left, _COMPARE_KINDS)
    rarr = _numeric_operand(right, _COMPARE_KINDS)
    if larr is not None and rarr is not None:
        return _NUMPY_COMPARE[op](larr, rarr)
    lvals = _values(left, n)
    if isinstance(right, _Scalar) and op in (CompOp.EQ, CompOp.NE):
        # Scalar (in)equality — e.g. ``label = 'car'`` — never raises
        # and NULL compares false, so one fused pass replaces the
        # per-element ``op.apply`` dispatch and emits the bool array
        # ``_as_bool_array`` would otherwise rebuild.
        value = right.value
        if value is None:
            return np.zeros(n, dtype=bool)
        if op is CompOp.EQ:
            return np.fromiter(
                (v is not None and v == value for v in lvals),
                dtype=bool, count=n)
        return np.fromiter(
            (v is not None and v != value for v in lvals),
            dtype=bool, count=n)
    rvals = _values(right, n)
    out = []
    append = out.append
    apply = op.apply
    try:
        for a, b in zip(lvals, rvals):
            append(apply(a, b))
    except TypeError:
        raise ExecutorError(
            f"cannot compare {type(a).__name__} with "
            f"{type(b).__name__} in {sql}") from None
    return out


def _arithmetic(op: str, left, right, n: int, sql: str):
    if isinstance(left, _Scalar) and isinstance(right, _Scalar):
        return _Scalar(_scalar_arith(op, left.value, right.value, sql))
    larr = _numeric_operand(left, _ARITH_KINDS)
    rarr = _numeric_operand(right, _ARITH_KINDS)
    if larr is not None and rarr is not None:
        if op == "+":
            return larr + rarr
        if op == "-":
            return larr - rarr
        if op == "*":
            return larr * rarr
        # Division: Python semantics yield NULL for a zero divisor, so the
        # pure-numpy path only applies to all-nonzero divisors.
        if not np.any(rarr == 0):
            return np.true_divide(larr, rarr)
        with np.errstate(divide="ignore", invalid="ignore"):
            quotient = np.true_divide(larr, rarr)
        zero = np.broadcast_to(np.asarray(rarr) == 0, np.shape(quotient))
        return [None if z else q
                for q, z in zip(quotient.tolist(), zero.tolist())]
    lvals = _values(left, n)
    rvals = _values(right, n)
    return [_scalar_arith(op, a, b, sql) for a, b in zip(lvals, rvals)]


def _scalar_arith(op: str, left, right, sql: str):
    if left is None or right is None:
        return None  # NULL propagation
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            return None  # SQL-ish: division by zero yields NULL
        return left / right
    except TypeError:
        raise ExecutorError(
            f"cannot compute {sql} over {type(left).__name__} and "
            f"{type(right).__name__}") from None


def _numeric_operand(col, kinds: frozenset):
    """``col`` as a numpy-compatible numeric operand, or None.

    Scalars pass through as Python numbers (numpy broadcasts them); columns
    are converted with :func:`np.asarray` and accepted when their dtype kind
    is numeric — object dtype (mixed types, Nones, boxes) is rejected, which
    routes evaluation to the exact element-wise path.
    """
    if isinstance(col, _Scalar):
        value = col.value
        if isinstance(value, bool):
            return value if "b" in kinds else None
        if isinstance(value, (int, float)):
            return value
        return None
    if isinstance(col, np.ndarray):
        return col if col.dtype.kind in kinds else None
    try:
        # Fast reject for string columns: ``np.asarray`` would copy the
        # whole column into a U-dtype array only to be refused below.
        # Rejection is always safe — it routes to the exact
        # element-wise path.
        if len(col) > 0 and isinstance(col[0], str):
            return None
    except TypeError:
        pass
    try:
        arr = np.asarray(col)
    except (ValueError, TypeError):  # ragged / unconvertible
        return None
    return arr if arr.dtype.kind in kinds else None


def _as_bool_array(col, n: int) -> np.ndarray:
    """Coerce a kernel column to a bool array using Python truthiness."""
    if isinstance(col, _Scalar):
        return np.full(n, bool(col.value))
    if isinstance(col, np.ndarray):
        if col.dtype.kind == "b":
            return col
        if col.dtype.kind in _ARITH_KINDS:
            return col.astype(bool)
        return np.fromiter((bool(v) for v in col.tolist()),
                           dtype=bool, count=n)
    return np.fromiter((bool(v) for v in col), dtype=bool, count=n)


def _values(col, n: int) -> Sequence:
    """``col`` as an iterable of ``n`` Python values."""
    if isinstance(col, _Scalar):
        return [col.value] * n
    if isinstance(col, np.ndarray):
        return col.tolist()
    return col


def _materialize(col, n: int) -> list:
    if isinstance(col, _Scalar):
        return [col.value] * n
    if isinstance(col, np.ndarray):
        return col.tolist()
    if isinstance(col, (list, ColumnView)):
        # ColumnViews pass through zero-copy: consumers index/iterate
        # them like lists and they materialize at most once on demand.
        return col
    return list(col)


def _materialize_mask(col, n: int) -> list[bool]:
    if isinstance(col, _Scalar):
        return [bool(col.value)] * n
    if isinstance(col, np.ndarray):
        if col.dtype.kind != "b":
            return [bool(v) for v in col.tolist()]
        return col.tolist()
    return [bool(v) for v in col]
