"""The UDFMANAGER (Fig. 1): signatures, aggregated predicates, views.

A UDF *signature* S_u = [N_u; I_u] identifies a reusable computation: the
physical UDF's name plus the sources it reads (the video table, and — for
patch classifiers — the upstream detector whose boxes it classifies).

For every signature the manager maintains the aggregated predicate ``p_u``:
the UNION of the guard predicates of all executed invocations, i.e. a
symbolic description of which tuples have materialized results.  ``p_u``
starts as FALSE and is updated with
``p_u := UNION(p_u, q)`` after each query (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.symbolic.dnf import DnfPredicate
from repro.symbolic.engine import SymbolicEngine


@dataclass(frozen=True)
class UdfSignature:
    """S_u = [N_u; I_u]."""

    udf_name: str
    sources: tuple[str, ...]

    def key(self) -> str:
        return "@".join((self.udf_name.lower(),) + self.sources)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.key()


@dataclass
class UdfHistory:
    """State tracked per signature."""

    signature: UdfSignature
    per_tuple_cost: float
    #: Union of all guard predicates whose results are materialized.
    aggregated_predicate: DnfPredicate = field(
        default_factory=DnfPredicate.false)
    #: Name of the materialized view holding the results.
    view_name: str = ""

    def __post_init__(self):
        if not self.view_name:
            self.view_name = f"mv::{self.signature.key()}"


class UdfManager:
    """Tracks historical UDF invocations to drive reuse decisions."""

    def __init__(self, engine: SymbolicEngine):
        self._engine = engine
        self._histories: dict[str, UdfHistory] = {}
        #: Monotone state version; bumps whenever aggregated predicates
        #: change.  Plan caches key their validity on it.
        self.version = 0

    def history(self, signature: UdfSignature,
                per_tuple_cost: float = 0.0) -> UdfHistory:
        """The (created-on-first-use) history for ``signature``."""
        key = signature.key()
        entry = self._histories.get(key)
        if entry is None:
            entry = UdfHistory(signature, per_tuple_cost)
            self._histories[key] = entry
        elif per_tuple_cost and not entry.per_tuple_cost:
            entry.per_tuple_cost = per_tuple_cost
        return entry

    def known(self, signature: UdfSignature) -> bool:
        return signature.key() in self._histories

    def histories(self) -> list[UdfHistory]:
        return list(self._histories.values())

    # -- the three derived predicates (section 3.2) -------------------------

    def intersection_with_history(self, signature: UdfSignature,
                                  guard: DnfPredicate) -> DnfPredicate:
        """p∩ = INTER(p_u, q): tuples whose results can be reused."""
        return self._engine.intersection(
            self.history(signature).aggregated_predicate, guard)

    def difference_with_history(self, signature: UdfSignature,
                                guard: DnfPredicate) -> DnfPredicate:
        """p- = DIFF(p_u, q): tuples that must still be computed."""
        return self._engine.difference(
            self.history(signature).aggregated_predicate, guard)

    def record_execution(self, signature: UdfSignature,
                         guard: DnfPredicate,
                         per_tuple_cost: float = 0.0) -> None:
        """After executing a query: p_u := UNION(p_u, q)."""
        entry = self.history(signature, per_tuple_cost)
        merged = self._engine.union(entry.aggregated_predicate, guard)
        if merged.conjunctives != entry.aggregated_predicate.conjunctives:
            entry.aggregated_predicate = merged
            self.version += 1
        else:
            entry.aggregated_predicate = merged

    def reset(self) -> None:
        self._histories.clear()
        self.version += 1
