"""Predicate ranking functions (Eq. 2 and Eq. 4) and reordering.

The canonical ranking function (Hellerstein, Eq. 2) is

    r = (s - 1) / c

and EVA's materialization-aware variant (Eq. 4) replaces the evaluation
cost with the *expected* cost given the view:

    r = (s - 1) / (s_{p-} * c_e + c_r)

Predicates are evaluated in ascending rank order; Theorem 4.1 proves this
order minimizes expected cost under predicate independence.

The ``c_e`` fed into these functions is the planner's *believed*
per-tuple UDF cost — the catalog snapshot, optionally re-fit from
observed execution telemetry by :mod:`repro.obs.calibration`
(``EvaConfig.cost_calibration="apply"``).  For fixed selectivity and
miss fraction both ranks are monotone in ``c_e``, so calibration changes
the predicate order exactly when it changes the cost order of the UDFs
involved — the property the calibration audit record's ranking probe
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expressions.expr import Expression

#: Guard against division by zero for free predicates.
_MIN_COST = 1e-9


def canonical_rank(selectivity: float, udf_cost: float) -> float:
    """Eq. 2: ``(s - 1) / c``; smaller ranks evaluate first."""
    return (selectivity - 1.0) / max(udf_cost, _MIN_COST)


def materialization_aware_rank(selectivity: float, missing_fraction: float,
                               udf_cost: float, read_cost: float) -> float:
    """Eq. 4: ``(s - 1) / (s_{p-} * c_e + c_r)``."""
    denominator = missing_fraction * udf_cost + read_cost
    return (selectivity - 1.0) / max(denominator, _MIN_COST)


@dataclass(frozen=True)
class RankedPredicate:
    """One UDF-based predicate with the quantities ranking needs."""

    predicate: Expression
    #: Selectivity of the predicate itself.
    selectivity: float
    #: Per-tuple evaluation cost of the UDF it invokes (c_e).
    udf_cost: float
    #: Fraction of input tuples missing from the UDF's view (s_{p-}).
    missing_fraction: float
    #: Per-tuple view read cost (c_r).
    read_cost: float

    def rank(self, materialization_aware: bool) -> float:
        if materialization_aware:
            return materialization_aware_rank(
                self.selectivity, self.missing_fraction,
                self.udf_cost, self.read_cost)
        return canonical_rank(self.selectivity, self.udf_cost)


def order_udf_predicates(predicates: list[RankedPredicate],
                         materialization_aware: bool
                         ) -> list[RankedPredicate]:
    """Ascending-rank order (ties broken by SQL text for determinism)."""
    return sorted(
        predicates,
        key=lambda p: (p.rank(materialization_aware),
                       p.predicate.to_sql()),
    )
