"""The optimizer driver: Fig. 1's query lifecycle as rule phases.

``Optimizer.optimize`` runs:

1. **Bind** the statement (:mod:`repro.optimizer.binder`).
2. **Build** the canonical logical plan (:mod:`repro.optimizer.builder`).
3. **Canonical rules** — predicate pushdown through the APPLY, frame-filter
   placement, scan-predicate merging (:mod:`repro.optimizer.rules`).
4. **Semantic reuse rules** — Rule I unpacks UDF-based predicates into an
   APPLY chain ordered by the materialization-aware ranking function
   (:mod:`repro.optimizer.reuse_rules`); guards (the associated predicates
   of section 4.1) are annotated on every APPLY.
5. **Implementation** — Rule II: cost-based, materialization-aware
   physical implementation (:mod:`repro.optimizer.implementation`).

The returned :class:`OptimizedQuery` carries the physical plan plus the
post-execution updates (``p_u := UNION(p_u, q)`` per stored UDF) and
introspection data used by tests and the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.config import (
    EvaConfig,
    ModelSelectionMode,
    PredicateOrdering,
    RankingMode,
    ReusePolicy,
)
from repro.costs import CostModel
from repro.obs.audit import ReuseDecisionRecord
from repro.obs.trace import NOOP_SPAN
from repro.optimizer.binder import bind
from repro.optimizer.builder import build_logical_plan
from repro.optimizer.implementation import PhysicalImplementer, PlanUpdate
from repro.optimizer.opt_context import OptimizationContext
from repro.optimizer.plans import DetectorSource, PhysicalPlan
from repro.optimizer.reuse_rules import REUSE_RULES
from repro.optimizer.rules import (
    AnnotateApplyGuardRule,
    CANONICAL_RULES,
    RuleEngine,
)
from repro.optimizer.udf_manager import UdfManager
from repro.parser.ast_nodes import SelectStatement
from repro.symbolic.engine import SymbolicEngine

#: Re-export: sessions record these after execution.
UdfUpdate = PlanUpdate


@dataclass
class OptimizedQuery:
    """The physical plan plus everything the session needs around it."""

    plan: PhysicalPlan
    updates: list[PlanUpdate] = field(default_factory=list)
    #: UDF-predicate evaluation order chosen by the ranking function
    #: (term keys, for tests and the Fig. 9 experiment).
    predicate_order: list[str] = field(default_factory=list)
    #: Detector sources chosen (for the Fig. 10 experiment).
    detector_sources: tuple[DetectorSource, ...] = ()
    #: Reuse-decision audit records accumulated while optimizing (the
    #: "why did EVA (not) reuse?" evidence); the session stamps trace
    #: ids on them and exports each through the tracer's sink.
    audit: list[ReuseDecisionRecord] = field(default_factory=list)


@dataclass(frozen=True)
class OptimizerConfig:
    """Subset of :class:`~repro.config.EvaConfig` the optimizer reads."""

    reuse_policy: ReusePolicy
    ranking: RankingMode
    model_selection: ModelSelectionMode
    symbolic_time_budget: float = 0.5
    predicate_ordering: PredicateOrdering = PredicateOrdering.RANK

    @classmethod
    def from_eva_config(cls, config: EvaConfig) -> "OptimizerConfig":
        return cls(
            reuse_policy=config.reuse_policy,
            ranking=config.ranking,
            model_selection=config.model_selection,
            symbolic_time_budget=config.symbolic_time_budget,
            predicate_ordering=config.predicate_ordering,
        )


class Optimizer:
    """Produces physical plans with the semantic reuse algorithm applied."""

    def __init__(self, catalog: Catalog, udf_manager: UdfManager,
                 engine: SymbolicEngine, config: OptimizerConfig,
                 cost_model: CostModel | None = None):
        self.catalog = catalog
        self.udf_manager = udf_manager
        self.engine = engine
        self.config = config
        self.cost_model = cost_model or CostModel()
        self._rule_engine = RuleEngine()
        #: Calibrated per-model cost overlay (model name -> per-tuple
        #: cost).  Filled by the session's calibration pass
        #: (``EvaConfig.cost_calibration="apply"``;
        #: :mod:`repro.obs.calibration`) and threaded into every
        #: optimization context so Algorithm 2 and Eq. 3 costing use
        #: measured rather than assumed constants.
        self.calibrated_costs: dict[str, float] = {}

    def optimize(self, statement: SelectStatement,
                 tracer=None) -> OptimizedQuery:
        """Optimize ``statement``.

        ``tracer`` (a :class:`repro.obs.trace.Tracer`, optional) receives
        one span per phase — bind, build, canonical-rules, reuse-rules,
        implement — plus per-rule spans for every successful rewrite.
        """
        with _span(tracer, "optimize:bind"):
            bound = bind(statement, self.catalog)
        memo_before = self.engine.memo_stats()
        ctx = OptimizationContext(
            bound=bound,
            catalog=self.catalog,
            udf_manager=self.udf_manager,
            engine=self.engine,
            cost_model=self.cost_model,
            reuse_policy=self.config.reuse_policy,
            ranking=self.config.ranking,
            model_selection=self.config.model_selection,
            predicate_ordering=self.config.predicate_ordering,
            model_costs=dict(self.calibrated_costs),
        )
        with _span(tracer, "optimize:build"):
            plan = build_logical_plan(bound, ctx)
        with _span(tracer, "optimize:canonical-rules"):
            plan = self._rule_engine.rewrite(plan, CANONICAL_RULES, ctx,
                                             tracer)
        with _span(tracer, "optimize:reuse-rules"):
            plan = self._rule_engine.rewrite(plan, REUSE_RULES, ctx,
                                             tracer)
            plan = self._rule_engine.rewrite(
                plan, [AnnotateApplyGuardRule()], ctx, tracer)
        with _span(tracer, "optimize:implement") as span:
            implemented = PhysicalImplementer(ctx).implement(plan)
            span.tag(estimated_cost=round(implemented.cost, 6),
                     estimated_rows=round(implemented.rows, 3))
        self._audit_memo(ctx, memo_before)
        return OptimizedQuery(
            plan=implemented.plan,
            updates=list(implemented.updates),
            predicate_order=list(ctx.predicate_order),
            detector_sources=ctx.detector_sources,
            audit=list(ctx.audit),
        )

    def _audit_memo(self, ctx, before) -> None:
        """Append this pass's reduction-memo hit/miss deltas to the audit.

        One ``symbolic-memo`` record per pass that exercised the memo.
        Under a shared (server) engine the deltas can include concurrent
        clients' traffic — they are an attribution of *activity during*
        this pass, not an exact per-pass ledger, which is the same
        trade the shared profiler makes.
        """
        delta = self.engine.memo_stats().delta(before)
        if delta.hits == 0 and delta.misses == 0:
            return
        from repro.obs.audit import KIND_SYMBOLIC_MEMO, ReuseDecisionRecord

        ctx.audit.record(ReuseDecisionRecord(
            kind=KIND_SYMBOLIC_MEMO,
            signature="symbolic-engine",
            costs={"memo_hits": delta.hits,
                   "memo_misses": delta.misses,
                   "memo_evictions": delta.evictions,
                   "memo_size": delta.size},
            reused=delta.hits > 0,
        ))


def _span(tracer, name: str, **tags):
    """A tracer span when tracing, the shared no-op handle otherwise."""
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **tags)
