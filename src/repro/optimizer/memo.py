"""A Cascades-style memo for UDF-predicate ordering exploration.

The rank-based ordering (Eq. 4) is provably optimal under predicate
independence (Theorem 4.1), so EVA's default path just sorts.  This module
provides the classical alternative: enumerate orderings as memo groups,
cost each with the Theorem's T(O, |R|) expansion, and keep the winner.

Two uses:

* ``predicate_ordering='exhaustive'`` in :class:`~repro.config.EvaConfig`
  switches Rule I to memo search — useful when the independence assumption
  is suspect;
* the test suite asserts memo search and rank ordering agree, which is an
  end-to-end validation of Theorem 4.1 on real cost numbers.

The memo itself is general: groups hold logically equivalent expressions;
each group caches its winner (lowest-cost physical alternative).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.errors import OptimizerError


@dataclass
class GroupExpression:
    """One alternative within a group: an operator + child group ids."""

    operator: Hashable
    children: tuple[int, ...] = ()


@dataclass
class Group:
    """A set of logically equivalent expressions with a cached winner."""

    group_id: int
    expressions: list[GroupExpression] = field(default_factory=list)
    winner: GroupExpression | None = None
    winner_cost: float = float("inf")

    def add(self, expression: GroupExpression) -> None:
        if expression not in self.expressions:
            self.expressions.append(expression)

    def record_winner(self, expression: GroupExpression,
                      cost: float) -> None:
        if cost < self.winner_cost:
            self.winner = expression
            self.winner_cost = cost


class Memo:
    """Group storage with structural deduplication."""

    def __init__(self) -> None:
        self._groups: list[Group] = []
        self._index: dict[Hashable, int] = {}

    def group(self, group_id: int) -> Group:
        return self._groups[group_id]

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    def insert(self, key: Hashable,
               expressions: Sequence[GroupExpression] = ()) -> int:
        """Group id for ``key``, creating the group on first sight."""
        group_id = self._index.get(key)
        if group_id is None:
            group_id = len(self._groups)
            self._groups.append(Group(group_id))
            self._index[key] = group_id
        for expression in expressions:
            self._groups[group_id].add(expression)
        return group_id


@dataclass(frozen=True)
class OrderingCandidate:
    """One UDF predicate with the stats ordering cost needs."""

    key: str
    selectivity: float
    udf_cost: float
    missing_fraction: float


def search_predicate_ordering(
        candidates: Sequence[OrderingCandidate],
        input_rows: float,
        step_cost: Callable[[float, OrderingCandidate], float],
        max_predicates: int = 6,
) -> tuple[list[OrderingCandidate], float, Memo]:
    """Exhaustive memo search over evaluation orders.

    Groups are keyed by the *set* of predicates still to evaluate, so
    shared suffixes are costed once (the dynamic-programming structure of
    ordering problems).  Returns the best order, its cost, and the memo
    (exposed for tests and EXPLAIN-style introspection).

    Args:
        candidates: the UDF predicates to order.
        input_rows: |R| flowing into the first predicate.
        step_cost: cost of evaluating one predicate over a given number of
            input rows (Eq. 3 instantiated by the caller).
        max_predicates: guard against factorial blowups.
    """
    if len(candidates) > max_predicates:
        raise OptimizerError(
            f"refusing to enumerate {len(candidates)}! orderings; "
            "use rank-based ordering instead")
    memo = Memo()
    best_cost: dict[frozenset, float] = {}
    best_order: dict[frozenset, list[OrderingCandidate]] = {}

    def solve(remaining: frozenset, rows: float) -> float:
        """Cheapest cost to evaluate ``remaining`` given ``rows`` input.

        Rows entering a suffix are determined by the (order-independent)
        product of the already-applied selectivities, so memoizing on the
        remaining *set* is exact.
        """
        if not remaining:
            return 0.0
        if remaining in best_cost:
            return best_cost[remaining]
        group_id = memo.insert(remaining)
        best = float("inf")
        best_first: OrderingCandidate | None = None
        for candidate in sorted(remaining, key=lambda c: c.key):
            rest = remaining - {candidate}
            expression = GroupExpression(
                operator=candidate.key,
                children=(memo.insert(rest),) if rest else ())
            memo.group(group_id).add(expression)
            cost = (step_cost(rows, candidate)
                    + solve(rest, rows * candidate.selectivity))
            memo.group(group_id).record_winner(expression, cost)
            if cost < best:
                best = cost
                best_first = candidate
        assert best_first is not None
        best_cost[remaining] = best
        best_order[remaining] = ([best_first]
                                 + best_order.get(
                                     remaining - {best_first}, []))
        return best

    universe = frozenset(candidates)
    total = solve(universe, input_rows)
    return best_order.get(universe, []), total, memo


def enumerate_ordering_costs(
        candidates: Sequence[OrderingCandidate],
        input_rows: float,
        step_cost: Callable[[float, OrderingCandidate], float],
) -> dict[tuple[str, ...], float]:
    """Brute-force cost of every permutation (for tests)."""
    out: dict[tuple[str, ...], float] = {}
    for order in itertools.permutations(candidates):
        rows = input_rows
        cost = 0.0
        for candidate in order:
            cost += step_cost(rows, candidate)
            rows *= candidate.selectivity
        out[tuple(c.key for c in order)] = cost
    return out
