"""Re-export of the cost model (lives in :mod:`repro.costs` to keep the
config module free of optimizer-package imports)."""

from repro.costs import CostConstants, CostModel

__all__ = ["CostConstants", "CostModel"]
