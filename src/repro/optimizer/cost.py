"""Re-export of the cost model (lives in :mod:`repro.costs` to keep the
config module free of optimizer-package imports).

The per-tuple ``c_e`` values that flow *through* this model at plan time
are the planner's beliefs — catalog snapshots optionally re-fit from
observed telemetry by :mod:`repro.obs.calibration` when
``EvaConfig.cost_calibration="apply"`` is set (see
``docs/observability.md`` for the Eq. 3 ↔ observed-cost mapping).
"""

from repro.costs import CostConstants, CostModel

__all__ = ["CostConstants", "CostModel"]
