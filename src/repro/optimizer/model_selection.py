"""Logical UDF reuse: physical model selection (section 4.3, Algorithm 2).

Selecting which physical models (and whose materialized views) serve a
logical vision task reduces to weighted set cover (Theorem 4.2).  The
greedy algorithm repeatedly picks the view with the lowest cost per covered
tuple, falling back to the cheapest model that meets the accuracy
constraint once views stop being worthwhile.

This module also exposes a generic :func:`greedy_weighted_set_cover` so the
reduction itself can be exercised and tested directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.errors import OptimizerError
from repro.models.base import ObjectDetectorModel
from repro.obs.audit import predicate_sql
from repro.optimizer.plans import DetectorSource
from repro.optimizer.udf_manager import UdfManager, UdfSignature
from repro.symbolic.dnf import DnfPredicate
from repro.symbolic.engine import SymbolicEngine
from repro.symbolic.selectivity import SelectivityEstimator


# ---------------------------------------------------------------------------
# Generic greedy weighted set cover
# ---------------------------------------------------------------------------


def greedy_weighted_set_cover(universe: set[Hashable],
                              sets: Sequence[tuple[frozenset, float]]
                              ) -> list[int]:
    """Classic ln(n)-approximate greedy cover.

    Args:
        universe: elements to cover.
        sets: (elements, weight) pairs.

    Returns:
        Indices into ``sets`` forming a cover, in pick order.

    Raises:
        OptimizerError: when the union of sets cannot cover the universe.
    """
    if not universe:
        return []
    coverable = set().union(*[s for s, _ in sets]) if sets else set()
    if not universe <= coverable:
        raise OptimizerError("sets cannot cover the universe")
    uncovered = set(universe)
    picked: list[int] = []
    available = set(range(len(sets)))
    while uncovered:
        best_index = None
        best_ratio = float("inf")
        for index in sorted(available):
            elements, weight = sets[index]
            gain = len(elements & uncovered)
            if gain == 0:
                continue
            ratio = weight / gain
            if ratio < best_ratio:
                best_ratio = ratio
                best_index = index
        if best_index is None:  # pragma: no cover - guarded above
            raise OptimizerError("greedy cover stalled")
        picked.append(best_index)
        available.discard(best_index)
        uncovered -= sets[best_index][0]
    return picked


# ---------------------------------------------------------------------------
# Algorithm 2: OptimalPhysicalUDFs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelCandidate:
    """One physical model considered for a logical vision task."""

    model: ObjectDetectorModel
    signature: UdfSignature


def select_physical_udfs(candidates: Sequence[ModelCandidate],
                         query_predicate: DnfPredicate,
                         udf_manager: UdfManager,
                         engine: SymbolicEngine,
                         estimator: SelectivityEstimator,
                         input_rows: int,
                         view_read_cost_per_tuple: float,
                         use_views: bool = True,
                         audit: list[dict] | None = None,
                         model_costs: dict[str, float] | None = None,
                         ) -> list[DetectorSource]:
    """Algorithm 2: the optimal ordered set of physical UDFs.

    Args:
        candidates: physical models satisfying the accuracy constraint
            (the set X of Algorithm 2, line 2).
        query_predicate: q, the predicate guarding the logical UDF.
        udf_manager: source of each model's aggregated predicate p_x.
        estimator: selectivity estimator over the input table's statistics.
        input_rows: |R| of the input table (for set cardinalities).
        view_read_cost_per_tuple: cost of reading one tuple from a view.
        use_views: False reproduces the MIN-COST baselines (no view reuse).
        audit: optional list that receives one dict per greedy iteration
            (candidate weights W(x, q), the pick, the remaining predicate)
            plus a final entry for the fallback model — the raw material of
            the ``model-selection`` reuse-decision audit record.
        model_costs: the planner's *believed* per-tuple cost per model
            (catalog snapshot, possibly re-fit by
            :mod:`repro.obs.calibration`); models missing from the map
            fall back to their declared cost.  Line 3's "cheapest
            physical UDF" and line 8's view-vs-model comparison run on
            these beliefs.

    Returns:
        Ordered :class:`DetectorSource` entries; executors consult them
        first-match.  The final entry always covers the remainder with the
        cheapest model.
    """
    if not candidates:
        raise OptimizerError("no physical model satisfies the constraints")

    def believed_cost(candidate: ModelCandidate) -> float:
        if model_costs is not None:
            return model_costs.get(candidate.model.name,
                                   candidate.model.per_tuple_cost)
        return candidate.model.per_tuple_cost

    # Line 3: the cheapest physical UDF, used when views stop paying off.
    cheapest = min(candidates, key=believed_cost)
    selected: list[DetectorSource] = []
    remaining = query_predicate
    if use_views:
        usable = list(candidates)
        iteration = 0
        while not remaining.is_false() and usable:
            best: ModelCandidate | None = None
            best_sources: DnfPredicate | None = None
            best_cost_per_tuple = float("inf")
            weights: list[dict] = []
            for candidate in usable:
                covered = udf_manager.intersection_with_history(
                    candidate.signature, remaining)
                covered_fraction = estimator.selectivity(covered)
                covered_tuples = covered_fraction * input_rows
                if covered_tuples <= 0:
                    if audit is not None:
                        weights.append({
                            "model": candidate.model.name,
                            "covered_fraction": covered_fraction,
                            "weight": None,
                        })
                    continue
                history = udf_manager.history(candidate.signature)
                view_fraction = estimator.selectivity(
                    history.aggregated_predicate)
                view_cost = view_fraction * input_rows \
                    * view_read_cost_per_tuple
                # Line 6: W(x, q) = C(m_x) / (s_{p∩} * |m_x|).
                cost_per_tuple = view_cost / covered_tuples
                if audit is not None:
                    weights.append({
                        "model": candidate.model.name,
                        "covered_fraction": covered_fraction,
                        "view_cost": view_cost,
                        "weight": cost_per_tuple,
                    })
                if cost_per_tuple < best_cost_per_tuple:
                    best_cost_per_tuple = cost_per_tuple
                    best = candidate
                    best_sources = covered
            # Line 8: is the best view cheaper than just running the model?
            if best is None or best_cost_per_tuple >= \
                    believed_cost(cheapest):
                if audit is not None:
                    audit.append({
                        "iteration": iteration,
                        "weights": weights,
                        "picked": None,
                        "stop": ("no coverage" if best is None
                                 else "view dearer than cheapest model"),
                    })
                break
            assert best_sources is not None
            selected.append(DetectorSource(
                model_name=best.model.name,
                use_view=True,
                predicate=best_sources,
            ))
            # Line 10: q := DIFF(p_x*, q).
            remaining = engine.difference(
                udf_manager.history(best.signature).aggregated_predicate,
                remaining)
            usable.remove(best)
            if audit is not None:
                audit.append({
                    "iteration": iteration,
                    "weights": weights,
                    "picked": best.model.name,
                    "weight": best_cost_per_tuple,
                    "remaining": predicate_sql(remaining),
                })
            iteration += 1
    # Lines 11-13: the cheapest UDF covers whatever is left.
    if not remaining.is_false() or not selected:
        selected.append(DetectorSource(
            model_name=cheapest.model.name,
            use_view=False,
            predicate=remaining,
        ))
        if audit is not None:
            audit.append({
                "fallback": cheapest.model.name,
                "per_tuple_cost": believed_cost(cheapest),
                "remaining": predicate_sql(remaining),
            })
    return selected
