"""Logical plan construction from a bound query.

The builder produces the *canonical* logical plan the rule engine then
rewrites: a scan, the detector CROSS APPLY, one selection carrying the
whole WHERE clause, APPLY nodes for UDF terms appearing only in the
output, and the output operator (projection or aggregation).
"""

from __future__ import annotations

from repro.catalog.udf_registry import UdfKind
from repro.expressions.analysis import term_key
from repro.expressions.expr import AggregateCall
from repro.optimizer.binder import BoundQuery
from repro.optimizer.opt_context import OptimizationContext
from repro.optimizer.plans import (
    LogicalApply,
    LogicalClassifierApply,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalGroupBy,
    LogicalLimit,
    LogicalNode,
    LogicalOrderBy,
    LogicalProject,
    walk_plan,
)


def build_logical_plan(bound: BoundQuery,
                       ctx: OptimizationContext) -> LogicalNode:
    """Canonical (pre-rewrite) logical plan for ``bound``."""
    plan: LogicalNode = LogicalGet(bound.table_name)
    if bound.detector_call is not None:
        plan = LogicalApply(plan, bound.detector_call)
    if bound.where is not None:
        plan = LogicalFilter(plan, bound.where)
    plan = _apply_output_udf_terms(plan, bound, ctx)
    plan = _build_output(plan, bound)
    if bound.statement.distinct:
        plan = LogicalDistinct(plan)
    if bound.order_keys:
        plan = LogicalOrderBy(plan, bound.order_keys)
    if bound.limit is not None:
        plan = LogicalLimit(plan, bound.limit)
    return plan


def _apply_output_udf_terms(plan: LogicalNode, bound: BoundQuery,
                            ctx: OptimizationContext) -> LogicalNode:
    """APPLY nodes for expensive UDF terms used only in the output list
    (Q2's LICENSE in Listing 1).  Terms already present in the WHERE
    clause are skipped — the predicate transformation rule applies them."""
    applied = set()
    for node in walk_plan(plan):
        if isinstance(node, (LogicalClassifierApply, LogicalApply)):
            applied.add(term_key(node.call))
    if bound.where is not None:
        applied.update(term_key(c)
                       for c in ctx.expensive_calls(bound.where))
    for expr in list(bound.group_keys) + [e for e, _ in bound.select_items]:
        for call in ctx.expensive_calls(expr):
            definition = ctx.udf_definition(call)
            if definition.kind is UdfKind.DETECTOR:
                continue
            if term_key(call) in applied:
                continue
            plan = LogicalClassifierApply(plan, call)
            applied.add(term_key(call))
    return plan


def _build_output(plan: LogicalNode, bound: BoundQuery) -> LogicalNode:
    has_aggregates = any(
        isinstance(node, AggregateCall)
        for expr, _ in bound.select_items
        for node in expr.walk()
    )
    if has_aggregates or bound.group_keys:
        return LogicalGroupBy(plan, bound.group_keys, bound.select_items)
    return LogicalProject(plan, bound.select_items)
