"""The rule framework and the canonical transformation rules.

EVA's optimizer is Cascades-style: rewrites are expressed as first-class
rule objects that match a plan node and return a replacement subtree, and
the developer may extend the rule set over time (section 5.1).  The
:class:`RuleEngine` applies a phase's rules to a fixpoint with a
deterministic traversal.

This module contains the framework plus the canonical rules (predicate
pushdown and guard annotation); the semantic-reuse rules of section 4.4
live in :mod:`repro.optimizer.reuse_rules`.
"""

from __future__ import annotations

import abc
import time

from repro.catalog.udf_registry import UdfKind
from repro.errors import UnsupportedPredicateError
from repro.expressions.analysis import (
    conjunction_of,
    references_only,
    split_conjuncts,
)
from repro.optimizer.opt_context import OptimizationContext
from repro.optimizer.plans import (
    LogicalApply,
    LogicalClassifierApply,
    LogicalFilter,
    LogicalGet,
    LogicalNode,
    plan_children,
    replace_child,
    walk_plan,
)
from repro.symbolic.dnf import DnfPredicate

#: Columns available before the detector APPLY (post-binding: timestamps
#: are rewritten to frame ids).
SCAN_COLUMNS = frozenset({"id", "timestamp", "frame"})


class TransformationRule(abc.ABC):
    """A logical-to-logical rewrite."""

    #: Rule name shown in traces.
    name: str = "rule"

    @abc.abstractmethod
    def apply(self, node: LogicalNode, ctx: OptimizationContext
              ) -> LogicalNode | None:
        """Rewritten subtree rooted at ``node``, or None when not
        applicable."""


class RuleEngine:
    """Applies transformation rules to a fixpoint.

    Traversal is top-down and restarts after every successful rewrite, so
    rule interactions (a pushdown enabling a merge) resolve without
    explicit ordering constraints inside one phase.
    """

    MAX_ITERATIONS = 200

    def rewrite(self, plan: LogicalNode, rules: list[TransformationRule],
                ctx: OptimizationContext, tracer=None) -> LogicalNode:
        """Apply ``rules`` to a fixpoint.

        ``tracer`` (a :class:`repro.obs.trace.Tracer`, optional) receives
        one ``rule:<name>`` span per *successful* rewrite, parented under
        the caller's open phase span.
        """
        for _ in range(self.MAX_ITERATIONS):
            rewritten = self._rewrite_once(plan, rules, ctx, tracer)
            if rewritten is None:
                return plan
            plan = rewritten
        raise RuntimeError(
            "rule engine did not reach a fixpoint; a rule likely "
            "oscillates")

    def _rewrite_once(self, node: LogicalNode,
                      rules: list[TransformationRule],
                      ctx: OptimizationContext,
                      tracer=None) -> LogicalNode | None:
        for rule in rules:
            start = time.perf_counter()
            replacement = rule.apply(node, ctx)
            if replacement is not None and replacement != node:
                self._trace_rule(tracer, rule, node,
                                 time.perf_counter() - start)
                return replacement
        for child in plan_children(node):
            new_child = self._rewrite_once(child, rules, ctx, tracer)
            if new_child is not None:
                return replace_child(node, new_child)
        return None

    @staticmethod
    def _trace_rule(tracer, rule: TransformationRule,
                    node: LogicalNode, wall_seconds: float) -> None:
        if tracer is None or not tracer.enabled:
            return
        trace_id = tracer.current_trace_id
        if trace_id is None:  # no open trace: nothing to attach to
            return
        tracer.add_span(
            f"rule:{rule.name}",
            trace_id=trace_id,
            parent_id=tracer.current_span_id,
            wall_seconds=wall_seconds,
            node=type(node).__name__,
        )


def guard_below(node: LogicalNode, ctx: OptimizationContext
                ) -> DnfPredicate:
    """The predicate guaranteed to hold on tuples flowing out of ``node``.

    For the linear plans EVA produces this is the conjunction of the scan
    predicate, every filter below, and the implicit TRUE-outcomes of
    frame-filter APPLY nodes — the "associated predicate" of section 4.1.

    Conjuncts the symbolic engine cannot analyze (e.g. column-to-column
    comparisons, the paper's section 6 limitation) are skipped: the guard
    then over-approximates coverage, which is safe — the executor's view
    probes are key-based and fall back to evaluation on any miss.
    """
    conjuncts = []
    for part in walk_plan(node):
        if isinstance(part, LogicalGet) and part.predicate is not None:
            conjuncts.extend(split_conjuncts(part.predicate))
        elif isinstance(part, LogicalFilter):
            conjuncts.extend(split_conjuncts(part.predicate))
    analyzable = [c for c in conjuncts if _analyzable(c, ctx)]
    if not analyzable:
        return DnfPredicate.true()
    return ctx.engine.analyze(conjunction_of(analyzable))


def _analyzable(conjunct, ctx: OptimizationContext) -> bool:
    try:
        ctx.engine.analyze(conjunct)
        return True
    except UnsupportedPredicateError:
        return False


# ---------------------------------------------------------------------------
# Canonical rules
# ---------------------------------------------------------------------------


class PushFilterThroughApplyRule(TransformationRule):
    """Move scan-column conjuncts below the detector CROSS APPLY.

    ``Filter(p_scan AND rest, Apply(child))`` becomes
    ``Filter(rest, Apply(Filter(p_scan, child)))``.
    """

    name = "push-filter-through-apply"

    def apply(self, node, ctx):
        if not isinstance(node, LogicalFilter):
            return None
        if not isinstance(node.child, LogicalApply):
            return None
        pushable, rest = [], []
        for conjunct in split_conjuncts(node.predicate):
            if references_only(conjunct, SCAN_COLUMNS):
                pushable.append(conjunct)
            else:
                rest.append(conjunct)
        if not pushable:
            return None
        apply_node = node.child
        pushed = LogicalFilter(apply_node.child, conjunction_of(pushable))
        new_apply = LogicalApply(pushed, apply_node.call, apply_node.guard)
        if not rest:
            return new_apply
        return LogicalFilter(new_apply, conjunction_of(rest))


class PushFrameFilterThroughApplyRule(TransformationRule):
    """Plan specialized frame filters *before* the detector (section 5.6).

    A conjunct invoking a FRAME_FILTER UDF over scan columns only is
    rewritten into a classifier APPLY + filter below the detector APPLY,
    so vehicle-free frames never reach the expensive model.
    """

    name = "push-frame-filter-through-apply"

    def apply(self, node, ctx):
        if not isinstance(node, LogicalFilter):
            return None
        if not isinstance(node.child, LogicalApply):
            return None
        frame_conjuncts, rest = [], []
        for conjunct in split_conjuncts(node.predicate):
            if self._is_frame_filter_conjunct(conjunct, ctx):
                frame_conjuncts.append(conjunct)
            else:
                rest.append(conjunct)
        if not frame_conjuncts:
            return None
        apply_node = node.child
        below: LogicalNode = apply_node.child
        for conjunct in frame_conjuncts:
            call = ctx.expensive_calls(conjunct)[0]
            below = LogicalClassifierApply(below, call)
            below = LogicalFilter(below, conjunct)
        new_apply = LogicalApply(below, apply_node.call, apply_node.guard)
        if not rest:
            return new_apply
        return LogicalFilter(new_apply, conjunction_of(rest))

    @staticmethod
    def _is_frame_filter_conjunct(conjunct, ctx) -> bool:
        calls = ctx.expensive_calls(conjunct)
        if len(calls) != 1:
            return False
        definition = ctx.udf_definition(calls[0])
        return (definition.kind is UdfKind.FRAME_FILTER
                and references_only(conjunct, SCAN_COLUMNS,
                                    allow_functions=True))


class MergeFilterIntoGetRule(TransformationRule):
    """Fold pure frame-id conjuncts into the scan itself.

    The scan derives its frame ranges from this predicate, so a pushed
    ``id < 10000`` turns into a bounded physical scan.
    """

    name = "merge-filter-into-get"

    def apply(self, node, ctx):
        if not isinstance(node, LogicalFilter):
            return None
        if not isinstance(node.child, LogicalGet):
            return None
        mergeable, rest = [], []
        for conjunct in split_conjuncts(node.predicate):
            if references_only(conjunct, {"id"}) and \
                    _analyzable(conjunct, ctx):
                mergeable.append(conjunct)
            else:
                rest.append(conjunct)
        if not mergeable:
            return None
        get = node.child
        existing = ([get.predicate] if get.predicate is not None else [])
        new_get = LogicalGet(get.table_name,
                             conjunction_of(existing + mergeable))
        if not rest:
            return new_get
        return LogicalFilter(new_get, conjunction_of(rest))


class AnnotateApplyGuardRule(TransformationRule):
    """Attach the associated predicate (section 4.1) to detector applies.

    Runs in its own phase after pushdown so the guard reflects the final
    position of every filter below the APPLY.
    """

    name = "annotate-apply-guard"

    def apply(self, node, ctx):
        if isinstance(node, LogicalApply) and node.guard is None:
            return LogicalApply(node.child, node.call,
                                guard_below(node.child, ctx))
        if isinstance(node, LogicalClassifierApply) and node.guard is None:
            return LogicalClassifierApply(node.child, node.call,
                                          guard_below(node.child, ctx))
        return None


CANONICAL_RULES = [
    MergeFilterIntoGetRule(),
    PushFilterThroughApplyRule(),
    PushFrameFilterThroughApplyRule(),
]
