"""The semantic-reuse transformation rules (section 4.4).

**Rule I — UDF-based predicate transformation.**  A selection operator
containing UDF-based predicates is unpacked into a chain of APPLY
operators, one per UDF term, ordered by the (materialization-aware)
ranking function; each APPLY is followed by the comparison filter, so the
output of the preceding UDF-based predicate is the input of the
succeeding one (Fig. 3).

**Rule II — materialization-aware transformation.**  Each APPLY is
implemented against the materialized views: a view probe for tuples whose
results exist (the LEFT OUTER JOIN of Fig. 4), conditional evaluation for
the rest, and a STORE appending fresh results.  Implemented in
:mod:`repro.optimizer.implementation`, where logical applies become
physical operators with cost-based source selection.
"""

from __future__ import annotations

from repro.config import PredicateOrdering, RankingMode, ReusePolicy
from repro.errors import UnsupportedPredicateError
from repro.expressions.analysis import (
    conjunction_of,
    split_conjuncts,
    term_key,
)
from repro.expressions.expr import Expression, FunctionCall
from repro.obs.audit import (
    KIND_RANKING,
    ReuseDecisionRecord,
    predicate_sql,
)
from repro.optimizer.opt_context import OptimizationContext
from repro.optimizer.plans import (
    LogicalClassifierApply,
    LogicalFilter,
    LogicalNode,
    walk_plan,
)
from repro.optimizer.ranking import RankedPredicate, order_udf_predicates
from repro.optimizer.rules import TransformationRule, guard_below


class UdfPredicateTransformationRule(TransformationRule):
    """Rule I: unpack a selection containing UDF-based predicates."""

    name = "udf-predicate-transformation"

    def apply(self, node: LogicalNode, ctx: OptimizationContext
              ) -> LogicalNode | None:
        if not isinstance(node, LogicalFilter):
            return None
        applied_below = {term_key(n.call) for n in walk_plan(node.child)
                         if isinstance(n, LogicalClassifierApply)}
        direct, udf_groups, residual, computed = self._classify(
            node.predicate, ctx, applied_below)
        if not udf_groups and not residual:
            return None  # nothing to unpack (or already unpacked)

        child = node.child
        if direct:
            child = LogicalFilter(child, conjunction_of(direct))
        guard = guard_below(child, ctx)

        for predicate, call in self._rank(udf_groups, guard, ctx):
            child = LogicalClassifierApply(child, call, guard)
            child = LogicalFilter(child, predicate)
            ctx.predicate_order.append(term_key(call))
            try:
                guard = ctx.engine.intersection(
                    guard, ctx.engine.analyze(predicate))
            except UnsupportedPredicateError:
                pass  # guard stays an over-approximation (safe)

        # Residual conjuncts reference several UDF terms at once: apply
        # any terms not yet computed, then filter.
        for conjunct in residual:
            child = self._apply_missing_terms(child, conjunct, guard, ctx)
            child = LogicalFilter(child, conjunct)
        # Conjuncts over terms already applied below stay on top: their
        # UDF columns only exist above the corresponding APPLY.
        if computed:
            child = LogicalFilter(child, conjunction_of(computed))
        return child

    # -- classification --------------------------------------------------------

    def _classify(self, predicate: Expression, ctx: OptimizationContext,
                  applied_below: set[str]):
        direct: list[Expression] = []
        udf_groups: dict[str, list[Expression]] = {}
        residual: list[Expression] = []
        computed: list[Expression] = []
        for conjunct in split_conjuncts(predicate):
            calls = ctx.expensive_calls(conjunct)
            scalar_calls = {
                term_key(c) for c in calls
                if not ctx.udf_definition(c).is_table_valued
            }
            if not scalar_calls:
                direct.append(conjunct)
            elif scalar_calls <= applied_below:
                computed.append(conjunct)
            elif len(scalar_calls) == 1:
                udf_groups.setdefault(
                    next(iter(scalar_calls)), []).append(conjunct)
            else:
                residual.append(conjunct)
        return direct, udf_groups, residual, computed

    # -- materialization-aware ranking (section 4.2) ----------------------------

    def _rank(self, udf_groups: dict[str, list[Expression]],
              guard, ctx: OptimizationContext
              ) -> list[tuple[Expression, FunctionCall]]:
        if not udf_groups:
            return []
        guard_selectivity = max(ctx.estimator.selectivity(guard), 1e-9)
        ranked: list[RankedPredicate] = []
        lookup: dict[str, tuple[Expression, FunctionCall]] = {}
        for conjuncts in udf_groups.values():
            predicate = conjunction_of(conjuncts)
            call = next(
                c for c in ctx.expensive_calls(predicate)
                if not ctx.udf_definition(c).is_table_valued)
            definition = ctx.udf_definition(call)
            missing = 1.0
            if ctx.reuse_policy is ReusePolicy.EVA:
                signature = ctx.classifier_signature(call)
                if ctx.udf_manager.known(signature):
                    diff = ctx.udf_manager.difference_with_history(
                        signature, guard)
                    missing = min(1.0, ctx.estimator.selectivity(diff)
                                  / guard_selectivity)
            try:
                selectivity = ctx.estimator.selectivity(
                    ctx.engine.analyze(predicate))
            except UnsupportedPredicateError:
                selectivity = 0.33  # unanalyzable: uninformative default
            # Believed c_e: the calibrated overlay wins over the cost
            # snapshotted at registration (repro.obs.calibration keeps
            # the catalog in sync on apply; the overlay also covers
            # plans built before a catalog refresh propagates).
            udf_cost = definition.per_tuple_cost
            if definition.model_name:
                udf_cost = ctx.model_costs.get(definition.model_name,
                                               udf_cost)
            item = RankedPredicate(
                predicate=predicate,
                selectivity=selectivity,
                udf_cost=udf_cost,
                missing_fraction=missing,
                read_cost=ctx.cost_model.constants.view_read_per_tuple,
            )
            ranked.append(item)
            lookup[predicate.to_sql()] = (predicate, call)
        if ctx.predicate_ordering is PredicateOrdering.EXHAUSTIVE:
            chosen = self._search_order(ranked, lookup, guard, ctx)
            self._audit_ranking(ranked, chosen, guard, ctx,
                                strategy="exhaustive-memo")
            return chosen
        materialization_aware = (
            ctx.ranking is RankingMode.MATERIALIZATION_AWARE)
        ordered = order_udf_predicates(ranked, materialization_aware)
        chosen = [lookup[item.predicate.to_sql()] for item in ordered]
        self._audit_ranking(
            ranked, chosen, guard, ctx,
            strategy=("rank-eq4" if materialization_aware
                      else "rank-eq2"))
        return chosen

    @staticmethod
    def _audit_ranking(ranked: list[RankedPredicate],
                       chosen: list[tuple[Expression, FunctionCall]],
                       guard, ctx: OptimizationContext,
                       strategy: str) -> None:
        """Emit the predicate-ordering decision as an audit record."""
        materialization_aware = (
            ctx.ranking is RankingMode.MATERIALIZATION_AWARE)
        ctx.audit.record(ReuseDecisionRecord(
            kind=KIND_RANKING,
            signature=ctx.bound.table_name,
            query_predicate=predicate_sql(guard),
            selectivities={"guard": ctx.estimator.selectivity(guard)},
            costs={"strategy": strategy},
            candidates=[
                {
                    "predicate": item.predicate.to_sql(),
                    "selectivity": item.selectivity,
                    "udf_cost": item.udf_cost,
                    "missing_fraction": item.missing_fraction,
                    "read_cost": item.read_cost,
                    "rank": item.rank(materialization_aware),
                }
                for item in ranked
            ],
            chosen=[{"order": index, "term": term_key(call),
                     "predicate": predicate.to_sql()}
                    for index, (predicate, call) in enumerate(chosen)],
            reused=any(item.missing_fraction < 1.0 for item in ranked),
        ))

    @staticmethod
    def _search_order(ranked: list[RankedPredicate],
                      lookup: dict[str, tuple[Expression, FunctionCall]],
                      guard, ctx: OptimizationContext
                      ) -> list[tuple[Expression, FunctionCall]]:
        """Memo-based exhaustive ordering (the cost-based alternative to
        Theorem 4.1's rank sort)."""
        from repro.optimizer.memo import (
            OrderingCandidate,
            search_predicate_ordering,
        )

        candidates = [
            OrderingCandidate(
                key=item.predicate.to_sql(),
                selectivity=item.selectivity,
                udf_cost=item.udf_cost,
                missing_fraction=item.missing_fraction,
            )
            for item in ranked
        ]
        input_rows = (ctx.bound.metadata.num_frames
                      * max(1.0, ctx.bound.metadata.vehicles_per_frame)
                      * max(ctx.estimator.selectivity(guard), 1e-9))

        def step_cost(rows: float, candidate: OrderingCandidate) -> float:
            # In canonical-ranking mode the baseline cost model ignores
            # materialization: evaluate everything.
            missing = (candidate.missing_fraction
                       if ctx.ranking is RankingMode.MATERIALIZATION_AWARE
                       else 1.0)
            return ctx.cost_model.udf_predicate_cost(
                rows, candidate.udf_cost, missing)

        order, _cost, _memo = search_predicate_ordering(
            candidates, input_rows, step_cost)
        return [lookup[candidate.key] for candidate in order]

    # -- residual handling -----------------------------------------------------

    @staticmethod
    def _apply_missing_terms(child: LogicalNode, conjunct: Expression,
                             guard, ctx: OptimizationContext
                             ) -> LogicalNode:
        applied = {term_key(n.call) for n in walk_plan(child)
                   if isinstance(n, LogicalClassifierApply)}
        for call in ctx.expensive_calls(conjunct):
            if ctx.udf_definition(call).is_table_valued:
                continue
            if term_key(call) in applied:
                continue
            child = LogicalClassifierApply(child, call, guard)
            applied.add(term_key(call))
        return child


REUSE_RULES = [UdfPredicateTransformationRule()]
