"""Query optimizer: canonical rewrites plus the semantic reuse algorithm.

The optimizer follows the paper's Fig. 1 lifecycle: bind the parsed query,
apply canonical rules (predicate splitting and pushdown), then run the
semantic reuse algorithm — identify candidate UDFs, compute signatures,
perform materialization-aware optimizations (predicate reordering, logical
model selection), and apply the two rule-based transformations of
section 4.4 to produce a physical plan.
"""

from repro.optimizer.plans import (
    DetectorSource,
    PhysicalPlan,
    PhysClassifierApply,
    PhysDetectorApply,
    PhysFilter,
    PhysGroupBy,
    PhysLimit,
    PhysOrderBy,
    PhysProject,
    PhysScan,
)
from repro.optimizer.cost import CostModel, CostConstants
from repro.optimizer.ranking import (
    canonical_rank,
    materialization_aware_rank,
    order_udf_predicates,
)
from repro.optimizer.udf_manager import UdfManager, UdfSignature
from repro.optimizer.model_selection import select_physical_udfs
from repro.optimizer.optimizer import Optimizer, OptimizerConfig

__all__ = [
    "PhysicalPlan",
    "PhysScan",
    "PhysDetectorApply",
    "PhysClassifierApply",
    "PhysFilter",
    "PhysProject",
    "PhysGroupBy",
    "PhysOrderBy",
    "PhysLimit",
    "DetectorSource",
    "CostModel",
    "CostConstants",
    "canonical_rank",
    "materialization_aware_rank",
    "order_udf_predicates",
    "UdfManager",
    "UdfSignature",
    "select_physical_udfs",
    "Optimizer",
    "OptimizerConfig",
]
