"""Name resolution and query normalization (binding).

Binding turns a parsed :class:`SelectStatement` into a validated, normalized
form the optimizer can reason about:

* the table must be a registered video; its metadata and statistics attach;
* UDF names resolve against the registry; unknown names raise
  :class:`~repro.errors.BindingError`;
* ``AREA(bbox)`` calls rewrite to the derived ``area`` column the detector
  APPLY produces;
* ``timestamp`` comparisons rewrite to equivalent ``id`` comparisons
  (``timestamp = id / fps``), so scan-range extraction has a single
  dimension to work with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.udf_registry import UdfDefinition, UdfKind
from repro.errors import BindingError
from repro.expressions.analysis import substitute
from repro.expressions.expr import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Star,
)
from repro.parser.ast_nodes import SelectStatement
from repro.types import VideoMetadata

#: Columns available before the detector APPLY.
SCAN_COLUMNS = frozenset({"id", "timestamp", "frame"})
#: Columns the detector APPLY adds.
DETECTOR_COLUMNS = frozenset({"label", "bbox", "score", "area"})


@dataclass(frozen=True)
class BoundQuery:
    """A validated, normalized SELECT query."""

    statement: SelectStatement
    metadata: VideoMetadata
    detector_call: FunctionCall | None
    detector_def: UdfDefinition | None
    where: Expression | None
    select_items: tuple[tuple[Expression, str], ...]
    group_keys: tuple[Expression, ...]
    order_keys: tuple[tuple[Expression, bool], ...]
    limit: int | None

    @property
    def table_name(self) -> str:
        return self.metadata.name

    @property
    def available_columns(self) -> frozenset[str]:
        if self.detector_call is None:
            return SCAN_COLUMNS
        return SCAN_COLUMNS | DETECTOR_COLUMNS


def bind(statement: SelectStatement, catalog: Catalog) -> BoundQuery:
    """Validate and normalize ``statement`` against ``catalog``."""
    if not catalog.has_table(statement.table_name):
        raise BindingError(f"unknown table {statement.table_name!r}")
    metadata = catalog.video_metadata(statement.table_name)

    detector_call: FunctionCall | None = None
    detector_def: UdfDefinition | None = None
    if statement.cross_applies:
        if len(statement.cross_applies) > 1:
            raise BindingError(
                "only one CROSS APPLY per query is supported")
        detector_call = statement.cross_applies[0].call
        detector_def = _resolve_udf(detector_call, catalog)
        if detector_def.kind is not UdfKind.DETECTOR:
            raise BindingError(
                f"CROSS APPLY requires a table-valued UDF; "
                f"{detector_call.name!r} is {detector_def.kind.value}")

    normalizer = _Normalizer(catalog, metadata)
    where = (normalizer.normalize(statement.where)
             if statement.where is not None else None)
    select_items = tuple(
        (normalizer.normalize(expr), alias or _default_name(expr))
        for expr, alias in statement.select_list
    )
    group_keys = tuple(normalizer.normalize(e) for e in statement.group_by)
    order_keys = tuple((normalizer.normalize(item.expr), item.ascending)
                       for item in statement.order_by)

    bound = BoundQuery(
        statement=statement,
        metadata=metadata,
        detector_call=detector_call,
        detector_def=detector_def,
        where=where,
        select_items=select_items,
        group_keys=group_keys,
        order_keys=order_keys,
        limit=statement.limit,
    )
    _validate_column_references(bound)
    return bound


def _default_name(expr: Expression) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    return expr.to_sql()


def _resolve_udf(call: FunctionCall, catalog: Catalog) -> UdfDefinition:
    if call.name not in catalog.udfs:
        raise BindingError(f"unknown UDF {call.name!r}")
    return catalog.udfs.get(call.name)


class _Normalizer:
    """Rewrites expressions into canonical bound form."""

    def __init__(self, catalog: Catalog, metadata: VideoMetadata):
        self._catalog = catalog
        self._metadata = metadata

    def normalize(self, expr: Expression) -> Expression:
        return substitute(expr, self._rewrite)

    def _rewrite(self, node: Expression) -> Expression | None:
        if isinstance(node, FunctionCall):
            definition = _resolve_udf(node, self._catalog)
            if definition.kind is UdfKind.BUILTIN and \
                    definition.builtin_name == "area":
                # AREA(bbox) — under whatever name it was registered — is
                # the derived column the detector APPLY adds.
                return ColumnRef("area")
            return None
        if isinstance(node, Comparison):
            return self._rewrite_timestamp(node)
        return None

    def _rewrite_timestamp(self, node: Comparison) -> Expression | None:
        """``timestamp cp v``  ->  ``id cp v*fps`` (id = timestamp*fps)."""
        fps = self._metadata.fps
        if fps <= 0:
            return None
        left, op, right = node.left, node.op, node.right
        if isinstance(right, ColumnRef) and right.name == "timestamp":
            left, right = right, left
            op = op.flip()
        if (isinstance(left, ColumnRef) and left.name == "timestamp"
                and isinstance(right, Literal)
                and isinstance(right.value, (int, float))
                and not isinstance(right.value, bool)):
            return Comparison(ColumnRef("id"), op,
                              Literal(right.value * fps))
        return None


def _validate_column_references(bound: BoundQuery) -> None:
    available = bound.available_columns
    exprs: list[Expression] = [e for e, _ in bound.select_items]
    exprs.extend(bound.group_keys)
    exprs.extend(e for e, _ in bound.order_keys)
    if bound.where is not None:
        exprs.append(bound.where)
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, ColumnRef) and node.name not in available:
                raise BindingError(
                    f"unknown column {node.name!r}; available: "
                    f"{sorted(available)}")
            if isinstance(node, (Star, AggregateCall)):
                continue
