"""Physical implementation: logical plans to costed physical operators.

This is where Rule II of section 4.4 — the materialization-aware
transformation — takes effect: each logical APPLY is implemented either
against the materialized views (the LEFT OUTER JOIN + conditional APPLY +
STORE composite of Fig. 4, realized by the executor's reuse-aware
operators) or as plain evaluation, chosen by the Eq. 3 cost model.  For a
logical detector, Algorithm 2 selects the physical model set.

Implementation folds bottom-up, tracking estimated cardinality so costs
compound the way Theorem 4.1's expansion does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import sympy
from sympy import FiniteSet, Interval, Union as SymUnion

from repro.catalog.udf_registry import UdfDefinition
from repro.config import ModelSelectionMode, ReusePolicy
from repro.errors import OptimizerError, UnsupportedPredicateError
from repro.expressions.expr import FunctionCall
from repro.obs.audit import (
    KIND_CLASSIFIER,
    KIND_DETECTOR,
    KIND_MODEL_SELECTION,
    ReuseDecisionRecord,
    predicate_sql,
)
from repro.optimizer.model_selection import (
    ModelCandidate,
    select_physical_udfs,
)
from repro.optimizer.opt_context import OptimizationContext
from repro.optimizer.plans import (
    DetectorSource,
    LogicalApply,
    LogicalClassifierApply,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalGroupBy,
    LogicalLimit,
    LogicalNode,
    LogicalOrderBy,
    LogicalProject,
    PhysClassifierApply,
    PhysDetectorApply,
    PhysDistinct,
    PhysFilter,
    PhysGroupBy,
    PhysLimit,
    PhysOrderBy,
    PhysProject,
    PhysScan,
    PhysicalPlan,
)
from repro.optimizer.udf_manager import UdfSignature
from repro.symbolic.dnf import DnfPredicate


@dataclass
class ImplementedPlan:
    """A physical subtree plus the estimates costing needs."""

    plan: PhysicalPlan
    rows: float
    cost: float
    #: Post-execution UdfManager updates gathered along the way.
    updates: list = field(default_factory=list)


@dataclass(frozen=True)
class PlanUpdate:
    """One p_u := UNION(p_u, q) to record after the query runs."""

    signature: UdfSignature
    guard: DnfPredicate
    per_tuple_cost: float


class PhysicalImplementer:
    """Bottom-up logical-to-physical folding with Eq. 3 costing."""

    def __init__(self, ctx: OptimizationContext):
        self.ctx = ctx

    def implement(self, node: LogicalNode) -> ImplementedPlan:
        if isinstance(node, LogicalGet):
            return self._implement_get(node)
        if isinstance(node, LogicalApply):
            return self._implement_detector(node)
        if isinstance(node, LogicalClassifierApply):
            return self._implement_classifier(node)
        if isinstance(node, LogicalFilter):
            return self._implement_filter(node)
        if isinstance(node, LogicalProject):
            return self._passthrough(node, PhysProject, items=node.items)
        if isinstance(node, LogicalGroupBy):
            return self._passthrough(node, PhysGroupBy, keys=node.keys,
                                     items=node.items)
        if isinstance(node, LogicalDistinct):
            return self._passthrough(node, PhysDistinct)
        if isinstance(node, LogicalOrderBy):
            return self._passthrough(node, PhysOrderBy, keys=node.keys)
        if isinstance(node, LogicalLimit):
            return self._passthrough(node, PhysLimit, count=node.count)
        raise OptimizerError(
            f"no implementation rule for {type(node).__name__}")

    # -- leaf: scan ------------------------------------------------------------

    def _implement_get(self, node: LogicalGet) -> ImplementedPlan:
        num_frames = self.ctx.bound.metadata.num_frames
        predicate = (self.ctx.engine.analyze(node.predicate)
                     if node.predicate is not None
                     else DnfPredicate.true())
        ranges = scan_ranges(predicate, num_frames)
        rows = float(sum(stop - start for start, stop in ranges))
        cost = rows * self.ctx.cost_model.constants.read_video_per_frame
        return ImplementedPlan(
            PhysScan(node.table_name, tuple(ranges)), rows, cost)

    # -- Rule II: detector APPLY --------------------------------------------------

    def _implement_detector(self, node: LogicalApply) -> ImplementedPlan:
        child = self.implement(node.child)
        definition = self.ctx.udf_definition(node.call)
        guard = node.guard if node.guard is not None else \
            DnfPredicate.true()
        store = self.ctx.stores_results
        alternatives = self._detector_alternatives(
            node.call, definition, guard)
        best_sources, best_cost = None, math.inf
        alternative_costs: dict[str, float] = {}
        for sources in alternatives:
            cost = self._detector_cost(sources, guard, child.rows)
            label = ("reuse" if any(s.use_view for s in sources)
                     else "no-reuse")
            alternative_costs[label] = min(
                cost, alternative_costs.get(label, math.inf))
            if cost < best_cost:
                best_cost = cost
                best_sources = sources
        assert best_sources is not None
        self.ctx.detector_sources = tuple(best_sources)
        self._audit_detector(node, definition, guard, best_sources,
                             alternative_costs)
        plan = PhysDetectorApply(
            child=child.plan,
            signature=f"{node.call.name}@{self.ctx.bound.table_name}",
            sources=tuple(best_sources),
            store=store,
            guard=guard,
        )
        updates = list(child.updates)
        if store:
            for source in best_sources:
                if not source.use_view:
                    model = self.ctx.catalog.zoo.get(source.model_name)
                    updates.append(PlanUpdate(
                        self.ctx.model_signature(source.model_name),
                        source.predicate, model.per_tuple_cost))
        rows = child.rows * self._detections_per_frame()
        return ImplementedPlan(plan, rows, child.cost + best_cost, updates)

    def _detector_alternatives(self, call: FunctionCall,
                               definition: UdfDefinition,
                               guard: DnfPredicate
                               ) -> list[list[DetectorSource]]:
        ctx = self.ctx
        self._detector_reuse_info = None
        if definition.is_logical:
            return [self._logical_detector_sources(call, definition, guard)]
        model = ctx.catalog.zoo.get(definition.model_name)
        signature = ctx.model_signature(model.name)
        no_reuse = [DetectorSource(model.name, False, guard)]
        if not ctx.uses_views or not ctx.udf_manager.known(signature):
            return [no_reuse]
        inter = ctx.udf_manager.intersection_with_history(signature, guard)
        diff = ctx.udf_manager.difference_with_history(signature, guard)
        self._detector_reuse_info = {
            "signature": signature.key(),
            "history": predicate_sql(
                ctx.udf_manager.history(signature).aggregated_predicate),
            "intersection": predicate_sql(inter),
            "difference": predicate_sql(diff),
            "inter_selectivity": ctx.estimator.selectivity(inter),
            "diff_selectivity": ctx.estimator.selectivity(diff),
        }
        if inter.is_false():
            return [no_reuse]
        reuse = [DetectorSource(model.name, True, inter),
                 DetectorSource(model.name, False, diff)]
        return [no_reuse, reuse]

    def _audit_detector(self, node: LogicalApply,
                        definition: UdfDefinition, guard: DnfPredicate,
                        chosen: list[DetectorSource],
                        alternative_costs: dict[str, float]) -> None:
        """Emit the Rule II detector decision (Eq. 3 inputs + winner)."""
        ctx = self.ctx
        info = self._detector_reuse_info or {}
        guard_selectivity = max(ctx.estimator.selectivity(guard), 1e-9)
        inter_selectivity = info.get("inter_selectivity")
        # No history at all => every guarded tuple is missing (f_miss=1).
        missing = 1.0
        if inter_selectivity is not None:
            missing = min(1.0, info["diff_selectivity"]
                          / guard_selectivity)
        selectivities = {"guard": guard_selectivity}
        if inter_selectivity is not None:
            selectivities["intersection"] = inter_selectivity
            selectivities["difference"] = info["diff_selectivity"]
        ctx.audit.record(ReuseDecisionRecord(
            kind=KIND_DETECTOR,
            signature=info.get("signature", "{}@{}".format(
                definition.model_name or node.call.name,
                ctx.bound.table_name)),
            query_predicate=predicate_sql(guard),
            history_predicate=info.get("history"),
            intersection=info.get("intersection"),
            difference=info.get("difference"),
            missing_fraction=missing,
            selectivities=selectivities,
            costs=dict(alternative_costs),
            candidates=[
                {"model": source.model_name, "use_view": source.use_view,
                 "predicate": predicate_sql(source.predicate)}
                for source in chosen
            ],
            chosen=[
                {"model": source.model_name, "use_view": source.use_view,
                 "predicate": predicate_sql(source.predicate)}
                for source in chosen
            ],
            reused=any(source.use_view for source in chosen),
        ))

    def _logical_detector_sources(self, call: FunctionCall,
                                  definition: UdfDefinition,
                                  guard: DnfPredicate
                                  ) -> list[DetectorSource]:
        ctx = self.ctx
        logical_type = definition.logical_type or "ObjectDetector"
        models = ctx.catalog.physical_detectors(
            logical_type, min_accuracy=call.accuracy)
        if not models:
            raise OptimizerError(
                f"no physical model implements {logical_type} at accuracy "
                f"{call.accuracy}")
        reuse = ctx.reuse_policy is ReusePolicy.EVA
        if reuse and ctx.model_selection is ModelSelectionMode.SET_COVER:
            candidates = [
                ModelCandidate(m, ctx.model_signature(m.name))
                for m in models
            ]
            iterations: list[dict] = []
            sources = select_physical_udfs(
                candidates, guard, ctx.udf_manager, ctx.engine,
                ctx.estimator, ctx.bound.metadata.num_frames,
                ctx.cost_model.constants.view_read_per_key,
                audit=iterations,
                model_costs={m.name: ctx.model_cost(m) for m in models})
            self._audit_model_selection(
                call, logical_type, guard, candidates, iterations, sources)
            return sources
        cheapest = min(models, key=ctx.model_cost)
        signature = ctx.model_signature(cheapest.name)
        if reuse and ctx.udf_manager.known(signature):
            inter = ctx.udf_manager.intersection_with_history(
                signature, guard)
            diff = ctx.udf_manager.difference_with_history(signature, guard)
            sources = []
            if not inter.is_false():
                sources.append(DetectorSource(cheapest.name, True, inter))
            sources.append(DetectorSource(cheapest.name, False, diff))
            return sources
        return [DetectorSource(cheapest.name, False, guard)]

    def _audit_model_selection(self, call: FunctionCall, logical_type: str,
                               guard: DnfPredicate,
                               candidates: list[ModelCandidate],
                               iterations: list[dict],
                               sources: list[DetectorSource]) -> None:
        """Emit the Algorithm 2 greedy set-cover trace as an audit record."""
        ctx = self.ctx
        known = [c for c in candidates
                 if ctx.udf_manager.known(c.signature)]
        history = None
        if known:
            history = " OR ".join(
                predicate_sql(ctx.udf_manager
                              .history(c.signature).aggregated_predicate)
                for c in known)
        ctx.audit.record(ReuseDecisionRecord(
            kind=KIND_MODEL_SELECTION,
            signature=f"{logical_type}@{ctx.bound.table_name}",
            query_predicate=predicate_sql(guard),
            history_predicate=history,
            selectivities={"guard": ctx.estimator.selectivity(guard)},
            costs={f"model:{c.model.name}": ctx.model_cost(c.model)
                   for c in candidates},
            candidates=[
                {"model": c.model.name,
                 "accuracy": c.model.accuracy.value,
                 "per_tuple_cost": ctx.model_cost(c.model),
                 "known": ctx.udf_manager.known(c.signature)}
                for c in candidates
            ] + iterations,
            chosen=[
                {"model": source.model_name, "use_view": source.use_view,
                 "predicate": predicate_sql(source.predicate)}
                for source in sources
            ],
            reused=any(source.use_view for source in sources),
        ))

    def _detector_cost(self, sources: list[DetectorSource],
                       guard: DnfPredicate, input_rows: float) -> float:
        """Eq. 3 applied to the chosen source mix.

        Costing runs on the planner's *believed* per-tuple costs
        (:meth:`OptimizationContext.model_cost` — catalog snapshot plus
        any calibrated overlay), not the zoo's declared costs; the
        executor will charge the latter, and the gap between the two is
        what drift detection measures.
        """
        guard_selectivity = max(self.ctx.estimator.selectivity(guard), 1e-9)
        cost = 0.0
        for source in sources:
            fraction = min(1.0, self.ctx.estimator.selectivity(
                source.predicate) / guard_selectivity)
            rows = input_rows * fraction
            model = self.ctx.catalog.zoo.get(source.model_name)
            believed = self.ctx.model_cost(model)
            if source.use_view:
                cost += self.ctx.cost_model.udf_predicate_cost(
                    rows, believed, missing_fraction=0.0)
            else:
                cost += rows * believed
        return cost

    # -- Rule II: classifier APPLY -----------------------------------------------

    def _implement_classifier(self, node: LogicalClassifierApply
                              ) -> ImplementedPlan:
        child = self.implement(node.child)
        ctx = self.ctx
        definition = ctx.udf_definition(node.call)
        if definition.model_name is None:
            raise OptimizerError(
                f"UDF {node.call.name!r} has no physical implementation")
        guard = node.guard if node.guard is not None else \
            DnfPredicate.true()
        signature = ctx.classifier_signature(node.call)
        use_view = ctx.reuse_policy is ReusePolicy.EVA
        store = use_view
        missing = 1.0
        history = inter = diff = None
        guard_selectivity = max(ctx.estimator.selectivity(guard), 1e-9)
        if use_view and ctx.udf_manager.known(signature):
            history = ctx.udf_manager.history(signature).aggregated_predicate
            inter = ctx.udf_manager.intersection_with_history(
                signature, guard)
            diff = ctx.udf_manager.difference_with_history(signature, guard)
            missing = min(1.0, ctx.estimator.selectivity(diff)
                          / guard_selectivity)
        cost = ctx.cost_model.udf_predicate_cost(
            child.rows, definition.per_tuple_cost, missing)
        no_reuse_cost = ctx.cost_model.udf_predicate_cost(
            child.rows, definition.per_tuple_cost, 1.0)
        selectivities = {"guard": guard_selectivity}
        if inter is not None:
            selectivities["intersection"] = ctx.estimator.selectivity(inter)
            selectivities["difference"] = ctx.estimator.selectivity(diff)
        ctx.audit.record(ReuseDecisionRecord(
            kind=KIND_CLASSIFIER,
            signature=signature.key(),
            query_predicate=predicate_sql(guard),
            history_predicate=(predicate_sql(history)
                               if history is not None else None),
            intersection=(predicate_sql(inter)
                          if inter is not None else None),
            difference=(predicate_sql(diff) if diff is not None else None),
            missing_fraction=missing,
            selectivities=selectivities,
            costs={"reuse": cost, "no-reuse": no_reuse_cost},
            candidates=[{"model": definition.model_name,
                         "per_tuple_cost": definition.per_tuple_cost}],
            chosen=[{"model": definition.model_name,
                     "use_view": use_view, "store": store,
                     "predicate": predicate_sql(guard)}],
            reused=use_view and missing < 1.0,
        ))
        plan = PhysClassifierApply(
            child=child.plan,
            signature=signature.key(),
            call=node.call,
            model_name=definition.model_name,
            use_view=use_view,
            store=store,
            guard=guard,
        )
        updates = list(child.updates)
        if store:
            updates.append(PlanUpdate(signature, guard,
                                      definition.per_tuple_cost))
        return ImplementedPlan(plan, child.rows, child.cost + cost, updates)

    # -- relational operators ------------------------------------------------------

    def _implement_filter(self, node: LogicalFilter) -> ImplementedPlan:
        child = self.implement(node.child)
        try:
            selectivity = self.ctx.estimator.selectivity(
                self.ctx.engine.analyze(node.predicate))
        except UnsupportedPredicateError:
            selectivity = 0.33
        plan = PhysFilter(child.plan, node.predicate)
        return ImplementedPlan(plan, child.rows * selectivity, child.cost,
                               child.updates)

    def _passthrough(self, node, physical_type, **fields) -> ImplementedPlan:
        child = self.implement(node.child)
        plan = physical_type(child.plan, **fields)
        return ImplementedPlan(plan, child.rows, child.cost, child.updates)

    def _detections_per_frame(self) -> float:
        density = self.ctx.bound.metadata.vehicles_per_frame
        return max(1.0, density)


# ---------------------------------------------------------------------------
# Scan-range derivation
# ---------------------------------------------------------------------------


def scan_ranges(predicate: DnfPredicate, num_frames: int
                ) -> list[tuple[int, int]]:
    """Half-open frame ranges covering the predicate's id constraint."""
    if predicate.is_false():
        return []
    intervals: list[tuple[int, int]] = []
    for conjunctive in predicate.conjunctives:
        constraint = conjunctive.constraint("id")
        if constraint is None:
            return [(0, num_frames)]
        intervals.extend(_integer_ranges(constraint.sset, num_frames))
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for start, stop in intervals[1:]:
        last_start, last_stop = merged[-1]
        if start <= last_stop:
            merged[-1] = (last_start, max(last_stop, stop))
        else:
            merged.append((start, stop))
    return merged


def _integer_ranges(sset: sympy.Set, num_frames: int
                    ) -> list[tuple[int, int]]:
    ranges: list[tuple[int, int]] = []
    parts = (sset.args if isinstance(sset, SymUnion) else (sset,))
    for part in parts:
        if isinstance(part, FiniteSet):
            for point in part.args:
                value = float(point)
                if value == int(value) and 0 <= value < num_frames:
                    ranges.append((int(value), int(value) + 1))
        elif isinstance(part, Interval):
            if part.start == -sympy.oo:
                start = 0
            else:
                lo = float(part.start)
                start = math.ceil(lo)
                if part.left_open and start == lo:
                    start += 1
            if part.end == sympy.oo:
                stop = num_frames - 1
            else:
                hi = float(part.end)
                stop = math.floor(hi)
                if part.right_open and stop == hi:
                    stop -= 1
            start = max(0, start)
            stop = min(num_frames - 1, stop)
            if stop >= start:
                ranges.append((start, stop + 1))
        elif part == sympy.S.Reals:
            ranges.append((0, num_frames))
        elif part is sympy.S.EmptySet:
            continue
        else:
            raise OptimizerError(f"cannot derive scan range from {part}")
    return ranges
