"""Plan node definitions.

Logical nodes describe *what* to compute; physical nodes add *how*: which
physical model serves each UDF, whether a materialized view is consulted
(the LEFT OUTER JOIN + conditional APPLY + STORE composite of Fig. 4), and
in which order UDF-based predicates run.

Physical plans are linear chains (one video input, no joins beyond the view
lookup), so each node holds its single child.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expressions.expr import Expression, FunctionCall
from repro.symbolic.dnf import DnfPredicate


# ---------------------------------------------------------------------------
# Logical plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LogicalNode:
    """Base class for logical operators."""


@dataclass(frozen=True)
class LogicalGet(LogicalNode):
    table_name: str
    #: Predicate over scan-time columns (id, timestamp) pushed into the get.
    predicate: Expression | None = None


@dataclass(frozen=True)
class LogicalApply(LogicalNode):
    """CROSS APPLY of a table-valued UDF (the detector).

    ``guard`` is the predicate known to hold on the input tuples — the
    "associated predicate" of section 4.1 the UdfManager aggregates.
    """

    child: LogicalNode
    call: FunctionCall
    guard: "DnfPredicate | None" = None


@dataclass(frozen=True)
class LogicalClassifierApply(LogicalNode):
    """APPLY of a scalar UDF term (patch classifier / frame filter).

    Produced by the UDF-based predicate transformation rule (section 4.4,
    Rule I) when it unpacks a selection operator containing UDF-based
    predicates into a chain of APPLY operators.
    """

    child: LogicalNode
    call: FunctionCall
    guard: "DnfPredicate | None" = None


@dataclass(frozen=True)
class LogicalFilter(LogicalNode):
    child: LogicalNode
    predicate: Expression


@dataclass(frozen=True)
class LogicalProject(LogicalNode):
    child: LogicalNode
    items: tuple[tuple[Expression, str], ...]  # (expr, output name)


@dataclass(frozen=True)
class LogicalGroupBy(LogicalNode):
    child: LogicalNode
    keys: tuple[Expression, ...]
    items: tuple[tuple[Expression, str], ...]


@dataclass(frozen=True)
class LogicalDistinct(LogicalNode):
    child: LogicalNode


@dataclass(frozen=True)
class LogicalOrderBy(LogicalNode):
    child: LogicalNode
    keys: tuple[tuple[Expression, bool], ...]  # (expr, ascending)


@dataclass(frozen=True)
class LogicalLimit(LogicalNode):
    child: LogicalNode
    count: int


# ---------------------------------------------------------------------------
# Physical plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhysicalPlan:
    """Base class for physical operators (each holds its child, if any)."""


@dataclass(frozen=True)
class PhysScan(PhysicalPlan):
    """Scan frame ranges of one video."""

    table_name: str
    #: Half-open [start, stop) frame ranges derived from the id predicate.
    ranges: tuple[tuple[int, int], ...]
    #: Residual scan predicate (e.g. timestamp constraints) re-checked per
    #: row; None when the ranges capture the predicate exactly.
    residual: Expression | None = None


@dataclass(frozen=True)
class DetectorSource:
    """One entry of Algorithm 2's output: where detector results come from.

    ``use_view`` selects between reading the model's materialized view and
    evaluating the model.  ``predicate`` is the (reduced) region of input
    space this source is responsible for; sources are consulted in order and
    the first whose predicate covers a tuple wins.
    """

    model_name: str
    use_view: bool
    predicate: DnfPredicate


@dataclass(frozen=True)
class PhysDetectorApply(PhysicalPlan):
    """Detector CROSS APPLY with optional view reuse (Fig. 4 composite).

    Emits one output row per detection, adding ``label``, ``bbox``,
    ``score`` and the derived ``area`` column.  Frames with no detections
    produce no rows (inner CROSS APPLY semantics).
    """

    child: PhysicalPlan
    signature: str
    sources: tuple[DetectorSource, ...]
    #: Store newly computed results into each evaluated model's view.
    store: bool
    #: The UDF's guard predicate in the final plan (for the UdfManager).
    guard: DnfPredicate | None = None


@dataclass(frozen=True)
class PhysClassifierApply(PhysicalPlan):
    """Conditional APPLY of a patch classifier (or frame filter).

    Adds one column holding the UDF term's value; downstream filters and
    projections read that column.
    """

    child: PhysicalPlan
    signature: str
    call: FunctionCall
    model_name: str
    use_view: bool
    store: bool
    guard: DnfPredicate | None = None


@dataclass(frozen=True)
class PhysFilter(PhysicalPlan):
    child: PhysicalPlan
    predicate: Expression


@dataclass(frozen=True)
class PhysProject(PhysicalPlan):
    child: PhysicalPlan
    items: tuple[tuple[Expression, str], ...]


@dataclass(frozen=True)
class PhysGroupBy(PhysicalPlan):
    child: PhysicalPlan
    keys: tuple[Expression, ...]
    items: tuple[tuple[Expression, str], ...]


@dataclass(frozen=True)
class PhysDistinct(PhysicalPlan):
    child: PhysicalPlan


@dataclass(frozen=True)
class PhysOrderBy(PhysicalPlan):
    child: PhysicalPlan
    keys: tuple[tuple[Expression, bool], ...]


@dataclass(frozen=True)
class PhysLimit(PhysicalPlan):
    child: PhysicalPlan
    count: int


def plan_children(node) -> tuple:
    child = getattr(node, "child", None)
    return (child,) if child is not None else ()


def walk_plan(node):
    """Pre-order traversal of a (logical or physical) plan chain."""
    yield node
    for child in plan_children(node):
        yield from walk_plan(child)


def replace_child(node, new_child):
    """A copy of ``node`` with its child swapped (plans are immutable)."""
    from dataclasses import replace

    return replace(node, child=new_child)


def explain(node: PhysicalPlan, indent: int = 0) -> str:
    """Human-readable plan tree (EXPLAIN output)."""
    pad = "  " * indent
    name = type(node).__name__.removeprefix("Phys")
    details = ""
    if isinstance(node, PhysScan):
        details = f" {node.table_name} ranges={list(node.ranges)}"
    elif isinstance(node, PhysDetectorApply):
        sources = ", ".join(
            f"{'view' if s.use_view else 'model'}:{s.model_name}"
            for s in node.sources)
        details = f" [{sources}] store={node.store}"
    elif isinstance(node, PhysClassifierApply):
        details = (f" {node.call.to_sql()} model={node.model_name} "
                   f"view={node.use_view} store={node.store}")
    elif isinstance(node, PhysFilter):
        details = f" {node.predicate.to_sql()}"
    elif isinstance(node, PhysProject):
        details = " " + ", ".join(name for _, name in node.items)
    lines = [f"{pad}{name}{details}"]
    for child in plan_children(node):
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
