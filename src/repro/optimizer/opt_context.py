"""Optimization context: everything rules need while rewriting a query.

One context exists per ``Optimizer.optimize`` call.  It carries the bound
query, the catalog / UdfManager / symbolic engine handles, the selectivity
estimator for the query's table, and the scratch state the driver reports
back (predicate order, detector sources, post-execution updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.catalog.udf_registry import UdfDefinition
from repro.config import (
    ModelSelectionMode,
    PredicateOrdering,
    RankingMode,
    ReusePolicy,
)
from repro.costs import CostModel
from repro.expressions.analysis import collect_function_calls
from repro.obs.audit import ReuseAuditTrail
from repro.expressions.expr import Expression, FunctionCall
from repro.optimizer.binder import BoundQuery
from repro.optimizer.plans import DetectorSource
from repro.optimizer.udf_manager import UdfManager, UdfSignature
from repro.symbolic.dnf import UDF_DIM_PREFIX
from repro.symbolic.engine import SymbolicEngine
from repro.symbolic.selectivity import SelectivityEstimator


@dataclass
class OptimizationContext:
    """Shared state for one optimization pass."""

    bound: BoundQuery
    catalog: Catalog
    udf_manager: UdfManager
    engine: SymbolicEngine
    cost_model: CostModel
    reuse_policy: ReusePolicy
    ranking: RankingMode
    model_selection: ModelSelectionMode
    predicate_ordering: PredicateOrdering = PredicateOrdering.RANK
    #: Calibrated per-model cost overlay (model name -> per-tuple cost),
    #: filled from observed telemetry when
    #: ``EvaConfig.cost_calibration="apply"`` re-fits the cost model
    #: (:mod:`repro.obs.calibration`).  :meth:`model_cost` resolves a
    #: model's *believed* cost through it.
    model_costs: dict[str, float] = field(default_factory=dict)
    estimator: SelectivityEstimator = field(init=False)
    # -- outputs the driver reports on OptimizedQuery -----------------------
    predicate_order: list[str] = field(default_factory=list)
    detector_sources: tuple[DetectorSource, ...] = ()
    #: Reuse-decision audit records accumulated during this pass
    #: (ranking, Rule II implementations, Algorithm 2 selections).
    audit: ReuseAuditTrail = field(default_factory=ReuseAuditTrail)

    def __post_init__(self):
        from repro.obs.calibration import modeled_model_costs

        self._catalog_model_costs = modeled_model_costs(self.catalog)
        stats = self.catalog.table_statistics(self.bound.table_name)

        def resolve(dim: str):
            if dim.startswith(UDF_DIM_PREFIX):
                udf_name = dim[len(UDF_DIM_PREFIX):].split("(")[0]
                definition = (self.catalog.udfs.get(udf_name)
                              if udf_name in self.catalog.udfs else None)
                model = (definition.model_name
                         if definition is not None else udf_name)
                return stats.get(f"udf:{model}") or stats.get(
                    f"udf:{udf_name}")
            return stats.get(dim)

        self.estimator = SelectivityEstimator(resolve)

    # -- convenience lookups --------------------------------------------------

    @property
    def uses_views(self) -> bool:
        return self.reuse_policy is ReusePolicy.EVA or \
            self.reuse_policy is ReusePolicy.HASHSTASH

    @property
    def stores_results(self) -> bool:
        return self.uses_views

    def expensive_calls(self, expr: Expression) -> list[FunctionCall]:
        """Expensive (materialization-candidate) UDF calls in ``expr``."""
        calls = []
        for call in collect_function_calls(expr):
            if call.name in self.catalog.udfs:
                definition = self.catalog.udfs.get(call.name)
                if definition.is_expensive:
                    calls.append(call)
        return calls

    def udf_definition(self, call: FunctionCall) -> UdfDefinition:
        return self.catalog.udfs.get(call.name)

    def model_cost(self, model) -> float:
        """The planner's *believed* per-tuple cost of a physical model.

        Resolution order: the calibrated overlay (observed telemetry,
        when ``cost_calibration="apply"`` has run), then the cost
        snapshotted into the catalog's UDF definition at registration,
        then the model's own declared cost.  The executor always charges
        the model's *actual* cost; keeping the planner on beliefs is
        what makes cost drift observable — and calibratable — at all
        (:mod:`repro.obs.calibration`).
        """
        cost = self.model_costs.get(model.name)
        if cost is not None:
            return cost
        cost = self._catalog_model_costs.get(model.name)
        if cost is not None:
            return cost
        return model.per_tuple_cost

    # -- signatures (S_u = [N_u; I_u], section 3.1) ----------------------------

    def model_signature(self, model_name: str) -> UdfSignature:
        return UdfSignature(model_name, (self.bound.table_name,))

    def classifier_signature(self, call: FunctionCall) -> UdfSignature:
        detector = (self.bound.detector_call.name
                    if self.bound.detector_call is not None else "")
        definition = self.catalog.udfs.get(call.name)
        model_name = definition.model_name or call.name
        return UdfSignature(model_name, (self.bound.table_name, detector))
