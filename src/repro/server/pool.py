"""Multi-process worker-pool serving over the sharded view store.

The single-process :class:`~repro.server.server.EvaServer` multiplexes
clients over threads; with simulated (or real) model-serving latency
the GIL is released during every dispatch, but admission, planning and
row assembly still serialize on one interpreter.  The
:class:`PoolServer` runs N *spawned* worker processes, each embedding a
full ``EvaServer`` stack over a
:class:`~repro.server.shard.ShardedWorkerState` — one durable
view-store partition per owned shard — and fronts them with:

* **queue-based load leveling** — clients are assigned to workers
  round-robin; each worker bounds its own in-flight work
  (``worker_threads`` running + ``worker_queue_depth`` queued) and
  rejects beyond that with
  :class:`~repro.errors.ServerOverloadedError`, exactly like the
  single-process server;
* **per-client-class bulkheads** — each class (e.g. ``interactive`` /
  ``batch``) gets its own in-flight permit pool at the front door, so
  one greedy class saturates its own bulkhead and never starves the
  others;
* **a circuit breaker per class** — ``breaker_threshold`` consecutive
  overload rejections open the circuit for ``breaker_cooldown_s``
  (fail-fast :class:`~repro.errors.CircuitOpenError`, no worker
  round-trip), then a single half-open probe decides re-close vs
  re-open;
* **crash supervision** — a monitor thread watches process sentinels;
  a dead worker is respawned, its shard partitions recover from their
  WALs, the peer table is rebroadcast, and in-flight queries to it
  fail with :class:`~repro.errors.WorkerCrashedError` (never silently
  retried);
* **fleet-wide observability** — per-worker ``ServerStats`` /
  profiler / batcher / SLO / flight / ledger snapshots merge through
  the associative ``merge`` helpers into one view, so ``repro top``,
  the Prometheus exposition and the provenance ledger describe the
  whole fleet.

Semantics are preserved exactly (the differential suite pins this):
rows, view contents, hit attribution, and per-client virtual clocks
are identical at any worker count, because sharding only *moves*
operations to their single owner — it never changes what they do.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.connection import Client as _ConnClient
from multiprocessing.connection import Listener as _ConnListener
from multiprocessing.connection import wait as _conn_wait

from repro.config import EvaConfig
from repro.errors import (
    CircuitOpenError,
    ServerClosedError,
    ServerError,
    ServerOverloadedError,
    WorkerCrashedError,
)
from repro.server.batcher import BatcherSnapshot
from repro.server.shard import (
    PeerTable,
    ShardRouter,
    ShardedWorkerState,
    decode_error,
    encode_error,
    handle_shard_request,
    merge_store_snapshots,
)
from repro.server.stats import ServerStats, ServerStatsSnapshot, \
    merged_metrics
from repro.types import QueryResult
from repro.video.synthetic import SyntheticVideo

#: Sentinel: "use the pool's default timeout" (mirrors server.py).
_DEFAULT = object()

#: Default client class when the caller does not segment its clients.
DEFAULT_CLASS = "default"


# -- worker process ------------------------------------------------------------


@dataclass
class WorkerSpec:
    """Everything one spawned worker needs (must stay picklable)."""

    worker_id: int
    config: EvaConfig
    address: str
    authkey: bytes
    #: Zero-arg callable building the worker's model zoo (``None`` =
    #: :func:`~repro.models.zoo.default_zoo`).  A *factory*, not a zoo:
    #: model instances carry locks/state that must be per-process, and
    #: benchmark knobs (service latency) applied in the parent's zoo
    #: would be invisible to spawned children otherwise.
    zoo_factory: object = None
    worker_threads: int = 4
    default_timeout: float | None = None


def _serve_client(internal, conn, client_id: str) -> None:
    """Service loop for one client connection (one thread)."""
    try:
        handle = internal.connect(client_id)
    except ServerError:
        # Reconnect after a transient socket failure (or a parent-side
        # retry): the session survives on the worker; re-issue a handle
        # instead of refusing the known client id.
        from repro.server.client import ClientHandle

        client = internal._clients.get(client_id)
        if client is None:
            raise
        client.closed = False
        handle = ClientHandle(internal, client)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            op, args = message[0], message[1:]
            try:
                if op == "query":
                    sql, has_timeout, timeout = args
                    if has_timeout:
                        future = internal.submit(client_id, sql,
                                                 timeout=timeout)
                    else:
                        future = internal.submit(client_id, sql)
                    payload = future.result()
                elif op == "clock":
                    with handle.checkout() as session:
                        payload = dict(session.clock.breakdown())
                elif op == "hit_pct":
                    payload = handle.hit_percentage()
                elif op == "last_metrics":
                    payload = handle.last_query_metrics()
                elif op == "workload_time":
                    payload = handle.workload_time()
                elif op == "close":
                    handle.close()
                    conn.send(("ok", None))
                    return
                else:
                    raise ServerError(f"unknown client op {op!r}")
            except BaseException as error:  # noqa: BLE001 - ship to client
                try:
                    conn.send(encode_error(error))
                except (OSError, ValueError):
                    return
                continue
            try:
                conn.send(("ok", payload))
            except (OSError, ValueError):
                return
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _serve_peer(state, conn) -> None:
    """Service loop for one peer worker connection (one thread)."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            try:
                conn.close()
            except OSError:
                pass
            return
        method, args = message
        try:
            payload = handle_shard_request(state, method, args)
        except BaseException as error:  # noqa: BLE001 - ship to peer
            try:
                conn.send(encode_error(error))
            except (OSError, ValueError):
                return
            continue
        try:
            conn.send(("ok", payload))
        except (OSError, ValueError):
            return


def _dump_views(state) -> dict:
    """``{name: (key_columns, output_columns, sorted items)}`` for every
    view in this worker's owned shards (content-equality testing)."""
    dump = {}
    for store in state.shard_stores.values():
        for name in store.names():
            view = store.base.get(name)
            if view is None:
                continue
            dump[name] = (list(view.key_columns),
                          list(view.output_columns),
                          sorted(view.items()))
    return dump


def _serve_control(state, internal, conn, stop: threading.Event) -> None:
    """Service loop for the parent's control connection."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        method, args = message
        try:
            payload = None
            if method == "ping":
                payload = os.getpid()
            elif method == "init":
                peers, videos = args
                state.peers.update(peers, state.pool_authkey)
                for metadata, seed in videos:
                    internal.register_video(SyntheticVideo(metadata, seed))
            elif method == "peers":
                state.peers.update(args[0], state.pool_authkey)
            elif method == "register_video":
                metadata, seed = args
                internal.register_video(SyntheticVideo(metadata, seed))
            elif method == "stats":
                payload = internal.stats()
            elif method == "metrics":
                payload = internal.aggregate_metrics()
            elif method == "clock":
                payload = dict(internal.aggregate_clock().breakdown())
            elif method == "queue_depth":
                payload = internal.queue_depth()
            elif method == "clients":
                payload = internal.clients()
            elif method == "profile":
                payload = state.profiler.snapshot()
            elif method == "batcher":
                payload = internal.batcher_snapshot()
            elif method == "slo":
                payload = internal.slo_snapshot()
            elif method == "flight":
                payload = internal.flight_stats()
            elif method == "ledger":
                payload = internal.ledger_snapshot()
            elif method == "lineage":
                payload = internal.lineage_records()
            elif method == "trace":
                payload = internal.trace_events(args[0])
            elif method == "store":
                payload = state.view_store.store_snapshot()
            elif method == "dump_views":
                payload = _dump_views(state)
            elif method == "flush":
                state.view_store.flush()
            elif method == "shutdown":
                internal.shutdown(drain=args[0])
                conn.send(("ok", None))
                stop.set()
                return
            else:
                raise ServerError(f"unknown control method {method!r}")
        except BaseException as error:  # noqa: BLE001 - ship to parent
            try:
                conn.send(encode_error(error))
            except (OSError, ValueError):
                return
            continue
        try:
            conn.send(("ok", payload))
        except (OSError, ValueError):
            return


def worker_main(spec: WorkerSpec) -> None:
    """Entry point of one spawned worker process.

    Builds the sharded state (recovering owned shard partitions from
    their WALs), embeds a full :class:`EvaServer` over it, then serves
    connections: the first message on every connection is a hello tuple
    naming its role — ``("client", id)``, ``("peer",)`` or
    ``("control",)`` — and each connection gets its own service thread.
    """
    # Workers run with the plan cache off: cache validity keys on the
    # *fleet-wide* UDF-manager version, which would cost one RPC per
    # owned-elsewhere signature per lookup — more than replanning these
    # millisecond plans.  Plans are deterministic, so this cannot
    # change results, only real seconds.
    from repro.server.server import EvaServer

    config = dataclasses.replace(spec.config, enable_plan_cache=False)
    zoo = spec.zoo_factory() if spec.zoo_factory is not None else None
    peers = PeerTable(spec.worker_id)
    state = ShardedWorkerState(config, zoo, worker_id=spec.worker_id,
                               peers=peers)
    state.pool_authkey = spec.authkey
    internal = EvaServer(
        config, state=state, max_workers=spec.worker_threads,
        max_queue=config.worker_queue_depth,
        default_timeout=spec.default_timeout)
    internal.start()
    stop = threading.Event()
    try:
        os.unlink(spec.address)
    except OSError:
        pass
    listener = _ConnListener(spec.address, family="AF_UNIX",
                             authkey=spec.authkey)

    def accept_loop() -> None:
        while not stop.is_set():
            try:
                conn = listener.accept()
            except (OSError, EOFError, AttributeError):
                if stop.is_set():
                    return
                continue
            try:
                hello = conn.recv()
            except (EOFError, OSError):
                conn.close()
                continue
            role = hello[0]
            if role == "client":
                target, args = _serve_client, (internal, conn, hello[1])
            elif role == "peer":
                target, args = _serve_peer, (state, conn)
            elif role == "control":
                target, args = _serve_control, (state, internal, conn,
                                                stop)
            else:
                conn.close()
                continue
            threading.Thread(target=target, args=args,
                             daemon=True).start()

    acceptor = threading.Thread(target=accept_loop, daemon=True,
                                name="eva-worker-accept")
    acceptor.start()
    # Park until the control connection's shutdown request, then break
    # the (blocking) accept by closing the listener and poking it.
    stop.wait()
    try:
        listener.close()
    except OSError:
        pass
    try:
        poke = _ConnClient(spec.address, authkey=spec.authkey)
        poke.close()
    except (OSError, EOFError, FileNotFoundError,
            multiprocessing.AuthenticationError):
        pass
    acceptor.join(timeout=1)


# -- admission front-end -------------------------------------------------------


class _Breaker:
    """Per-client-class circuit breaker (closed / open / half-open).

    ``threshold`` consecutive overload rejections — bulkhead *or*
    worker admission — open the circuit for ``cooldown`` seconds; while
    open, admission fails fast with :class:`CircuitOpenError` carrying
    the remaining cooldown as ``retry_after``.  After the cooldown one
    probe query passes (half-open): success closes the circuit,
    another overload re-opens it.  ``threshold == 0`` disables the
    breaker entirely.
    """

    def __init__(self, name: str, threshold: int, cooldown: float):
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_until = 0.0
        self._probing = False
        #: Telemetry: how many times this breaker transitioned to open.
        self.trips = 0

    def check(self) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            if not self._opened_until:
                return
            now = time.monotonic()
            remaining = self._opened_until - now
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit open for class {self.name!r}; "
                    f"retry in {remaining:.2f}s",
                    retry_after=max(0.01, remaining))
            if self._probing:
                # Half-open and the probe slot is taken: shed until the
                # probe's verdict is in.
                raise CircuitOpenError(
                    f"circuit half-open for class {self.name!r} "
                    f"(probe in flight)", retry_after=self.cooldown / 2)
            self._probing = True

    def record_overload(self) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            if self._opened_until:
                # Half-open probe failed: re-open a full cooldown.
                self._opened_until = time.monotonic() + self.cooldown
                self._probing = False
                self.trips += 1
                return
            self._failures += 1
            if self._failures >= self.threshold:
                self._opened_until = time.monotonic() + self.cooldown
                self._probing = False
                self.trips += 1

    def record_success(self) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            self._failures = 0
            self._opened_until = 0.0
            self._probing = False

    @property
    def is_open(self) -> bool:
        with self._lock:
            return bool(self._opened_until) and \
                self._opened_until > time.monotonic()


@dataclass
class _Worker:
    """Parent-side record of one worker process."""

    worker_id: int
    generation: int
    process: object
    address: str
    control: object
    control_lock: threading.Lock = field(default_factory=threading.Lock)


class PoolServer:
    """Admission front-end over N spawned worker processes.

    Mirrors the :class:`~repro.server.server.EvaServer` surface —
    ``connect`` / ``register_video`` / telemetry — so drivers, the CLI
    (``repro top``) and the benchmarks treat a pool and a
    single-process server interchangeably.

    Args:
        config: must have ``store_mode="durable"`` with a ``store_path``
            (each shard gets a partition directory under it); sizing
            comes from ``config.workers`` / ``config.shards`` /
            ``config.worker_queue_depth`` / ``config.breaker_*``.
        zoo_factory: picklable zero-arg callable building each worker's
            model zoo (and the parent's reference copy for drift
            reports).  ``None`` uses the default zoo.
        worker_threads: thread count of each worker's embedded server.
        bulkhead_capacity: in-flight permits per client class at the
            front door; defaults to the whole pool's nominal capacity,
            ``workers * (worker_threads + worker_queue_depth)``, so a
            single class can use the full pool when alone but is
            capped at what the pool can actually absorb.
    """

    def __init__(self, config: EvaConfig,
                 zoo_factory: object = None, *,
                 worker_threads: int = 4,
                 default_timeout: float | None = None,
                 bulkhead_capacity: int | None = None):
        if config.store_mode != "durable" or not config.store_path:
            raise ServerError(
                "PoolServer requires store_mode='durable' with a "
                "store_path: each view-store shard keeps a durable "
                "partition directory (WAL + snapshots) under it")
        if worker_threads < 1:
            raise ServerError("worker_threads must be >= 1")
        self.config = config
        self.zoo_factory = zoo_factory
        self.worker_threads = worker_threads
        self.default_timeout = default_timeout
        self.num_workers = config.workers
        self.router = ShardRouter(config.shards, config.workers)
        capacity = config.workers * (worker_threads
                                     + config.worker_queue_depth)
        self.bulkhead_capacity = (bulkhead_capacity
                                  if bulkhead_capacity is not None
                                  else capacity)
        if self.bulkhead_capacity < 1:
            raise ServerError("bulkhead_capacity must be >= 1")
        #: Parent-side stats hub: front-door rejections (bulkhead,
        #: breaker) land here and merge into the fleet snapshot.
        self.stats_hub = ServerStats()
        self._authkey = os.urandom(16)
        self._socket_dir = tempfile.mkdtemp(prefix="eva-pool-")
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._workers: dict[int, _Worker] = {}
        self._clients: dict[int, int] = {}
        self._handles: dict[str, "PoolClientHandle"] = {}
        self._client_classes: dict[str, str] = {}
        self._videos: list[tuple] = []
        self._bulkheads: dict[str, threading.Semaphore] = {}
        self._breakers: dict[str, _Breaker] = {}
        self._next_client = 1
        self._next_worker_rr = 0
        self._closed = False
        self._started = False
        self._monitor: threading.Thread | None = None
        #: Dispatch pool for the blocking client RPC round-trips; sized
        #: to the front door so admission, not thread exhaustion, is
        #: the limiter.
        self._executor = ThreadPoolExecutor(
            max_workers=max(8, 2 * self.bulkhead_capacity),
            thread_name_prefix="eva-pool-dispatch")
        #: worker_id -> respawn count (crash supervision telemetry).
        self.respawns: dict[int, int] = {}
        # Parent-side reference zoo/catalog for drift reports.
        from repro.catalog.catalog import Catalog
        from repro.models.zoo import default_zoo

        self._zoo = (zoo_factory() if zoo_factory is not None
                     else default_zoo())
        self._catalog = Catalog(self._zoo)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "PoolServer":
        """Spawn the workers, connect control, broadcast the peer map."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("pool already shut down")
            if self._started:
                return self
            self._started = True
        for worker_id in range(self.num_workers):
            self._workers[worker_id] = self._spawn(worker_id,
                                                   generation=0)
        peers = self._peer_map()
        for worker in self._workers.values():
            self._control(worker, "init", peers, list(self._videos))
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         daemon=True,
                                         name="eva-pool-monitor")
        self._monitor.start()
        return self

    def __enter__(self) -> "PoolServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def _address_for(self, worker_id: int, generation: int) -> str:
        # AF_UNIX sun_path caps at ~107 chars; the tempdir under /tmp
        # plus this short basename stays well inside it.
        return os.path.join(self._socket_dir,
                            f"w{worker_id}g{generation}.sock")

    def _spawn(self, worker_id: int, generation: int) -> _Worker:
        address = self._address_for(worker_id, generation)
        spec = WorkerSpec(
            worker_id=worker_id,
            config=self.config,
            address=address,
            authkey=self._authkey,
            zoo_factory=self.zoo_factory,
            worker_threads=self.worker_threads,
            default_timeout=self.default_timeout,
        )
        process = self._ctx.Process(target=worker_main, args=(spec,),
                                    daemon=True,
                                    name=f"eva-pool-worker-{worker_id}")
        process.start()
        control = self._connect_with_retry(address, process,
                                           role=("control",))
        return _Worker(worker_id=worker_id, generation=generation,
                       process=process, address=address, control=control)

    def _connect_with_retry(self, address: str, process, *, role: tuple,
                            timeout: float = 30.0):
        """Connect to a worker's listener, waiting out its startup
        (state build + WAL recovery happen before the listener opens)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                conn = _ConnClient(address, authkey=self._authkey)
                conn.send(role)
                return conn
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                if not process.is_alive():
                    raise ServerError(
                        f"worker process died during startup "
                        f"(exit code {process.exitcode})")
                if time.monotonic() > deadline:
                    raise ServerError(
                        f"worker at {address} did not come up within "
                        f"{timeout}s")
                time.sleep(0.02)

    def _peer_map(self) -> dict[int, str]:
        return {w.worker_id: w.address for w in self._workers.values()}

    def _control(self, worker: _Worker, method: str, *args):
        """One control round-trip to ``worker`` (serialized per worker)."""
        with worker.control_lock:
            try:
                worker.control.send((method, args))
                reply = worker.control.recv()
            except (EOFError, OSError, BrokenPipeError) as error:
                raise WorkerCrashedError(
                    f"worker {worker.worker_id} control channel died: "
                    f"{error}") from error
        if reply[0] == "ok":
            return reply[1]
        raise decode_error(reply[1], reply[2], reply[3])

    def _each_worker(self, method: str, *args) -> list:
        """The control call fanned out to every live worker."""
        with self._lock:
            workers = list(self._workers.values())
        return [self._control(worker, method, *args)
                for worker in workers]

    # -- crash supervision -----------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._closed:
            # A worker that died *between* sentinel snapshots is already
            # reaped (is_alive's internal poll), so its sentinel never
            # turns ready — sweep for corpses before waiting.
            with self._lock:
                dead = [w.worker_id for w in self._workers.values()
                        if not w.process.is_alive()]
            for worker_id in dead:
                if self._closed:
                    return
                self._respawn_guarded(worker_id)
            with self._lock:
                sentinels = {w.process.sentinel: w.worker_id
                             for w in self._workers.values()
                             if w.process.is_alive()}
            if not sentinels:
                time.sleep(0.05)
                continue
            ready = _conn_wait(list(sentinels), timeout=0.2)
            for sentinel in ready:
                if self._closed:
                    return
                self._respawn_guarded(sentinels[sentinel])

    def _respawn_guarded(self, worker_id: int) -> None:
        """One respawn attempt that cannot kill the monitor thread; a
        failed attempt leaves the worker dead, so the next sweep
        retries it."""
        try:
            self._respawn(worker_id)
        except Exception:
            if not self._closed:
                time.sleep(0.2)

    def _respawn(self, worker_id: int) -> None:
        """Replace a dead worker: fresh process, WAL recovery of its
        shards, peer-map rebroadcast, video re-registration."""
        with self._lock:
            if self._closed:
                return
            old = self._workers.get(worker_id)
            if old is None or old.process.is_alive():
                return
            generation = old.generation + 1
        try:
            old.control.close()
        except OSError:
            pass
        old.process.join(timeout=5)
        replacement = self._spawn(worker_id, generation)
        with self._lock:
            self._workers[worker_id] = replacement
            self.respawns[worker_id] = \
                self.respawns.get(worker_id, 0) + 1
            peers = self._peer_map()
            others = [w for w in self._workers.values()
                      if w.worker_id != worker_id]
            videos = list(self._videos)
        # The replacement recovers its shard partitions from their WALs
        # inside _spawn (state build precedes the listener); init hands
        # it the current peer map and the video registry.
        self._control(replacement, "init", peers, videos)
        for worker in others:
            try:
                self._control(worker, "peers", peers)
            except WorkerCrashedError:
                continue  # the monitor will pick that one up too

    def kill_worker(self, worker_id: int, *, wait: bool = True,
                    timeout: float = 60.0) -> None:
        """SIGKILL one worker (crash-recovery testing); with ``wait``,
        block until its replacement answers a control ping."""
        with self._lock:
            worker = self._workers[worker_id]
            generation = worker.generation
        worker.process.kill()
        if not wait:
            return
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                current = self._workers[worker_id]
            if current.generation > generation:
                try:
                    self._control(current, "ping")
                    return
                except WorkerCrashedError:
                    pass
            time.sleep(0.02)
        raise ServerError(
            f"worker {worker_id} was not respawned within {timeout}s")

    def worker_pid(self, worker_id: int) -> int | None:
        with self._lock:
            return self._workers[worker_id].process.pid

    # -- setup -----------------------------------------------------------------

    def register_video(self, video: SyntheticVideo) -> None:
        """Register a video on every worker (and for respawn replay)."""
        spec = (video.metadata, video.seed)
        with self._lock:
            self._videos.append(spec)
        self._catalog.register_video(video)
        self._each_worker("register_video", *spec)

    # -- clients ---------------------------------------------------------------

    def connect(self, client_id: str | None = None, *,
                client_class: str = DEFAULT_CLASS
                ) -> "PoolClientHandle":
        """Connect one client; assigned to a worker round-robin."""
        with self._lock:
            if self._closed or not self._started:
                raise ServerClosedError(
                    "pool is not accepting clients (closed or not "
                    "started)")
            if client_id is None:
                client_id = f"client-{self._next_client}"
                self._next_client += 1
            if client_id in self._handles:
                raise ServerError(
                    f"client id {client_id!r} already connected")
            worker_id = self._next_worker_rr % self.num_workers
            self._next_worker_rr += 1
            self._client_classes[client_id] = client_class
        handle = PoolClientHandle(self, client_id, worker_id)
        with self._lock:
            self._handles[client_id] = handle
        return handle

    def disconnect(self, client_id: str) -> None:
        with self._lock:
            self._handles.pop(client_id, None)

    def _worker_address(self, worker_id: int) -> tuple[str, int]:
        with self._lock:
            worker = self._workers[worker_id]
            return worker.address, worker.generation

    # -- admission: bulkheads + breaker ---------------------------------------

    def _bulkhead(self, client_class: str) -> threading.Semaphore:
        with self._lock:
            sem = self._bulkheads.get(client_class)
            if sem is None:
                sem = threading.Semaphore(self.bulkhead_capacity)
                self._bulkheads[client_class] = sem
            return sem

    def breaker(self, client_class: str = DEFAULT_CLASS) -> _Breaker:
        with self._lock:
            breaker = self._breakers.get(client_class)
            if breaker is None:
                breaker = _Breaker(client_class,
                                   self.config.breaker_threshold,
                                   self.config.breaker_cooldown_s)
                self._breakers[client_class] = breaker
            return breaker

    def _admit(self, client_id: str, client_class: str):
        """Front-door admission; returns the release callback.

        Order matters: the breaker check precedes the bulkhead so an
        open circuit sheds load without even touching the permit pool,
        and a bulkhead rejection feeds the breaker's failure streak.
        """
        breaker = self.breaker(client_class)
        breaker.check()
        bulkhead = self._bulkhead(client_class)
        if not bulkhead.acquire(blocking=False):
            self.stats_hub.record_rejected(client_id)
            breaker.record_overload()
            raise ServerOverloadedError(
                f"bulkhead for class {client_class!r} full "
                f"({self.bulkhead_capacity} in flight)",
                retry_after=max(0.05, 2 * self.worker_threads * 0.01))
        return bulkhead.release

    def _query_outcome(self, client_class: str, error) -> None:
        """Feed the breaker from a finished worker round-trip.

        Any outcome that is not an overload counts as success: even a
        failed query proves the worker *accepted* it, which is what the
        breaker guards.  (A front-door :class:`CircuitOpenError` never
        reaches this path — it raises before dispatch.)
        """
        breaker = self.breaker(client_class)
        if isinstance(error, ServerOverloadedError):
            breaker.record_overload()
        else:
            breaker.record_success()

    # -- fleet telemetry -------------------------------------------------------

    def clients(self) -> list[str]:
        with self._lock:
            return sorted(self._handles)

    def queue_depth(self) -> int:
        return sum(self._each_worker("queue_depth"))

    def stats(self) -> ServerStatsSnapshot:
        """One fleet-wide stats snapshot (associative per-worker merge).

        The merged ``hit_percentage`` is recomputed *exactly* from the
        merged metrics (the snapshot-level merge can only estimate it
        from per-worker rates).
        """
        snapshots = self._each_worker("stats")
        snapshots.append(self.stats_hub.snapshot(
            workers=0, hit_percentage=0.0, num_views=0,
            view_storage_bytes=0))
        merged = ServerStatsSnapshot.merge(snapshots)
        return dataclasses.replace(
            merged, hit_percentage=self.hit_percentage())

    def aggregate_metrics(self):
        """One MetricsCollector over every client on every worker."""
        return merged_metrics(self._each_worker("metrics"))

    def hit_percentage(self) -> float:
        return self.aggregate_metrics().hit_percentage()

    def aggregate_clock(self):
        """One clock totalling virtual time across the whole fleet."""
        from repro.clock import SimulationClock

        total = SimulationClock()
        for breakdown in self._each_worker("clock"):
            for category, seconds in breakdown.items():
                if seconds > 0:
                    total.charge(category, seconds)
        return total

    def profile_snapshot(self):
        from repro.obs.profiler import ProfileStore

        merged = ProfileStore()
        for snapshot in self._each_worker("profile"):
            merged.merge(snapshot)
        return merged.snapshot()

    def drift_report(self):
        from repro.obs.calibration import detect_drift, \
            modeled_model_costs

        return detect_drift(
            self.profile_snapshot(),
            modeled_model_costs(self._catalog),
            ratio_threshold=self.config.drift_ratio_threshold,
            min_invocations=self.config.calibration_min_invocations,
        )

    def batcher_snapshot(self) -> BatcherSnapshot:
        return BatcherSnapshot.merge(self._each_worker("batcher"))

    def slo_snapshot(self):
        from repro.obs.slo import SloSnapshot

        return SloSnapshot.merge(self._each_worker("slo"))

    def flight_stats(self) -> dict:
        from repro.obs.flight import FlightStats

        return FlightStats.merge_snapshots(self._each_worker("flight"))

    def store_snapshot(self):
        return merge_store_snapshots(self._each_worker("store"),
                                     path=str(self.config.store_path))

    def ledger_snapshot(self) -> list[dict]:
        return merge_ledger_snapshots(self._each_worker("ledger"))

    def lineage_records(self) -> list[dict]:
        return merge_lineage_records(self._each_worker("lineage"))

    def trace_events(self, type: str | None = None) -> list[dict]:
        events: list[dict] = []
        for chunk in self._each_worker("trace", type):
            events.extend(chunk)
        return events

    def dump_views(self) -> dict:
        """Fleet-wide ``{view: (key_cols, out_cols, sorted items)}``
        (shards are disjoint, so per-worker dumps union cleanly)."""
        dump: dict = {}
        for chunk in self._each_worker("dump_views"):
            dump.update(chunk)
        return dump

    def prometheus_text(self) -> str:
        """The Prometheus exposition for the whole fleet, assembled
        from the per-worker parts through the associative merges."""
        from repro.obs.prometheus import prometheus_text

        return prometheus_text(
            metrics=self.aggregate_metrics(),
            clock=self.aggregate_clock(),
            server=self.stats(),
            profile=self.profile_snapshot(),
            drift=self.drift_report(),
            batcher=self.batcher_snapshot(),
            store=self.store_snapshot(),
            flight=self.flight_stats(),
            slo=self.slo_snapshot(),
            views=self.ledger_snapshot(),
        )

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        for worker in workers:
            try:
                self._control(worker, "shutdown", drain)
            except WorkerCrashedError:
                pass
        self._executor.shutdown(wait=False, cancel_futures=True)
        join_timeout = 10.0 if timeout is None else timeout
        for worker in workers:
            worker.process.join(timeout=join_timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            try:
                worker.control.close()
            except OSError:
                pass
        if self._monitor is not None:
            self._monitor.join(timeout=2)
        shutil.rmtree(self._socket_dir, ignore_errors=True)


# -- client handle -------------------------------------------------------------


class PoolClientHandle:
    """One client's connection to a :class:`PoolServer` worker.

    Mirrors :class:`~repro.server.client.ClientHandle` (submit /
    execute / introspection / close); ``checkout`` is necessarily
    absent — the session lives in the worker process — so the
    introspection a driver actually needs (clock breakdown, hit rate,
    last metrics, workload time) is exposed as explicit RPCs instead.
    On a worker crash the next call reconnects to the respawned
    replacement.
    """

    def __init__(self, server: PoolServer, client_id: str,
                 worker_id: int):
        self._server = server
        self.client_id = client_id
        self.worker_id = worker_id
        self._lock = threading.Lock()
        self._conn = None
        self._generation = -1
        self.closed = False

    # -- connection management -------------------------------------------------

    def _ensure_conn(self):
        address, generation = self._server._worker_address(self.worker_id)
        if self._conn is None or generation != self._generation:
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
            conn = _ConnClient(address, authkey=self._server._authkey)
            conn.send(("client", self.client_id))
            self._conn = conn
            self._generation = generation
        return self._conn

    def _rpc(self, op: str, *args):
        with self._lock:
            try:
                conn = self._ensure_conn()
                conn.send((op,) + args)
                reply = conn.recv()
            except (EOFError, OSError, BrokenPipeError) as error:
                if self._conn is not None:
                    try:
                        self._conn.close()
                    except OSError:
                        pass
                    self._conn = None
                raise WorkerCrashedError(
                    f"worker {self.worker_id} died serving "
                    f"{self.client_id!r} ({op}); it will be respawned "
                    f"and its shards recovered") from error
        if reply[0] == "ok":
            return reply[1]
        raise decode_error(reply[1], reply[2], reply[3])

    # -- query paths -----------------------------------------------------------

    def submit(self, sql: str,
               timeout: float | None = _DEFAULT
               ) -> "Future[QueryResult]":
        """Admit ``sql``; returns a Future resolving to its result.

        Front-door admission (breaker, bulkhead) happens synchronously
        — overload errors raise *here*, matching ``EvaServer.submit``;
        worker-side errors (including the worker's own admission
        control) surface through the future.
        """
        if self.closed:
            raise ServerError(f"client {self.client_id!r} is closed")
        client_class = self._server._client_classes.get(
            self.client_id, DEFAULT_CLASS)
        release = self._server._admit(self.client_id, client_class)
        has_timeout = timeout is not _DEFAULT

        def run() -> QueryResult:
            error: BaseException | None = None
            try:
                return self._rpc("query", sql, has_timeout,
                                 timeout if has_timeout else None)
            except BaseException as exc:  # noqa: BLE001 - classified below
                error = exc
                raise
            finally:
                release()
                self._server._query_outcome(client_class, error)

        try:
            return self._server._executor.submit(run)
        except BaseException:
            release()
            raise

    def execute(self, sql: str,
                timeout: float | None = _DEFAULT) -> QueryResult:
        return self.submit(sql, timeout=timeout).result()

    # -- introspection ---------------------------------------------------------

    def clock_breakdown(self) -> dict:
        """This client's virtual-clock breakdown (category -> seconds)."""
        return self._rpc("clock")

    def hit_percentage(self) -> float:
        return self._rpc("hit_pct")

    def last_query_metrics(self):
        return self._rpc("last_metrics")

    def workload_time(self) -> float:
        return self._rpc("workload_time")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._rpc("close")
        except (WorkerCrashedError, ServerError):
            pass
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
                self._conn = None
        self._server.disconnect(self.client_id)

    def __enter__(self) -> "PoolClientHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PoolClientHandle({self.client_id!r}, "
                f"worker={self.worker_id})")


# -- ledger merges -------------------------------------------------------------

#: Additive counter fields of one lineage export record.
_LINEAGE_SUMS = ("invocations_paid", "fresh_rows", "materialize_vs",
                 "hits", "misses", "rows_served", "saved_vs")


def merge_lineage_records(record_lists) -> list[dict]:
    """Fold per-worker ledger exports into one fleet-wide export.

    Each worker's ledger sees its *own clients'* touches of a view
    (lineage hooks fire on the probing worker), so per-``lineage_id``
    counters add; creation metadata comes from whichever worker ran
    the creating query; ``bytes`` takes the owner's figure (the max —
    non-owners only observe, they never size it); reader maps add per
    reader and edges union.
    """
    merged: dict[str, dict] = {}
    for records in record_lists:
        for record in records or []:
            lineage_id = record["lineage_id"]
            into = merged.get(lineage_id)
            if into is None:
                into = dict(record)
                into["readers"] = dict(record.get("readers") or {})
                into["edges"] = list(record.get("edges") or [])
                merged[lineage_id] = into
                continue
            for fieldname in _LINEAGE_SUMS:
                into[fieldname] = (into.get(fieldname, 0)
                                   + record.get(fieldname, 0))
            into["bytes"] = max(into.get("bytes", 0),
                                record.get("bytes", 0))
            if not (into.get("created") or {}).get("query") and \
                    (record.get("created") or {}).get("query"):
                into["created"] = record["created"]
                into["status"] = record["status"]
            for reader, count in (record.get("readers") or {}).items():
                into["readers"][reader] = \
                    into["readers"].get(reader, 0) + count
            seen = {(e["source"], e["op"]) for e in into["edges"]}
            for edge in record.get("edges") or []:
                if (edge["source"], edge["op"]) not in seen:
                    into["edges"].append(edge)
                    seen.add((edge["source"], edge["op"]))
            frames = [f for f in (into.get("frame_range"),
                                  record.get("frame_range")) if f]
            if frames:
                into["frame_range"] = [min(f[0] for f in frames),
                                       max(f[1] for f in frames)]
            last = [s for s in (into.get("last_access_seq"),
                                record.get("last_access_seq"))
                    if s is not None]
            into["last_access_seq"] = max(last) if last else None
    for into in merged.values():
        into["net_benefit"] = (into.get("saved_vs", 0.0)
                               - into.get("materialize_vs", 0.0))
        into["readers"] = {k: into["readers"][k]
                           for k in sorted(into["readers"])}
        into["edges"] = sorted(into["edges"],
                               key=lambda e: (e["source"], e["op"]))
    return [merged[k] for k in sorted(merged)]


def merge_ledger_snapshots(snapshot_lists) -> list[dict]:
    """Fold per-worker ``ViewLedger.snapshot()`` gauge rows by id."""
    merged: dict[str, dict] = {}
    for rows in snapshot_lists:
        for row in rows or []:
            into = merged.get(row["id"])
            if into is None:
                merged[row["id"]] = dict(row)
                continue
            for fieldname in ("hits", "rows_served", "net_benefit",
                              "bytes"):
                into[fieldname] = (into[fieldname] + row[fieldname]
                                   if fieldname != "bytes"
                                   else max(into[fieldname],
                                            row[fieldname]))
            into["age_s"] = max(into["age_s"], row["age_s"])
            into["idle_s"] = min(into["idle_s"], row["idle_s"])
            if row["status"] != "live":
                into["status"] = row["status"]
    return [merged[k] for k in sorted(merged)]
