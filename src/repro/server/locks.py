"""A writer-preferring reader-writer lock.

View probes vastly outnumber view appends in a settled workload (the
whole point of reuse is that most keys are already materialized), so the
shared view store wants concurrent readers with exclusive writers rather
than one big mutex.  Writer preference keeps a steady stream of readers
from starving the occasional append.

The lock is *not* reentrant: a thread holding the read lock must not
acquire the write lock (classic upgrade deadlock).  Callers in this
package never nest acquisitions.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator


class RWLock:
    """Multiple concurrent readers XOR one exclusive writer.

    Contention telemetry is **opt-in and zero-cost when off**: with no
    listener registered the acquire paths make no ``perf_counter``
    calls and accumulate no wait seconds.  :meth:`set_listener`
    registers a ``listener(kind, wait_seconds)`` callback
    (``kind`` is ``"read"`` or ``"write"``) invoked after every
    acquisition with the wall seconds the caller spent blocked; the
    installer (e.g. the shared view store) closes over its lock-class
    label.  The writers-waiting high-water mark costs one integer
    compare and is therefore tracked unconditionally.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._listener: Callable[[str, float], None] | None = None
        #: Peak concurrent writers blocked on this lock (always on).
        self.writers_waiting_high_water = 0
        #: Total wall seconds spent blocked, by side.  Only accumulated
        #: while a listener is registered (timing is otherwise skipped).
        self.read_wait_seconds = 0.0
        self.write_wait_seconds = 0.0

    def set_listener(self,
                     listener: Callable[[str, float], None] | None) -> None:
        """Register (or clear) the contention callback."""
        self._listener = listener

    def _notify(self, kind: str, waited: float) -> None:
        # Called with the condition held: the float adds stay racefree.
        if kind == "read":
            self.read_wait_seconds += waited
        else:
            self.write_wait_seconds += waited
        listener = self._listener
        if listener is not None:
            listener(kind, waited)

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        listener = self._listener
        started = time.perf_counter() if listener is not None else 0.0
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            if listener is not None:
                self._notify("read", time.perf_counter() - started)

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                raise RuntimeError("release_read without acquire_read")
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        listener = self._listener
        started = time.perf_counter() if listener is not None else 0.0
        with self._cond:
            self._writers_waiting += 1
            if self._writers_waiting > self.writers_waiting_high_water:
                self.writers_waiting_high_water = self._writers_waiting
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            if listener is not None:
                self._notify("write", time.perf_counter() - started)

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) ----------------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
