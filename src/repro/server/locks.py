"""A writer-preferring reader-writer lock.

View probes vastly outnumber view appends in a settled workload (the
whole point of reuse is that most keys are already materialized), so the
shared view store wants concurrent readers with exclusive writers rather
than one big mutex.  Writer preference keeps a steady stream of readers
from starving the occasional append.

The lock is *not* reentrant: a thread holding the read lock must not
acquire the write lock (classic upgrade deadlock).  Callers in this
package never nest acquisitions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Multiple concurrent readers XOR one exclusive writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                raise RuntimeError("release_read without acquire_read")
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) ----------------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
