"""The client-facing handle onto an :class:`~repro.server.server.EvaServer`.

A :class:`ClientHandle` is what an analyst (or driver thread) holds:

* :meth:`submit` — asynchronous: admit one query, get a
  ``Future[QueryResult]`` back immediately (or an admission error);
* :meth:`execute` — synchronous sugar: submit and block on the result;
* :meth:`checkout` — borrow the underlying private
  :class:`~repro.session.EvaSession` under the client's lock for
  introspection (``explain``, metrics) without racing in-flight
  queries;
* :meth:`close` — check the client back in; its accumulated metrics
  remain on the server for attribution.

Handles are cheap and thread-safe; the server serializes each client's
queries, so two threads sharing one handle simply take turns.
"""

from __future__ import annotations

from concurrent.futures import Future
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.metrics import QueryMetrics
from repro.session import EvaSession
from repro.types import QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import EvaServer, _Client

#: Sentinel: "use the server's default timeout" (mirrors server.py).
_DEFAULT = object()


class ClientHandle:
    """One client's connection to a running server."""

    def __init__(self, server: "EvaServer", client: "_Client"):
        self._server = server
        self._client = client

    @property
    def client_id(self) -> str:
        return self._client.client_id

    @property
    def closed(self) -> bool:
        return self._client.closed

    # -- query paths -----------------------------------------------------------

    def submit(self, sql: str,
               timeout: float | None = _DEFAULT
               ) -> "Future[QueryResult]":
        """Admit ``sql`` asynchronously.

        Raises admission errors (:class:`~repro.errors.ServerOverloadedError`,
        :class:`~repro.errors.ServerClosedError`) synchronously; query
        errors surface through the returned future.
        """
        if timeout is _DEFAULT:
            return self._server.submit(self.client_id, sql)
        return self._server.submit(self.client_id, sql, timeout=timeout)

    def execute(self, sql: str,
                timeout: float | None = _DEFAULT) -> QueryResult:
        """Submit ``sql`` and block until its result is available."""
        return self.submit(sql, timeout=timeout).result()

    # -- session checkout ------------------------------------------------------

    @contextmanager
    def checkout(self) -> Iterator[EvaSession]:
        """Borrow the client's private session (exclusive).

        Holding the checkout blocks this client's queued queries at the
        worker (they wait on the same lock), so keep the critical
        section short — it exists for introspection like ``explain`` or
        reading metrics consistently, not for bulk work.
        """
        with self._client.lock:
            yield self._client.session

    # -- introspection ---------------------------------------------------------

    def hit_percentage(self) -> float:
        """This client's own hit rate (its private metrics)."""
        return self._client.session.metrics.hit_percentage()

    def last_query_metrics(self) -> QueryMetrics | None:
        return self._client.session.last_query_metrics()

    def workload_time(self) -> float:
        """Total virtual seconds across this client's queries."""
        return self._client.session.workload_time()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._server.disconnect(self.client_id)

    def __enter__(self) -> "ClientHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClientHandle({self.client_id!r})"
