"""Shared reuse state: thread-safe facades over the single-user cores.

One :class:`SharedReuseState` backs every client of an
:class:`~repro.server.server.EvaServer`.  It shares exactly the
components whose contents are *semantically global* — materialized
results are pure functions of (model, video, input), so one client's
work is every client's work:

* :class:`SharedViewStore` — the view store plus one
  :class:`~repro.server.locks.RWLock` per materialized view.  Clients
  access it through per-client facades (:meth:`SharedViewStore.for_client`)
  so every probe and append can be *attributed*: the store remembers
  which client first materialized each key, and reports cross-client
  hits (client B served by client A's work) to the server's stats.
* :class:`LockedUdfManager` — the aggregated-predicate bookkeeping
  (``p_u := UNION(p_u, q)``) behind one mutex.  Both the version counter
  and the predicate merge must be atomic: two racing unions could
  otherwise interleave read-modify-write and drop a guard, silently
  shrinking what the optimizer believes is materialized (worse than a
  crash: it would cause redundant recomputation *and* a stale plan
  cache).
* the model zoo, catalog, and storage engine — written only during
  setup (video/UDF registration, guarded here), read-only while serving.

Everything else (clock, metrics, plan cache, optimizer) is built fresh
per client by :meth:`SharedReuseState.session_state`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping

from repro.catalog.catalog import Catalog
from repro.clock import SimulationClock
from repro.config import EvaConfig
from repro.metrics import MetricsCollector
from repro.models.zoo import ModelZoo, default_zoo
from repro.obs.flight import FlightStats
from repro.obs.flight import record_lock_wait as _flight_lock_wait
from repro.obs.lineage import ViewLedger
from repro.obs.profiler import ProfileStore
from repro.obs.sinks import TraceSink
from repro.obs.slo import SloTracker
from repro.obs.trace import Tracer
from repro.optimizer.udf_manager import UdfHistory, UdfManager, UdfSignature
from repro.server.batcher import InferenceBatcher
from repro.server.locks import RWLock
from repro.session import SessionState
from repro.storage.engine import StorageEngine
from repro.storage.view_store import Key, MaterializedView, ViewStore
from repro.symbolic.dnf import DnfPredicate
from repro.symbolic.engine import SymbolicEngine
from repro.video.synthetic import SyntheticVideo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.stats import ServerStats


class LockedUdfManager:
    """A :class:`UdfManager` with every public operation mutex-guarded.

    ``history()`` creates entries on first use, so even the "read"
    operations (INTER/DIFF against history) can write and must hold the
    lock.  The symbolic union inside :meth:`record_execution` runs under
    the lock too — predicate merging is not commutative-safe to retry,
    so correctness beats the (bounded, post-query) serialization cost.
    """

    def __init__(self, base: UdfManager):
        self._base = base
        self._lock = threading.RLock()
        self._listener = None

    def set_listener(self, listener) -> None:
        """Register a ``listener(kind, wait_seconds)`` contention
        callback (the ``udf-manager`` lock class).  Zero-cost when
        unset: acquisition is untimed without a listener."""
        self._listener = listener

    @contextmanager
    def _guarded(self):
        listener = self._listener
        if listener is None:
            with self._lock:
                yield
            return
        started = time.perf_counter()
        with self._lock:
            # The mutex is exclusive, so contention is "write"-side.
            listener("write", time.perf_counter() - started)
            yield

    @property
    def version(self) -> int:
        """Monotone state version (plan caches key validity on it)."""
        with self._guarded():
            return self._base.version

    def history(self, signature: UdfSignature,
                per_tuple_cost: float = 0.0) -> UdfHistory:
        with self._guarded():
            return self._base.history(signature, per_tuple_cost)

    def known(self, signature: UdfSignature) -> bool:
        with self._guarded():
            return self._base.known(signature)

    def histories(self) -> list[UdfHistory]:
        with self._guarded():
            return self._base.histories()

    def intersection_with_history(self, signature: UdfSignature,
                                  guard: DnfPredicate) -> DnfPredicate:
        with self._guarded():
            return self._base.intersection_with_history(signature, guard)

    def difference_with_history(self, signature: UdfSignature,
                                guard: DnfPredicate) -> DnfPredicate:
        with self._guarded():
            return self._base.difference_with_history(signature, guard)

    def record_execution(self, signature: UdfSignature,
                         guard: DnfPredicate,
                         per_tuple_cost: float = 0.0) -> None:
        with self._guarded():
            self._base.record_execution(signature, guard, per_tuple_cost)

    def reset(self) -> None:
        with self._guarded():
            self._base.reset()


class ClientViewHandle:
    """A per-client, lock-guarded proxy of one :class:`MaterializedView`.

    Duck-types the view API the executor's operators use, adding (a) a
    reader-writer lock shared by all clients of the same view and (b)
    hit/materialization attribution against the owning client registry.
    """

    __slots__ = ("_view", "_lock", "_owners", "_client_id", "_stats")

    def __init__(self, view: MaterializedView, lock: RWLock,
                 owners: dict[Key, str], client_id: str,
                 stats: "ServerStats | None"):
        self._view = view
        self._lock = lock
        self._owners = owners
        self._client_id = client_id
        self._stats = stats

    # -- pass-through metadata ------------------------------------------------

    @property
    def name(self) -> str:
        return self._view.name

    @property
    def key_columns(self) -> list[str]:
        return self._view.key_columns

    @property
    def runtime_cache(self) -> dict:
        # Derived-data scratch space (e.g. the executor's decoded-hit
        # cache), shared by all clients of the view: entries are keyed
        # by frame id and immutable once written, so concurrent writers
        # can only race to store identical values.
        return self._view.runtime_cache

    @property
    def output_columns(self) -> list[str]:
        return self._view.output_columns

    @property
    def num_keys(self) -> int:
        with self._lock.read_locked():
            return self._view.num_keys

    @property
    def num_output_rows(self) -> int:
        with self._lock.read_locked():
            return self._view.num_output_rows

    # -- guarded reads --------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        with self._lock.read_locked():
            return key in self._view

    def get(self, key: Key) -> tuple[dict, ...] | None:
        with self._lock.read_locked():
            rows = self._view.get(key)
            owner = self._owners.get(key) if rows is not None else None
        if rows is not None and self._stats is not None:
            self._stats.record_view_hit(self._view.name, self._client_id,
                                        owner)
        return rows

    def get_many(self, keys: list[Key]) -> list[tuple[dict, ...] | None]:
        """Bulk :meth:`get` under one read-lock acquisition.

        Hit attribution is preserved: every present key is reported to the
        server stats with the client that first materialized it, exactly
        as the per-key path does — just without re-acquiring the RW lock
        per row.
        """
        with self._lock.read_locked():
            results = self._view.get_many(keys)
            owners = [self._owners.get(key) if rows is not None else None
                      for key, rows in zip(keys, results)]
        if self._stats is not None:
            name = self._view.name
            for rows, owner in zip(results, owners):
                if rows is not None:
                    self._stats.record_view_hit(name, self._client_id,
                                                owner)
        return results

    def keys(self) -> list[Key]:
        with self._lock.read_locked():
            return list(self._view.keys())

    def keys_with_prefix(self, first_component: Hashable) -> list[Key]:
        # Read lock suffices: the lazy index build inside the view is
        # serialized by the view's own internal lock.
        with self._lock.read_locked():
            return self._view.keys_with_prefix(first_component)

    def serialize(self) -> bytes:
        with self._lock.read_locked():
            return self._view.serialize()

    def serialized_bytes(self) -> int:
        return len(self.serialize())

    # -- guarded writes -------------------------------------------------------

    def put(self, key: Key, rows: Iterable[Mapping]) -> bool:
        with self._lock.write_locked():
            inserted = self._view.put(key, rows)
            if inserted:
                self._owners[key] = self._client_id
        if inserted and self._stats is not None:
            self._stats.record_materialization(self._client_id)
        return inserted

    def put_many(self, items: Iterable[tuple[Key, Iterable[Mapping]]]
                 ) -> list[bool]:
        """Bulk :meth:`put` under one write-lock acquisition.

        Returns per-item inserted flags (mirroring
        :meth:`MaterializedView.put_many`) and attributes every newly
        materialized key to this client.
        """
        items = list(items)
        with self._lock.write_locked():
            inserted = self._view.put_many(items)
            for (key, _), was_new in zip(items, inserted):
                if was_new:
                    self._owners[key] = self._client_id
        if self._stats is not None:
            for was_new in inserted:
                if was_new:
                    self._stats.record_materialization(self._client_id)
        return inserted


class SharedViewStore:
    """A :class:`ViewStore` shared by all clients of one server.

    Per-view reader-writer locks let overlapping queries from different
    clients probe the same view concurrently while appends are
    exclusive.  :meth:`for_client` mints the per-client facade that the
    client's :class:`~repro.executor.context.ExecutionContext` carries;
    all facades see (and contribute to) the same underlying views.
    """

    def __init__(self, base: ViewStore | None = None):
        self._base = base or ViewStore()
        self._registry_lock = threading.Lock()
        self._locks: dict[str, RWLock] = {}
        #: view name -> key -> client that first materialized the key.
        self._owners: dict[str, dict[Key, str]] = {}
        self._stats: "ServerStats | None" = None

    def attach_stats(self, stats: "ServerStats") -> None:
        """Start reporting hits/materializations to ``stats``."""
        self._stats = stats
        with self._registry_lock:
            for name, lock in self._locks.items():
                self._install_listener(name, lock)

    def _install_listener(self, name: str, lock: RWLock) -> None:
        """Wire a view lock's contention callback (``view:<name>``) to
        the server stats and the active query's flight context."""
        stats = self._stats
        if stats is None:
            return
        lock_class = f"view:{name}"

        def on_wait(kind: str, waited: float,
                    _stats=stats, _lock=lock) -> None:
            _stats.record_lock_wait(
                lock_class, kind, waited,
                writers_waiting_high_water=_lock.writers_waiting_high_water)
            _flight_lock_wait(lock_class, kind, waited)

        lock.set_listener(on_wait)

    @property
    def base(self) -> ViewStore:
        """The underlying (unguarded) store — administrative use only."""
        return self._base

    def for_client(self, client_id: str) -> "ClientViewStore":
        return ClientViewStore(self, client_id)

    # -- registry ------------------------------------------------------------

    def _view_lock(self, name: str) -> RWLock:
        with self._registry_lock:
            lock = self._locks.get(name)
            if lock is None:
                lock = RWLock()
                self._locks[name] = lock
                self._install_listener(name, lock)
            return lock

    def _view_owners(self, name: str) -> dict[Key, str]:
        with self._registry_lock:
            owners = self._owners.get(name)
            if owners is None:
                owners = {}
                self._owners[name] = owners
            return owners

    def _handle(self, view: MaterializedView | None, client_id: str
                ) -> ClientViewHandle | None:
        if view is None:
            return None
        return ClientViewHandle(view, self._view_lock(view.name),
                                self._view_owners(view.name), client_id,
                                self._stats)

    # -- store-level operations ----------------------------------------------

    def owner_of(self, view_name: str, key: Key) -> str | None:
        """Which client first materialized ``key`` (None if unknown)."""
        return self._view_owners(view_name).get(key)

    def names(self) -> list[str]:
        return self._base.names()

    def __contains__(self, name: str) -> bool:
        return name in self._base

    def total_serialized_bytes(self) -> int:
        return self._base.total_serialized_bytes()

    def drop(self, name: str, *, reason: str = "drop") -> int:
        """Drop one view; returns the (estimated) bytes freed, 0 if the
        view did not exist (see :meth:`ViewStore.drop`)."""
        lock = self._view_lock(name)
        with lock.write_locked():
            freed = self._base.drop(name, reason=reason)
        with self._registry_lock:
            self._owners.pop(name, None)
            # The RWLock stays registered: a concurrent reader blocked on
            # it must still be able to release cleanly.
        return freed

    def drop_all(self) -> int:
        return sum(self.drop(name) for name in self.names())

    def save_to(self, directory) -> int:
        return self._base.save_to(directory)

    # -- durability passthrough (no-ops over a memory-backed base) -----------

    def flush(self) -> None:
        if hasattr(self._base, "flush"):
            self._base.flush()

    def close(self) -> None:
        if hasattr(self._base, "close"):
            self._base.close()

    def store_snapshot(self):
        """Durable-store health, or None for a memory-backed base."""
        if hasattr(self._base, "store_snapshot"):
            return self._base.store_snapshot()
        return None


class ClientViewStore:
    """One client's window onto a :class:`SharedViewStore`.

    Duck-types the :class:`ViewStore` API used by sessions and
    operators, returning :class:`ClientViewHandle` proxies so every
    access is lock-guarded and attributed to this client.
    """

    def __init__(self, shared: SharedViewStore, client_id: str):
        self.shared = shared
        self.client_id = client_id

    def create_or_get(self, name: str, key_columns: list[str],
                      output_columns: list[str]) -> ClientViewHandle:
        view = self.shared.base.create_or_get(name, key_columns,
                                              output_columns)
        return self.shared._handle(view, self.client_id)

    def get(self, name: str) -> ClientViewHandle | None:
        return self.shared._handle(self.shared.base.get(name),
                                   self.client_id)

    def __contains__(self, name: str) -> bool:
        return name in self.shared

    def names(self) -> list[str]:
        return self.shared.names()

    def total_serialized_bytes(self) -> int:
        return self.shared.total_serialized_bytes()

    def view_bytes(self, names) -> dict:
        return self.shared.base.view_bytes(names)

    def drop(self, name: str, *, reason: str = "drop") -> int:
        return self.shared.drop(name, reason=reason)

    def drop_all(self) -> int:
        return self.shared.drop_all()

    def save_to(self, directory) -> int:
        return self.shared.save_to(directory)

    # -- lineage / durability passthrough -------------------------------------

    @property
    def is_durable(self) -> bool:
        return bool(getattr(self.shared.base, "is_durable", False))

    def log_lineage(self, records) -> None:
        log = getattr(self.shared.base, "log_lineage", None)
        if log is not None:
            log(records)


class SharedReuseState:
    """Everything an :class:`EvaServer`'s clients have in common."""

    def __init__(self, config: EvaConfig | None = None,
                 zoo: ModelZoo | None = None):
        self.config = config or EvaConfig()
        self.zoo = zoo or default_zoo()
        self.catalog = Catalog(self.zoo)
        self.storage = StorageEngine()
        self.symbolic = SymbolicEngine(
            self.config.symbolic_time_budget,
            memo_size=self.config.symbolic_memo_size)
        self._init_reuse_state()
        #: Cross-client inference micro-batching: every client's
        #: ExecutionContext routes model calls through this shared
        #: batcher, which coalesces concurrent miss sub-batches that
        #: target the same physical model into single ``predict_batch``
        #: dispatches (one shared service round-trip each).  Virtual
        #: clocks are untouched — operators pre-charge their own.
        self.batcher = InferenceBatcher(
            max_batch_size=self.config.micro_batch_max_size,
            timeout_ms=self.config.micro_batch_timeout_ms)
        #: The inference seam handed to sessions.  Defaults to the local
        #: batcher; the sharded worker state replaces it with a routing
        #: proxy that forwards each (model, video) to its owning
        #: dispatcher process so coalescing spans the whole pool.
        self.inference = self.batcher
        #: One shared profile store: every client's per-model /
        #: per-operator telemetry rolls up into the same continuous
        #: profile (ProfileStore is internally thread-safe), mirroring
        #: how materialized views are shared.
        self.profiler = ProfileStore()
        #: Server-wide latency SLO tracking and flight-record rollups:
        #: one tracker/stats pair shared by every client session so
        #: quantiles, burn rates and dominant-stage counts describe the
        #: whole server, not one connection.
        self.slo = SloTracker.from_config(self.config)
        self.flight_stats = FlightStats()
        #: One shared plan→kernel cache: compiled fused plans are
        #: context-free (per-execution state lives in the operator), so
        #: every client reuses each other's compilations.  KernelCache is
        #: internally lock-guarded.
        from repro.executor.fusion import KernelCache

        self.kernel_cache = KernelCache(self.config.kernel_cache_size)
        #: One shared view-provenance ledger: reader attribution must
        #: span clients (client B reading client A's view is exactly the
        #: cross-client benefit the ledger quantifies).
        self.ledger = ViewLedger() if self.config.view_ledger else None
        #: Recent ``store-eviction`` audit records (bounded; admin API).
        self.eviction_records: list = []
        self._init_shared_services()
        self._setup_lock = threading.Lock()

    def _init_reuse_state(self) -> None:
        """Build the view store + UDF manager this state serves from.

        Sets ``self.view_store`` (a :class:`SharedViewStore` or a
        duck-typed equivalent), ``self.udf_manager`` (a
        :class:`LockedUdfManager` contract), and ``self._base_stores``
        — the list of underlying physical stores the shared services
        (ledger hookup, eviction wiring) iterate over.  The worker-pool
        state (:class:`~repro.server.shard.ShardedWorkerState`)
        overrides this to open one durable partition per owned shard
        and route by shard key; the default is the single-store layout.
        """
        if self.config.store_mode == "durable":
            from repro.store import (PersistentUdfManager, open_view_store,
                                     restore_udf_histories)

            base_store = open_view_store(self.config)
            base_manager = PersistentUdfManager(self.symbolic, base_store)
            restore_udf_histories(base_store, base_manager, self.symbolic)
        else:
            base_store = ViewStore()
            base_manager = UdfManager(self.symbolic)
        self.view_store = SharedViewStore(base_store)
        self.udf_manager = LockedUdfManager(base_manager)
        self._base_stores = [base_store]

    def _init_shared_services(self) -> None:
        """Wire the ledger and eviction audit into every base store.

        Iterates ``self._base_stores`` so the sharded layout (several
        durable partitions per process) gets the same provenance and
        tiering treatment per shard as the single-store layout gets for
        its one store.
        """
        for base_store in self._base_stores:
            if self.ledger is not None:
                base_store.ledger = self.ledger
            if getattr(base_store, "is_durable", False):
                from repro.store import make_cost_resolver
                base_store.cost_resolver = make_cost_resolver(
                    self.profiler, self.catalog)
                if self.ledger is not None:
                    recovered = base_store.recovered_lineage
                    if recovered:
                        self.ledger.restore(recovered)
                base_store.eviction_listener = self._record_eviction

    def _record_eviction(self, name: str, *, action: str, reason: str,
                         score: float, nbytes: int) -> None:
        """Keep a bounded audit trail of the store's tiering decisions.

        Per-client sessions are not on this path (evictions fire from
        whichever client's write tripped the budget), so the records
        land on the shared state; the server exposes them alongside the
        ledger snapshot.
        """
        from repro.obs.audit import KIND_STORE_EVICTION, \
            ReuseDecisionRecord

        ledger = self.ledger
        net = ledger.net_benefit(name) if ledger is not None else None
        self.eviction_records.append(ReuseDecisionRecord(
            kind=KIND_STORE_EVICTION,
            signature=name,
            costs={"eviction_score": round(score, 9), "bytes": nbytes,
                   "net_benefit": (None if net is None
                                   else round(net, 9))},
            chosen=[{"action": action, "reason": reason}],
            reused=False,
            lineage_id=(ledger.current_id(name)
                        if ledger is not None else None),
        ))
        del self.eviction_records[:-256]

    def close_store(self) -> None:
        """Snapshot + close a durable base store (server shutdown)."""
        self.view_store.close()

    def attach_stats(self, stats: "ServerStats") -> None:
        self.view_store.attach_stats(stats)

        def on_udf_wait(kind: str, waited: float, _stats=stats) -> None:
            _stats.record_lock_wait("udf-manager", kind, waited)
            _flight_lock_wait("udf-manager", kind, waited)

        self.udf_manager.set_listener(on_udf_wait)

    def register_video(self, video: SyntheticVideo) -> None:
        """Register a video for all clients (guarded; setup-time only)."""
        with self._setup_lock:
            self.catalog.register_video(video)
            self.storage.register_video(video)

    def session_state(self, client_id: str,
                      trace_sink: TraceSink | None = None) -> SessionState:
        """A per-client :class:`SessionState` over the shared components.

        Shared: catalog, storage, view store (through this client's
        attributed facade), UDF manager, symbolic engine, config, and
        the continuous profile store (every client's telemetry rolls up
        into one server-wide profile).  Private: virtual clock, metrics,
        and tracer (and, inside the session, the plan cache and
        optimizer instance).  ``trace_sink``
        is the server's shared export sink: per-client tracers stamp
        their ``client_id`` on every span, so one sink carries an
        attributed, interleaved event stream for the whole server.
        """
        clock = SimulationClock()
        return SessionState(
            config=self.config,
            catalog=self.catalog,
            storage=self.storage,
            view_store=self.view_store.for_client(client_id),
            udf_manager=self.udf_manager,
            symbolic=self.symbolic,
            clock=clock,
            metrics=MetricsCollector(),
            tracer=Tracer(clock=clock, sink=trace_sink,
                          client_id=client_id),
            profiler=self.profiler,
            inference=self.inference,
            slo=self.slo,
            flight_stats=self.flight_stats,
            kernel_cache=self.kernel_cache,
            ledger=self.ledger,
            shared=True,
        )
