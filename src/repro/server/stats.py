"""Server-level observability.

Three layers of accounting:

* **admission / lifecycle** — per-client and aggregate submitted,
  completed, failed, rejected (backpressure), timed-out, and cancelled
  query counts, queue depth (current and peak), and QPS over the
  server's uptime;
* **cross-client reuse attribution** — every view probe that returns
  materialized rows is attributed ``(prober, owner)`` where *owner* is
  the client that first materialized the key.  The off-diagonal of this
  matrix is the server's value proposition: work one analyst paid for,
  served to another;
* **MetricsCollector-compatible aggregation** — :func:`merged_metrics`
  folds the per-client :class:`~repro.metrics.MetricsCollector` objects
  into one collector, so workload-level summaries (hit percentage,
  speedup upper bound, Table-3-style UDF stats) work unchanged on the
  whole server.

All mutation is mutex-guarded; counters are touched from worker threads,
client threads, and the admission path concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.metrics import MetricsCollector
from repro.obs.slo import HistogramSnapshot, LatencyHistogram

#: Attribution owner recorded when a key's materializing client is
#: unknown (e.g. state loaded from disk before the server started).
UNKNOWN_OWNER = "<unknown>"

#: Wait-time buckets (seconds): admission and lock waits are usually
#: far below query latency, so the grid starts at 100 microseconds.
WAIT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


def _window_qps(completed: int, first_activity: float | None,
                last_completed: float | None) -> float:
    """Completed-query throughput over the *active* wall-clock window.

    The window runs from the first submission to the most recent
    completion, so an idle server reports its historical rate instead of
    a figure that decays toward zero with uptime (the old
    ``completed / uptime`` behaviour).
    """
    if not completed or first_activity is None or last_completed is None:
        return 0.0
    return completed / max(last_completed - first_activity, 1e-9)


@dataclass(frozen=True)
class ClientStatsSnapshot:
    """Point-in-time accounting for one client."""

    client_id: str
    submitted: int
    completed: int
    failed: int
    rejected: int
    timed_out: int
    cancelled: int
    keys_materialized: int
    #: View probes served to this client from materialized state.
    hits_received: int
    #: Of those, how many were served by *another* client's work.
    hits_from_others: int
    #: Probes by *other* clients served from this client's work.
    hits_donated: int
    qps: float
    #: Raw QPS window bounds (``time.monotonic``), carried so
    #: multi-process snapshots merge associatively: the fleet window is
    #: ``min(first_activity)..max(last_completed)``, never a sum of
    #: per-process windows (which would double-count overlap).  On
    #: Linux ``time.monotonic`` is ``CLOCK_MONOTONIC``, comparable
    #: across processes on one host.
    first_activity: float | None = None
    last_completed: float | None = None

    @classmethod
    def merge(cls, snapshots: "list[ClientStatsSnapshot]"
              ) -> "ClientStatsSnapshot":
        """Combine per-process views of *the same client id*."""
        first = None
        last = None
        for s in snapshots:
            if s.first_activity is not None and (
                    first is None or s.first_activity < first):
                first = s.first_activity
            if s.last_completed is not None and (
                    last is None or s.last_completed > last):
                last = s.last_completed
        completed = sum(s.completed for s in snapshots)
        return cls(
            client_id=snapshots[0].client_id,
            submitted=sum(s.submitted for s in snapshots),
            completed=completed,
            failed=sum(s.failed for s in snapshots),
            rejected=sum(s.rejected for s in snapshots),
            timed_out=sum(s.timed_out for s in snapshots),
            cancelled=sum(s.cancelled for s in snapshots),
            keys_materialized=sum(s.keys_materialized for s in snapshots),
            hits_received=sum(s.hits_received for s in snapshots),
            hits_from_others=sum(s.hits_from_others for s in snapshots),
            hits_donated=sum(s.hits_donated for s in snapshots),
            qps=_window_qps(completed, first, last),
            first_activity=first,
            last_completed=last,
        )


@dataclass(frozen=True)
class ServerStatsSnapshot:
    """Point-in-time accounting for the whole server."""

    uptime: float
    workers: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    timed_out: int
    cancelled: int
    queue_depth: int
    peak_queue_depth: int
    aggregate_qps: float
    #: Aggregate hit percentage across every client's UDF invocations.
    hit_percentage: float
    num_views: int
    view_storage_bytes: int
    clients: tuple[ClientStatsSnapshot, ...] = ()
    #: (prober, owner) -> count of attributed view hits.
    cross_client_hits: dict = field(default_factory=dict)
    #: Admission-wait histogram summary (submit -> worker start), from
    #: :class:`~repro.obs.slo.LatencyHistogram.snapshot`'s ``to_dict``.
    admission_wait: dict = field(default_factory=dict)
    #: Per-lock-class contention: lock class -> ``read_s`` / ``write_s``
    #: / ``waits`` / ``writers_waiting_high_water`` / histogram summary.
    lock_waits: dict = field(default_factory=dict)
    #: Aggregate QPS window bounds (raw ``time.monotonic``); see
    #: :class:`ClientStatsSnapshot`.  These — not ``aggregate_qps`` —
    #: are what :meth:`merge` combines, so fleet QPS is recomputed over
    #: the union window instead of double-counting the admission window
    #: once per process.
    first_activity: float | None = None
    last_completed: float | None = None
    #: Raw admission-wait histogram (bucket counts), carried alongside
    #: the ``admission_wait`` summary dict so snapshots merge without
    #: averaging quantiles.
    admission_histogram: HistogramSnapshot | None = None
    #: Lock class -> raw :class:`HistogramSnapshot` backing the
    #: ``lock_waits[...]["wait"]`` summaries.
    lock_wait_histograms: dict = field(default_factory=dict)

    @classmethod
    def merge(cls, snapshots: "list[ServerStatsSnapshot]"
              ) -> "ServerStatsSnapshot":
        """Fold per-worker-process snapshots into one fleet snapshot.

        Associative, same contract as
        :meth:`~repro.obs.profiler.ProfileStore.merge`:

        * lifecycle counters and reuse attribution add;
        * the QPS window is ``min(first_activity)`` to
          ``max(last_completed)`` across processes — each query is
          counted once over one shared wall-clock window, so merging N
          snapshots of the same interval does **not** report N× QPS;
        * latency histograms merge bucket-wise with quantiles
          re-estimated from the merged counts
          (:meth:`HistogramSnapshot.merge`);
        * per-client rows with the same ``client_id`` merge the same
          way (a client's queries may have run on several workers);
        * ``num_views`` / ``view_storage_bytes`` add (shards are
          disjoint across workers); ``hit_percentage`` is a
          completed-query-weighted estimate — callers holding the
          per-worker :class:`~repro.metrics.MetricsCollector` objects
          should recompute the exact figure via
          :func:`merged_metrics` and report that instead;
        * ``queue_depth`` adds; ``peak_queue_depth`` adds too, an
          upper bound on the true fleet peak (per-process peaks need
          not coincide in time).
        """
        if not snapshots:
            return cls(uptime=0.0, workers=0, submitted=0, completed=0,
                       failed=0, rejected=0, timed_out=0, cancelled=0,
                       queue_depth=0, peak_queue_depth=0,
                       aggregate_qps=0.0, hit_percentage=0.0,
                       num_views=0, view_storage_bytes=0)
        first = None
        last = None
        for s in snapshots:
            if s.first_activity is not None and (
                    first is None or s.first_activity < first):
                first = s.first_activity
            if s.last_completed is not None and (
                    last is None or s.last_completed > last):
                last = s.last_completed
        by_client: dict[str, list[ClientStatsSnapshot]] = defaultdict(list)
        for s in snapshots:
            for c in s.clients:
                by_client[c.client_id].append(c)
        clients = tuple(ClientStatsSnapshot.merge(by_client[client_id])
                        for client_id in sorted(by_client))
        cross: dict[tuple[str, str], int] = defaultdict(int)
        for s in snapshots:
            for pair, n in s.cross_client_hits.items():
                cross[pair] += n
        admission = HistogramSnapshot.merge(
            [s.admission_histogram for s in snapshots])
        lock_classes = sorted({name for s in snapshots
                               for name in s.lock_waits})
        lock_waits = {}
        lock_histograms = {}
        for name in lock_classes:
            parts = [s.lock_waits[name] for s in snapshots
                     if name in s.lock_waits]
            histogram = HistogramSnapshot.merge(
                [s.lock_wait_histograms.get(name) for s in snapshots])
            lock_histograms[name] = histogram
            lock_waits[name] = {
                "read_s": round(sum(p["read_s"] for p in parts), 9),
                "write_s": round(sum(p["write_s"] for p in parts), 9),
                "waits": sum(p["waits"] for p in parts),
                "writers_waiting_high_water": max(
                    p["writers_waiting_high_water"] for p in parts),
                "wait": histogram.to_dict(),
            }
        completed = sum(s.completed for s in snapshots)
        weighted = sum(s.hit_percentage * s.completed for s in snapshots)
        return cls(
            uptime=max(s.uptime for s in snapshots),
            workers=sum(s.workers for s in snapshots),
            submitted=sum(s.submitted for s in snapshots),
            completed=completed,
            failed=sum(s.failed for s in snapshots),
            rejected=sum(s.rejected for s in snapshots),
            timed_out=sum(s.timed_out for s in snapshots),
            cancelled=sum(s.cancelled for s in snapshots),
            queue_depth=sum(s.queue_depth for s in snapshots),
            peak_queue_depth=sum(s.peak_queue_depth for s in snapshots),
            aggregate_qps=_window_qps(completed, first, last),
            hit_percentage=(weighted / completed) if completed else 0.0,
            num_views=sum(s.num_views for s in snapshots),
            view_storage_bytes=sum(s.view_storage_bytes
                                   for s in snapshots),
            clients=clients,
            cross_client_hits=dict(cross),
            admission_wait=admission.to_dict(),
            lock_waits=lock_waits,
            first_activity=first,
            last_completed=last,
            admission_histogram=admission,
            lock_wait_histograms=lock_histograms,
        )

    @property
    def cross_client_hit_count(self) -> int:
        """Hits where the prober and the owner are different clients."""
        return sum(n for (prober, owner), n in self.cross_client_hits.items()
                   if prober != owner and owner != UNKNOWN_OWNER)

    def format(self) -> str:
        """A human-readable multi-line report (used by the CLI)."""
        from repro.vbench.reporting import format_table

        lines = [
            f"uptime {self.uptime:.2f}s, workers {self.workers}, "
            f"queue {self.queue_depth} (peak {self.peak_queue_depth})",
            f"queries: {self.completed} ok / {self.failed} failed / "
            f"{self.rejected} rejected / {self.timed_out} timed out / "
            f"{self.cancelled} cancelled "
            f"({self.aggregate_qps:.1f} qps aggregate)",
            f"reuse: {self.hit_percentage:.1f}% hit rate, "
            f"{self.cross_client_hit_count} cross-client hits, "
            f"{self.num_views} views "
            f"({self.view_storage_bytes / 1024:.0f} KiB)",
        ]
        if self.admission_wait.get("count"):
            lines.append(
                f"admission wait: p50 "
                f"{self.admission_wait['p50_s'] * 1000:.2f}ms, p99 "
                f"{self.admission_wait['p99_s'] * 1000:.2f}ms over "
                f"{self.admission_wait['count']} queries")
        if self.clients:
            rows = [[c.client_id, c.submitted, c.completed, c.rejected,
                     c.keys_materialized, c.hits_received,
                     c.hits_from_others, c.hits_donated,
                     f"{c.qps:.1f}"]
                    for c in self.clients]
            lines.append(format_table(
                ["client", "sub", "ok", "rej", "keys", "hits",
                 "from others", "donated", "qps"], rows,
                title="per-client"))
        return "\n".join(lines)


class _ClientCounters:
    __slots__ = ("submitted", "completed", "failed", "rejected",
                 "timed_out", "cancelled", "keys_materialized",
                 "hits_received", "hits_from_others", "hits_donated",
                 "first_activity", "last_completed")

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.timed_out = 0
        self.cancelled = 0
        self.keys_materialized = 0
        self.hits_received = 0
        self.hits_from_others = 0
        self.hits_donated = 0
        #: First submission / latest completion (``time.monotonic``);
        #: the QPS window — see :func:`_window_qps`.
        self.first_activity: float | None = None
        self.last_completed: float | None = None


class _LockClassWaits:
    """Aggregated contention for one lock class."""

    __slots__ = ("read_seconds", "write_seconds", "waits",
                 "writers_waiting_high_water", "histogram")

    def __init__(self) -> None:
        self.read_seconds = 0.0
        self.write_seconds = 0.0
        self.waits = 0
        self.writers_waiting_high_water = 0
        self.histogram = LatencyHistogram(WAIT_BUCKETS)

    def to_dict(self) -> dict:
        return {
            "read_s": round(self.read_seconds, 9),
            "write_s": round(self.write_seconds, 9),
            "waits": self.waits,
            "writers_waiting_high_water": self.writers_waiting_high_water,
            "wait": self.histogram.snapshot().to_dict(),
        }


class ServerStats:
    """Thread-safe counter hub the server and the shared state report to."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._clients: dict[str, _ClientCounters] = {}
        self._queue_depth = 0
        self._peak_queue_depth = 0
        self._cross_hits: dict[tuple[str, str], int] = defaultdict(int)
        self._admission_wait = LatencyHistogram(WAIT_BUCKETS)
        self._lock_waits: dict[str, _LockClassWaits] = {}

    def _client(self, client_id: str) -> _ClientCounters:
        counters = self._clients.get(client_id)
        if counters is None:
            counters = _ClientCounters()
            self._clients[client_id] = counters
        return counters

    # -- lifecycle events ------------------------------------------------------

    def record_submitted(self, client_id: str) -> None:
        with self._lock:
            counters = self._client(client_id)
            counters.submitted += 1
            if counters.first_activity is None:
                counters.first_activity = time.monotonic()

    def record_completed(self, client_id: str) -> None:
        with self._lock:
            counters = self._client(client_id)
            counters.completed += 1
            counters.last_completed = time.monotonic()

    def record_failed(self, client_id: str) -> None:
        with self._lock:
            self._client(client_id).failed += 1

    def record_rejected(self, client_id: str) -> None:
        with self._lock:
            self._client(client_id).rejected += 1

    def record_timeout(self, client_id: str) -> None:
        with self._lock:
            self._client(client_id).timed_out += 1

    def record_cancelled(self, client_id: str) -> None:
        with self._lock:
            self._client(client_id).cancelled += 1

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._peak_queue_depth = max(self._peak_queue_depth, depth)

    # -- wait-time accounting --------------------------------------------------

    def record_admission_wait(self, seconds: float) -> None:
        """Submit-to-worker-start gap of one admitted query."""
        self._admission_wait.observe(seconds)

    def record_lock_wait(self, lock_class: str, kind: str,
                         seconds: float, *,
                         writers_waiting_high_water: int = 0) -> None:
        """One blocked RW-lock acquisition (``kind`` read|write)."""
        with self._lock:
            waits = self._lock_waits.get(lock_class)
            if waits is None:
                waits = _LockClassWaits()
                self._lock_waits[lock_class] = waits
            if kind == "read":
                waits.read_seconds += seconds
            else:
                waits.write_seconds += seconds
            waits.waits += 1
            if writers_waiting_high_water > waits.writers_waiting_high_water:
                waits.writers_waiting_high_water = \
                    writers_waiting_high_water
        waits.histogram.observe(seconds)

    # -- reuse attribution -----------------------------------------------------

    def record_materialization(self, client_id: str, keys: int = 1) -> None:
        with self._lock:
            self._client(client_id).keys_materialized += keys

    def record_view_hit(self, view_name: str, prober: str,
                        owner: str | None) -> None:
        owner = owner if owner is not None else UNKNOWN_OWNER
        with self._lock:
            self._cross_hits[(prober, owner)] += 1
            counters = self._client(prober)
            counters.hits_received += 1
            if owner != prober:
                if owner != UNKNOWN_OWNER:
                    self._client(owner).hits_donated += 1
                counters.hits_from_others += 1

    # -- snapshots -------------------------------------------------------------

    def snapshot(self, *, workers: int = 0, hit_percentage: float = 0.0,
                 num_views: int = 0, view_storage_bytes: int = 0
                 ) -> ServerStatsSnapshot:
        with self._lock:
            uptime = max(1e-9, time.monotonic() - self._started)
            clients = []
            for client_id in sorted(self._clients):
                c = self._clients[client_id]
                clients.append(ClientStatsSnapshot(
                    client_id=client_id,
                    submitted=c.submitted,
                    completed=c.completed,
                    failed=c.failed,
                    rejected=c.rejected,
                    timed_out=c.timed_out,
                    cancelled=c.cancelled,
                    keys_materialized=c.keys_materialized,
                    hits_received=c.hits_received,
                    hits_from_others=c.hits_from_others,
                    hits_donated=c.hits_donated,
                    qps=_window_qps(c.completed, c.first_activity,
                                    c.last_completed),
                    first_activity=c.first_activity,
                    last_completed=c.last_completed,
                ))
            total = _ClientCounters()
            for c in self._clients.values():
                total.submitted += c.submitted
                total.completed += c.completed
                total.failed += c.failed
                total.rejected += c.rejected
                total.timed_out += c.timed_out
                total.cancelled += c.cancelled
                if c.first_activity is not None and (
                        total.first_activity is None
                        or c.first_activity < total.first_activity):
                    total.first_activity = c.first_activity
                if c.last_completed is not None and (
                        total.last_completed is None
                        or c.last_completed > total.last_completed):
                    total.last_completed = c.last_completed
            admission = self._admission_wait.snapshot()
            lock_histograms = {name: waits.histogram.snapshot()
                               for name, waits
                               in sorted(self._lock_waits.items())}
            return ServerStatsSnapshot(
                uptime=uptime,
                workers=workers,
                submitted=total.submitted,
                completed=total.completed,
                failed=total.failed,
                rejected=total.rejected,
                timed_out=total.timed_out,
                cancelled=total.cancelled,
                queue_depth=self._queue_depth,
                peak_queue_depth=self._peak_queue_depth,
                aggregate_qps=_window_qps(total.completed,
                                          total.first_activity,
                                          total.last_completed),
                hit_percentage=hit_percentage,
                num_views=num_views,
                view_storage_bytes=view_storage_bytes,
                clients=tuple(clients),
                cross_client_hits=dict(self._cross_hits),
                admission_wait=admission.to_dict(),
                lock_waits={name: waits.to_dict()
                            for name, waits
                            in sorted(self._lock_waits.items())},
                first_activity=total.first_activity,
                last_completed=total.last_completed,
                admission_histogram=admission,
                lock_wait_histograms=lock_histograms,
            )


def merged_metrics(collectors) -> MetricsCollector:
    """Fold per-client collectors into one aggregate collector.

    The result supports the standard workload summaries
    (``hit_percentage``, ``speedup_upper_bound``, per-UDF stats) over
    the union of every client's invocations — "what did the whole server
    do", in the same shape single-session tooling already consumes.
    """
    merged = MetricsCollector()
    for collector in collectors:
        for name, stats in collector.udf_stats.items():
            target = merged.stats_for(name, stats.per_tuple_cost)
            target.total_invocations += stats.total_invocations
            target.reused_invocations += stats.reused_invocations
            target._distinct_keys.update(stats._distinct_keys)
        merged.query_metrics.extend(collector.query_metrics)
        for counter, value in collector.counters.items():
            merged.counters[counter] += value
    return merged
