"""Cross-client inference micro-batching (continuous batching).

The server-side complement of the morsel executor: where
:mod:`repro.executor.parallel` splits one query into concurrent
sub-batches, the :class:`InferenceBatcher` *merges* miss sub-batches
from concurrent clients that target the same physical model into a
single ``predict_batch`` call.  In the paper's inference-dominated
regime every model call carries real serving latency (a GPU round-trip
— here simulated by
:meth:`~repro.models.base.VisionModel.simulate_service_latency`); one
coalesced call amortizes the per-call component across every rider.

Design — leader/follower continuous batching, one queue per
``(model.name, video.name)`` pair:

* a thread arriving at an idle queue becomes the **leader**: it holds a
  coalescing window open (``micro_batch_timeout_ms``) while follower
  requests pile on, closing early the moment the pending tuple count
  reaches ``micro_batch_max_size``;
* the leader then drains the queue and dispatches request-granular
  chunks of at most ``micro_batch_max_size`` tuples — one
  ``predict_batch`` per chunk, one shared service round-trip — and
  de-interleaves the concatenated outputs back onto each request, in
  each request's own input order;
* **followers** just block on their request's event; their wall time is
  the leader's dispatch, which is the amortization being measured.

The batcher never touches virtual clocks.  Operators pre-charge
``len(inputs) * per_tuple_cost`` to *their own* session clock before
calling :meth:`~repro.executor.context.ExecutionContext.invoke_model`,
so per-client virtual totals are identical with and without batching —
coalescing changes real seconds only.  Result equivalence holds because
``predict_batch`` is deterministic per input and order-preserving:
slicing the concatenated batch back apart returns exactly what each
client's solo call would have.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.flight import current_flight, record_batcher_wait

__all__ = ["InferenceBatcher", "BatcherSnapshot"]


@dataclass(frozen=True)
class BatcherSnapshot:
    """Point-in-time statistics of one :class:`InferenceBatcher`.

    ``dispatches`` counts physical ``predict_batch`` calls;
    ``coalesced_dispatches`` the subset that carried more than one
    client request (the micro-batching win); ``requests`` / ``tuples``
    the logical demand.  ``mean_batch_tuples > tuples/requests`` — i.e.
    ``mean_batch_requests > 1`` — is the acceptance signal that
    coalescing actually happened.
    """

    requests: int
    tuples: int
    dispatches: int
    coalesced_dispatches: int
    max_batch_tuples: int
    max_batch_requests: int
    queue_depth: int
    #: Requests that arrived from *another process* over the pool's
    #: shard protocol (:meth:`InferenceBatcher.submit_remote`).  A
    #: positive count alongside ``coalesced_dispatches`` is the
    #: observable proof that miss coalescing spans processes.
    remote_requests: int = 0

    @property
    def mean_batch_tuples(self) -> float:
        return self.tuples / self.dispatches if self.dispatches else 0.0

    @property
    def mean_batch_requests(self) -> float:
        return self.requests / self.dispatches if self.dispatches else 0.0

    @classmethod
    def merge(cls, snapshots: "list[BatcherSnapshot]"
              ) -> "BatcherSnapshot":
        """Fleet rollup of per-process batcher snapshots (associative).

        Counters add and maxima fold.  Under the worker pool each
        ``(model, video)`` pair is owned by exactly one dispatcher
        process, so the per-process figures count disjoint physical
        dispatches and the sums are exact, not estimates.
        """
        snapshots = [s for s in snapshots if s is not None]
        if not snapshots:
            return cls(requests=0, tuples=0, dispatches=0,
                       coalesced_dispatches=0, max_batch_tuples=0,
                       max_batch_requests=0, queue_depth=0)
        return cls(
            requests=sum(s.requests for s in snapshots),
            tuples=sum(s.tuples for s in snapshots),
            dispatches=sum(s.dispatches for s in snapshots),
            coalesced_dispatches=sum(s.coalesced_dispatches
                                     for s in snapshots),
            max_batch_tuples=max(s.max_batch_tuples for s in snapshots),
            max_batch_requests=max(s.max_batch_requests
                                   for s in snapshots),
            queue_depth=sum(s.queue_depth for s in snapshots),
            remote_requests=sum(s.remote_requests for s in snapshots),
        )


class _Request:
    """One client's miss sub-batch, parked until its chunk dispatches."""

    __slots__ = ("inputs", "outputs", "error", "done", "window_requests")

    def __init__(self, inputs: list):
        self.inputs = inputs
        self.outputs: list | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        #: How many requests rode the physical dispatch that served this
        #: one (set by the leader; window-occupancy telemetry).
        self.window_requests = 0


@dataclass
class _ModelQueue:
    """Pending requests for one ``(model, video)`` pair."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    cond: threading.Condition = None  # type: ignore[assignment]
    pending: list[_Request] = field(default_factory=list)
    #: True while some thread is holding the coalescing window open.
    leader_active: bool = False

    def __post_init__(self) -> None:
        self.cond = threading.Condition(self.lock)


class InferenceBatcher:
    """Coalesces concurrent clients' model calls into shared dispatches.

    Duck-types the ``inference`` seam of
    :class:`~repro.executor.context.ExecutionContext`: operators call
    :meth:`submit` (via ``context.invoke_model``) instead of invoking
    ``model.predict_batch`` directly.

    Args:
        max_batch_size: tuple budget per physical dispatch; a window
            closes early once the pending tuple count reaches it.
            ``1`` degenerates to per-request dispatch (still counted).
        timeout_ms: how long a leader holds the coalescing window open
            waiting for riders.  ``0`` dispatches immediately — only
            requests that were already queued coalesce.
    """

    def __init__(self, max_batch_size: int = 256,
                 timeout_ms: float = 2.0):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if timeout_ms < 0:
            raise ValueError("timeout_ms must be non-negative")
        self.max_batch_size = max_batch_size
        self.timeout_ms = timeout_ms
        self._registry_lock = threading.Lock()
        self._queues: dict[tuple[str, str], _ModelQueue] = {}
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._tuples = 0
        self._dispatches = 0
        self._coalesced_dispatches = 0
        self._max_batch_tuples = 0
        self._max_batch_requests = 0
        self._remote_requests = 0

    # -- the seam the executor calls ------------------------------------------

    def submit(self, model, video, inputs: Sequence) -> list:
        """Evaluate ``model`` over ``inputs``, possibly ride-sharing.

        Blocks until this request's outputs are ready; returns them in
        ``inputs`` order.  Never charges any virtual clock.
        """
        inputs = list(inputs)
        if not inputs:
            return []
        flight = current_flight()
        started = time.perf_counter() if flight is not None else 0.0
        queue = self._queue_for((model.name, video.name))
        request = _Request(inputs)
        with queue.lock:
            queue.pending.append(request)
            if queue.leader_active:
                # Follower: wake the leader in case this request filled
                # the window, then park on the event below.
                queue.cond.notify_all()
                is_leader = False
            else:
                queue.leader_active = True
                is_leader = True
        if is_leader:
            self._lead(queue, model, video)
        request.done.wait()
        if flight is not None:
            record_batcher_wait("leader" if is_leader else "follower",
                                time.perf_counter() - started,
                                request.window_requests)
        if request.error is not None:
            raise request.error
        assert request.outputs is not None
        return request.outputs

    def submit_remote(self, model, video, inputs: Sequence
                      ) -> tuple[list, int]:
        """:meth:`submit` for requests proxied from another process.

        Called by the pool's shard service thread on the dispatcher
        process that owns ``(model, video)``; the requesting worker
        blocks on the RPC instead of on the event.  Returns
        ``(outputs, window_requests)`` so the requester can record its
        own flight-record batcher wait with the true window occupancy
        (the thread-local flight context lives in the *requesting*
        process, not here).
        """
        inputs = list(inputs)
        if not inputs:
            return [], 0
        queue = self._queue_for((model.name, video.name))
        request = _Request(inputs)
        with queue.lock:
            queue.pending.append(request)
            if queue.leader_active:
                queue.cond.notify_all()
                is_leader = False
            else:
                queue.leader_active = True
                is_leader = True
        if is_leader:
            self._lead(queue, model, video)
        request.done.wait()
        with self._stats_lock:
            self._remote_requests += 1
        if request.error is not None:
            raise request.error
        assert request.outputs is not None
        return request.outputs, request.window_requests

    # -- leader protocol -------------------------------------------------------

    def _lead(self, queue: _ModelQueue, model, video) -> None:
        """Hold the coalescing window, then drain and dispatch."""
        deadline = time.monotonic() + self.timeout_ms / 1000.0
        with queue.lock:
            while True:
                total = sum(len(r.inputs) for r in queue.pending)
                if total >= self.max_batch_size:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                queue.cond.wait(remaining)
            batch = list(queue.pending)
            queue.pending.clear()
            queue.leader_active = False
        for chunk in self._chunks(batch):
            self._dispatch(model, video, chunk)

    def _chunks(self, batch: list[_Request]) -> list[list[_Request]]:
        """Request-granular chunks of <= ``max_batch_size`` tuples.

        A single oversized request still dispatches whole — requests
        are never split, so each client's outputs stay one contiguous
        slice of one physical call.
        """
        chunks: list[list[_Request]] = []
        current: list[_Request] = []
        current_tuples = 0
        for request in batch:
            if current and (current_tuples + len(request.inputs)
                            > self.max_batch_size):
                chunks.append(current)
                current, current_tuples = [], 0
            current.append(request)
            current_tuples += len(request.inputs)
        if current:
            chunks.append(current)
        return chunks

    def _dispatch(self, model, video, chunk: list[_Request]) -> None:
        """One physical ``predict_batch`` over a chunk's concatenation."""
        merged: list = []
        for request in chunk:
            merged.extend(request.inputs)
        try:
            outputs = model.predict_batch(video, merged)
            simulate = getattr(model, "simulate_service_latency", None)
            if simulate is not None:
                # One shared round-trip for the whole coalesced call:
                # this is the per-call latency amortization.
                simulate(len(merged))
            if len(outputs) != len(merged):
                raise RuntimeError(
                    f"{model.name}.predict_batch returned {len(outputs)} "
                    f"outputs for {len(merged)} inputs")
        except BaseException as error:  # noqa: BLE001 - propagate per request
            for request in chunk:
                request.error = error
                request.done.set()
            return
        offset = 0
        for request in chunk:
            request.window_requests = len(chunk)
            request.outputs = outputs[offset:offset + len(request.inputs)]
            offset += len(request.inputs)
        self._record(chunk, len(merged))
        for request in chunk:
            request.done.set()

    # -- bookkeeping -----------------------------------------------------------

    def _queue_for(self, key: tuple[str, str]) -> _ModelQueue:
        with self._registry_lock:
            queue = self._queues.get(key)
            if queue is None:
                queue = _ModelQueue()
                self._queues[key] = queue
            return queue

    def _record(self, chunk: list[_Request], tuples: int) -> None:
        with self._stats_lock:
            self._requests += len(chunk)
            self._tuples += tuples
            self._dispatches += 1
            if len(chunk) > 1:
                self._coalesced_dispatches += 1
            self._max_batch_tuples = max(self._max_batch_tuples, tuples)
            self._max_batch_requests = max(self._max_batch_requests,
                                           len(chunk))

    def snapshot(self) -> BatcherSnapshot:
        with self._registry_lock:
            depth = sum(len(q.pending) for q in self._queues.values())
        with self._stats_lock:
            return BatcherSnapshot(
                requests=self._requests,
                tuples=self._tuples,
                dispatches=self._dispatches,
                coalesced_dispatches=self._coalesced_dispatches,
                max_batch_tuples=self._max_batch_tuples,
                max_batch_requests=self._max_batch_requests,
                queue_depth=depth,
                remote_requests=self._remote_requests,
            )
