"""Consistent-hash sharding of the reuse state across worker processes.

The worker pool (:mod:`repro.server.pool`) runs N spawned processes,
each owning a subset of *shards*.  A shard is the unit of placement for
everything keyed by ``(model, video)``:

* the **materialized view** ``mv::<model>@<video>[@...]`` and its
  durable partition directory (``<store_path>/shard-<k>``), so WAL
  replay and tiering stay per-shard and restart parallelism scales with
  worker count;
* the **UDF history** (aggregated predicate ``p_u``) of the matching
  signature — the view and the predicate that describes it must never
  be owned by different processes, so both route through the *same*
  canonical key (:func:`shard_key_for_view` strips the ``mv::`` prefix,
  :meth:`UdfSignature.key` is the key);
* the **inference dispatch** for the pair — one process owns each
  ``(model, video)`` queue, so concurrent miss sub-batches from
  *different* worker processes coalesce into single ``predict_batch``
  calls exactly as threads coalesce inside one process.

Keys map to shards on a hash ring with virtual nodes
(:class:`HashRing`); hashing is SHA-1-based (:func:`stable_hash`) so
placement survives ``PYTHONHASHSEED`` randomization and process
restarts.  Shards map to workers modularly (``shard % workers``) —
with ``shards >= workers`` every worker owns at least one shard and
ownership is trivially recomputable after a respawn.

Cross-process access goes over a lightweight message protocol
(:func:`encode_error` / :func:`decode_error`, :class:`ShardClient`)
speaking pickled tuples on ``multiprocessing.connection`` sockets:
requests are ``(method, args)``; replies are ``("ok", payload)`` or
``("err", class_name, message, extra)``.  The remote proxies
(:class:`RemoteViewHandle`, :class:`ShardedUdfManager`,
:class:`ShardedInference`) preserve the single-process semantics
*exactly*:

* every view probe executes on the owner through
  ``for_client(prober)``, so hit attribution (prober, owner) and lock
  accounting are identical to the single-process server — remote rows
  are never cached on the prober (a cache would swallow the owner-side
  hit record);
* lineage hooks fire on the *prober* (the query's thread-local
  :class:`~repro.obs.lineage.QueryLineage` lives there), mirroring
  what :class:`~repro.storage.view_store.MaterializedView` does
  locally;
* virtual clocks are untouched: operators charge their own clocks
  before calling any of this, so sharding changes real seconds only.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import threading
import time
from dataclasses import replace
from multiprocessing.connection import Client as _ConnClient
from typing import Hashable, Iterable, Mapping, Sequence

import repro.errors as _errors
from repro.config import EvaConfig
from repro.errors import ServerError, WorkerCrashedError
from repro.obs.flight import current_flight, record_batcher_wait
from repro.obs.lineage import (
    record_view_create,
    record_view_probe,
    record_view_probe_many,
    record_view_write,
)
from repro.optimizer.udf_manager import UdfHistory, UdfSignature
from repro.server.state import (
    LockedUdfManager,
    SharedReuseState,
    SharedViewStore,
)
from repro.storage.view_store import Key

#: Materialized-view name prefix (see ``UdfHistory.view_name``).
VIEW_PREFIX = "mv::"

#: Virtual nodes per shard on the hash ring.  32 points per shard keeps
#: the key imbalance across shards under ~20% while the ring stays tiny
#: (shards * 32 sorted ints).
RING_REPLICAS = 32


def stable_hash(text: str) -> int:
    """A process- and run-stable 64-bit hash of ``text``.

    ``hash()`` is salted by ``PYTHONHASHSEED``; routing with it would
    scatter a view's keys across different shards on every run and
    orphan durable partitions.  SHA-1 is stable everywhere.
    """
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_key_for_view(view_name: str) -> str:
    """Canonical routing key of a view name.

    Strips the ``mv::`` prefix so a view routes with the *signature*
    key it was derived from — ``mv::<sig>`` and ``<sig>`` must land on
    the same shard or the view and its aggregated predicate would live
    in different processes.
    """
    if view_name.startswith(VIEW_PREFIX):
        return view_name[len(VIEW_PREFIX):]
    return view_name


def inference_key(model_name: str, video_name: str) -> str:
    """Canonical routing key of one ``(model, video)`` dispatch queue.

    Matches the detector view key (``<model>@<video>``), so a detector's
    inference owner is also its view owner; classifier views carry the
    upstream detector in their key and may route elsewhere — ownership
    only needs to be *unique*, not colocated, for coalescing to work.
    """
    return f"{model_name.lower()}@{video_name}"


class HashRing:
    """Consistent-hash ring: key -> shard, with virtual nodes."""

    def __init__(self, num_shards: int, replicas: int = RING_REPLICAS):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append((stable_hash(f"shard-{shard}#{replica}"),
                               shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def shard_of(self, key: str) -> int:
        """The first virtual node clockwise of ``key``'s hash."""
        index = bisect.bisect(self._hashes, stable_hash(key))
        if index == len(self._hashes):
            index = 0
        return self._shards[index]


class ShardRouter:
    """Key -> shard -> worker placement, identical in every process."""

    def __init__(self, num_shards: int, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if num_shards < num_workers:
            raise ValueError("num_shards must be >= num_workers")
        self.num_shards = num_shards
        self.num_workers = num_workers
        self._ring = HashRing(num_shards)

    def shard_of(self, key: str) -> int:
        return self._ring.shard_of(key)

    def worker_of_shard(self, shard: int) -> int:
        # Modular placement (not a second ring): with shards >= workers
        # it guarantees every worker owns >= 1 shard, stays balanced,
        # and is recomputable with no state after a worker respawn.
        return shard % self.num_workers

    def worker_of(self, key: str) -> int:
        return self.worker_of_shard(self.shard_of(key))

    def shards_owned_by(self, worker: int) -> list[int]:
        return [s for s in range(self.num_shards)
                if self.worker_of_shard(s) == worker]


# -- message protocol ----------------------------------------------------------


def encode_error(error: BaseException) -> tuple:
    """``("err", class_name, message, extra)`` for one raised error.

    Exceptions are encoded structurally rather than pickled: custom
    ``__init__`` signatures (``ServerOverloadedError.retry_after``,
    ``ParserError.position``) do not round-trip through the default
    exception reduce, and silently losing ``retry_after`` would break
    every client back-off loop.
    """
    extra: dict = {}
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        extra["retry_after"] = retry_after
    position = getattr(error, "position", None)
    if position is not None:
        extra["position"] = position
    return ("err", type(error).__name__, str(error), extra)


def decode_error(class_name: str, message: str,
                 extra: dict) -> BaseException:
    """Rebuild the closest local exception for a remote ``err`` reply."""
    cls = getattr(_errors, class_name, None)
    if cls is None or not (isinstance(cls, type)
                           and issubclass(cls, BaseException)):
        return ServerError(f"{class_name}: {message}")
    if issubclass(cls, _errors.ServerOverloadedError):
        return cls(message, retry_after=extra.get("retry_after", 0.1))
    if issubclass(cls, _errors.ParserError):
        return cls(message, position=extra.get("position"))
    return cls(message)


class ShardClient:
    """Thread-safe RPC stub to one peer worker's listener.

    Connections are *per calling thread* (``threading.local``): a
    remote inference dispatch can hold its connection for a full
    service round-trip, and serializing every cross-process call of a
    worker behind one socket would erase the pool's concurrency.  The
    peer's accept loop starts one service thread per connection, so
    per-thread connections cost one descriptor each and nothing more.
    """

    def __init__(self, address, authkey: bytes):
        self.address = address
        self._authkey = authkey
        self._local = threading.local()
        self._closed = False

    def _connection(self):
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = _ConnClient(self.address, authkey=self._authkey)
            conn.send(("peer",))
            self._local.conn = conn
        return conn

    def call(self, method: str, *args):
        if self._closed:
            raise WorkerCrashedError(
                f"peer at {self.address!r} is gone (worker respawned "
                f"or pool shutting down)")
        try:
            conn = self._connection()
            conn.send((method, args))
            reply = conn.recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            self._drop_connection()
            raise WorkerCrashedError(
                f"peer at {self.address!r} died mid-call "
                f"({method}): {error}") from error
        if reply[0] == "ok":
            return reply[1]
        raise decode_error(reply[1], reply[2], reply[3])

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._closed = True
        self._drop_connection()


class PeerTable:
    """worker id -> :class:`ShardClient`, swappable on respawn.

    The parent rebroadcasts the full address map whenever a worker is
    respawned; :meth:`update` swaps in fresh clients and closes the
    stale ones, so threads retrying after a
    :class:`~repro.errors.WorkerCrashedError` transparently reach the
    replacement process.
    """

    def __init__(self, self_id: int):
        self.self_id = self_id
        self._lock = threading.Lock()
        self._clients: dict[int, ShardClient] = {}

    def update(self, addresses: dict, authkey: bytes) -> None:
        with self._lock:
            stale = []
            for worker_id, address in addresses.items():
                if worker_id == self.self_id:
                    continue
                current = self._clients.get(worker_id)
                if current is not None and current.address == address:
                    continue
                if current is not None:
                    stale.append(current)
                self._clients[worker_id] = ShardClient(address, authkey)
            for client in stale:
                client.close()

    def client(self, worker_id: int) -> ShardClient:
        with self._lock:
            client = self._clients.get(worker_id)
        if client is None:
            raise WorkerCrashedError(
                f"no live connection to worker {worker_id} "
                f"(respawn in progress)")
        return client

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()


# -- remote view proxies -------------------------------------------------------


class RemoteViewHandle:
    """Duck-types :class:`~repro.server.state.ClientViewHandle` for a
    view owned by another worker process.

    Every data operation is one RPC executed on the owner through the
    owner's ``for_client(<prober>)`` facade, so lock accounting, hit
    attribution, and materialization ownership are recorded exactly as
    if the prober ran in the owner's process.  Rows are **never**
    cached here — each probe must reach the owner or the owner's stats
    would undercount hits relative to the single-process server.

    Lineage hooks fire locally (the prober's thread-local query
    lineage), mirroring the calls ``MaterializedView`` makes; the
    owner-side execution runs in a service thread with no lineage
    context, so nothing double-counts.
    """

    __slots__ = ("_peer", "_name", "_client_id", "_key_columns",
                 "_output_columns", "_runtime_cache")

    def __init__(self, peer: ShardClient, name: str, client_id: str,
                 key_columns: list[str], output_columns: list[str],
                 runtime_cache: dict):
        self._peer = peer
        self._name = name
        self._client_id = client_id
        self._key_columns = key_columns
        self._output_columns = output_columns
        self._runtime_cache = runtime_cache

    @property
    def name(self) -> str:
        return self._name

    @property
    def key_columns(self) -> list[str]:
        return self._key_columns

    @property
    def output_columns(self) -> list[str]:
        return self._output_columns

    @property
    def runtime_cache(self) -> dict:
        # Per-process decoded-hit scratch space.  Entries are pure
        # functions of immutable view rows, so a process-local cache
        # can only hold values identical to the owner's; it affects
        # real seconds, never rows or virtual clocks.
        return self._runtime_cache

    @property
    def num_keys(self) -> int:
        return self._peer.call("view_counts", self._name)[0]

    @property
    def num_output_rows(self) -> int:
        return self._peer.call("view_counts", self._name)[1]

    def __contains__(self, key: Key) -> bool:
        return self._peer.call("view_contains_key", self._name, key)

    def get(self, key: Key) -> tuple[dict, ...] | None:
        rows = self._peer.call("view_get", self._name, self._client_id,
                               key)
        record_view_probe(self._name, rows)
        return rows

    def get_many(self, keys: list[Key]) -> list[tuple[dict, ...] | None]:
        found = self._peer.call("view_get_many", self._name,
                                self._client_id, list(keys))
        record_view_probe_many(self._name, found)
        return found

    def keys(self) -> list[Key]:
        return self._peer.call("view_keys", self._name)

    def keys_with_prefix(self, first_component: Hashable) -> list[Key]:
        return self._peer.call("view_keys_with_prefix", self._name,
                               first_component)

    def serialize(self) -> bytes:
        return self._peer.call("view_serialize", self._name)

    def serialized_bytes(self) -> int:
        return len(self.serialize())

    def put(self, key: Key, rows: Iterable[Mapping]) -> bool:
        rows = [dict(r) for r in rows]
        inserted = self._peer.call("view_put", self._name,
                                   self._client_id, key, rows)
        if inserted:
            record_view_write(self._name, ((key, tuple(rows)),))
        return inserted

    def put_many(self, items: Iterable[tuple[Key, Iterable[Mapping]]]
                 ) -> list[bool]:
        items = [(key, [dict(r) for r in rows]) for key, rows in items]
        inserted = self._peer.call("view_put_many", self._name,
                                   self._client_id, items)
        fresh = [(key, tuple(rows))
                 for (key, rows), was_new in zip(items, inserted)
                 if was_new]
        if fresh:
            record_view_write(self._name, fresh)
        return inserted


class ShardedClientViewStore:
    """One client's fleet-wide view store window (session facade).

    Duck-types :class:`~repro.server.state.ClientViewStore`: names are
    routed by shard key — locally-owned views resolve through the
    local shard's attributed facade, remote ones through
    :class:`RemoteViewHandle` RPC proxies.  Aggregates (``names``,
    ``total_serialized_bytes``) span every worker, matching what a
    single-process client would see.
    """

    def __init__(self, state: "ShardedWorkerState", client_id: str):
        self.state = state
        self.client_id = client_id

    def _local_store(self, name: str) -> SharedViewStore | None:
        shard = self.state.router.shard_of(shard_key_for_view(name))
        return self.state.shard_stores.get(shard)

    def _peer_for(self, name: str) -> ShardClient:
        worker = self.state.router.worker_of(shard_key_for_view(name))
        return self.state.peers.client(worker)

    def _remote_cache(self, name: str) -> dict:
        return self.state.remote_runtime_caches.setdefault(name, {})

    def create_or_get(self, name: str, key_columns: list[str],
                      output_columns: list[str]):
        store = self._local_store(name)
        if store is not None:
            return store.for_client(self.client_id).create_or_get(
                name, key_columns, output_columns)
        created, key_columns, output_columns = self._peer_for(name).call(
            "view_create_or_get", name, list(key_columns),
            list(output_columns))
        if created:
            record_view_create(name)
        return RemoteViewHandle(self._peer_for(name), name,
                                self.client_id, key_columns,
                                output_columns, self._remote_cache(name))

    def get(self, name: str):
        store = self._local_store(name)
        if store is not None:
            return store.for_client(self.client_id).get(name)
        meta = self._peer_for(name).call("view_meta", name)
        if meta is None:
            return None
        key_columns, output_columns = meta
        return RemoteViewHandle(self._peer_for(name), name,
                                self.client_id, key_columns,
                                output_columns, self._remote_cache(name))

    def __contains__(self, name: str) -> bool:
        store = self._local_store(name)
        if store is not None:
            return name in store
        return self._peer_for(name).call("store_contains", name)

    def names(self) -> list[str]:
        return self.state.all_view_names()

    def total_serialized_bytes(self) -> int:
        total = self.state.view_store.total_serialized_bytes()
        for worker_id in self.state.other_workers():
            total += self.state.peers.client(worker_id).call(
                "store_total_bytes")
        return total

    def view_bytes(self, names) -> dict:
        result: dict[str, int] = {}
        remote: dict[int, list[str]] = {}
        for name in names:
            store = self._local_store(name)
            if store is not None:
                result.update(store.base.view_bytes([name]))
            else:
                worker = self.state.router.worker_of(
                    shard_key_for_view(name))
                remote.setdefault(worker, []).append(name)
        for worker, group in remote.items():
            result.update(self.state.peers.client(worker).call(
                "store_view_bytes", group))
        return result

    def drop(self, name: str, *, reason: str = "drop") -> int:
        store = self._local_store(name)
        if store is not None:
            return store.drop(name, reason=reason)
        return self._peer_for(name).call("store_drop", name, reason)

    def drop_all(self) -> int:
        return sum(self.drop(name) for name in self.names())

    def save_to(self, directory) -> int:
        # Administrative export of the *local* shards only; the pool
        # front-end exports every worker for a full fleet snapshot.
        return self.state.view_store.save_to(directory)

    @property
    def is_durable(self) -> bool:
        return True

    def log_lineage(self, records) -> None:
        """Route lineage records to the shard store owning each view."""
        remote: dict[int, list] = {}
        for record in records:
            if record is None:
                continue
            name = record.get("view")
            if name is None:
                continue
            store = self._local_store(name)
            if store is not None:
                store.base.log_lineage([record])
            else:
                worker = self.state.router.worker_of(
                    shard_key_for_view(name))
                remote.setdefault(worker, []).append(record)
        for worker, group in remote.items():
            self.state.peers.client(worker).call("store_log_lineage",
                                                 group)


class ShardedViewStore:
    """Worker-level facade over this process's *owned* shard stores.

    Duck-types the :class:`~repro.server.state.SharedViewStore` surface
    the embedded :class:`~repro.server.server.EvaServer` consumes.
    Everything here is local-shards-only — the pool front-end merges
    per-worker figures into fleet totals, and summing pre-merged fleet
    numbers would double-count.
    """

    def __init__(self, state: "ShardedWorkerState"):
        self.state = state

    def attach_stats(self, stats) -> None:
        for store in self.state.shard_stores.values():
            store.attach_stats(stats)

    def for_client(self, client_id: str) -> ShardedClientViewStore:
        return ShardedClientViewStore(self.state, client_id)

    def owner_of(self, view_name: str, key: Key) -> str | None:
        store = self.state.shard_stores.get(
            self.state.router.shard_of(shard_key_for_view(view_name)))
        if store is None:
            return None
        return store.owner_of(view_name, key)

    def names(self) -> list[str]:
        names: list[str] = []
        for store in self.state.shard_stores.values():
            names.extend(store.names())
        return sorted(names)

    def __contains__(self, name: str) -> bool:
        store = self.state.shard_stores.get(
            self.state.router.shard_of(shard_key_for_view(name)))
        return store is not None and name in store

    def total_serialized_bytes(self) -> int:
        return sum(store.total_serialized_bytes()
                   for store in self.state.shard_stores.values())

    def drop(self, name: str, *, reason: str = "drop") -> int:
        store = self.state.shard_stores.get(
            self.state.router.shard_of(shard_key_for_view(name)))
        if store is None:
            return 0
        return store.drop(name, reason=reason)

    def drop_all(self) -> int:
        return sum(store.drop_all()
                   for store in self.state.shard_stores.values())

    def save_to(self, directory) -> int:
        import pathlib

        total = 0
        for shard, store in sorted(self.state.shard_stores.items()):
            total += store.save_to(
                pathlib.Path(directory) / f"shard-{shard}")
        return total

    def flush(self) -> None:
        for store in self.state.shard_stores.values():
            store.flush()

    def close(self) -> None:
        for store in self.state.shard_stores.values():
            store.close()

    def store_snapshot(self):
        """One merged health snapshot over this worker's owned shards."""
        return merge_store_snapshots(
            [store.store_snapshot()
             for _, store in sorted(self.state.shard_stores.items())],
            path=str(self.state.config.store_path))


def merge_store_snapshots(snapshots, path: str = ""):
    """Fold per-shard :class:`~repro.store.durable.StoreSnapshot`\\ s.

    Tier sizes, WAL bytes, file counts and counters add (partitions are
    disjoint directories); ``snapshot_age_seconds`` takes the *oldest*
    non-None age (the staleness bound across the fleet); recovery
    figures sum per key.  Used once per worker (owned shards) and again
    by the pool front-end (per-worker rollups), so it must be
    associative — and is, being sums and maxima.
    """
    from repro.store.durable import StoreSnapshot

    snapshots = [s for s in snapshots if s is not None]
    if not snapshots:
        return None
    counters: dict[str, int] = {}
    recovery: dict = {}
    any_recovery = False
    for snap in snapshots:
        for key, value in snap.counters.items():
            counters[key] = counters.get(key, 0) + value
        if snap.recovery:
            any_recovery = True
            for key, value in snap.recovery.items():
                if isinstance(value, (int, float)):
                    recovery[key] = recovery.get(key, 0) + value
                else:
                    recovery.setdefault(key, value)
    ages = [s.snapshot_age_seconds for s in snapshots
            if s.snapshot_age_seconds is not None]
    return StoreSnapshot(
        path=path or snapshots[0].path,
        hot_views=sum(s.hot_views for s in snapshots),
        warm_views=sum(s.warm_views for s in snapshots),
        hot_bytes=sum(s.hot_bytes for s in snapshots),
        warm_bytes=sum(s.warm_bytes for s in snapshots),
        wal_bytes=sum(s.wal_bytes for s in snapshots),
        snapshot_files=sum(s.snapshot_files for s in snapshots),
        snapshot_age_seconds=max(ages) if ages else None,
        counters=counters,
        recovery=recovery if any_recovery else None,
    )


# -- sharded UDF manager -------------------------------------------------------


class ShardedUdfManager:
    """Routes the :class:`LockedUdfManager` contract by signature shard.

    Locally-owned signatures go straight to the owning shard's locked
    manager; remote ones RPC to the owner, which executes the same
    operation under its own lock — so every predicate union is atomic
    at exactly one process, exactly as the single-process server
    serializes unions behind one mutex.  Predicates travel pickled
    (:class:`~repro.symbolic.dnf.DnfPredicate` is a frozen dataclass
    tree), and remote :class:`UdfHistory` values are detached copies —
    mutation always routes back through :meth:`record_execution`.
    """

    def __init__(self, state: "ShardedWorkerState"):
        self.state = state

    def set_listener(self, listener) -> None:
        for manager in self.state.shard_managers.values():
            manager.set_listener(listener)

    def _local(self, signature: UdfSignature) -> LockedUdfManager | None:
        return self.state.shard_managers.get(
            self.state.router.shard_of(signature.key()))

    def _peer(self, signature: UdfSignature) -> ShardClient:
        return self.state.peers.client(
            self.state.router.worker_of(signature.key()))

    @property
    def version(self) -> int:
        """Fleet-wide monotone version: the sum of every shard's.

        Any shard's predicate change bumps its own counter, so the sum
        changes iff any aggregated predicate changed anywhere — the
        exact invalidation contract plan caches rely on.  (Worker
        sessions run with the plan cache disabled, so this crosses the
        wire only for introspection and state export.)
        """
        total = sum(manager.version
                    for manager in self.state.shard_managers.values())
        for worker_id in self.state.other_workers():
            total += self.state.peers.client(worker_id).call(
                "udf_version")
        return total

    def history(self, signature: UdfSignature,
                per_tuple_cost: float = 0.0) -> UdfHistory:
        local = self._local(signature)
        if local is not None:
            return local.history(signature, per_tuple_cost)
        cost, predicate, view_name = self._peer(signature).call(
            "udf_history", signature.udf_name, signature.sources,
            per_tuple_cost)
        entry = UdfHistory(signature, cost, view_name=view_name)
        entry.aggregated_predicate = predicate
        return entry

    def known(self, signature: UdfSignature) -> bool:
        local = self._local(signature)
        if local is not None:
            return local.known(signature)
        return self._peer(signature).call(
            "udf_known", signature.udf_name, signature.sources)

    def histories(self) -> list[UdfHistory]:
        entries: list[UdfHistory] = []
        for manager in self.state.shard_managers.values():
            entries.extend(manager.histories())
        for worker_id in self.state.other_workers():
            for udf_name, sources, cost, predicate, view_name in \
                    self.state.peers.client(worker_id).call(
                        "udf_histories"):
                entry = UdfHistory(UdfSignature(udf_name, tuple(sources)),
                                   cost, view_name=view_name)
                entry.aggregated_predicate = predicate
                entries.append(entry)
        return entries

    def intersection_with_history(self, signature: UdfSignature, guard):
        local = self._local(signature)
        if local is not None:
            return local.intersection_with_history(signature, guard)
        return self._peer(signature).call(
            "udf_intersection", signature.udf_name, signature.sources,
            guard)

    def difference_with_history(self, signature: UdfSignature, guard):
        local = self._local(signature)
        if local is not None:
            return local.difference_with_history(signature, guard)
        return self._peer(signature).call(
            "udf_difference", signature.udf_name, signature.sources,
            guard)

    def record_execution(self, signature: UdfSignature, guard,
                         per_tuple_cost: float = 0.0) -> None:
        local = self._local(signature)
        if local is not None:
            local.record_execution(signature, guard, per_tuple_cost)
            return
        self._peer(signature).call(
            "udf_record", signature.udf_name, signature.sources, guard,
            per_tuple_cost)

    def reset(self) -> None:
        for manager in self.state.shard_managers.values():
            manager.reset()
        for worker_id in self.state.other_workers():
            self.state.peers.client(worker_id).call("udf_reset")


# -- sharded inference ---------------------------------------------------------


class ShardedInference:
    """The cross-process micro-batching seam.

    Duck-types the executor's ``inference.submit`` contract: each
    ``(model, video)`` pair is owned by exactly one dispatcher process;
    locally-owned pairs ride the local
    :class:`~repro.server.batcher.InferenceBatcher` window, remote
    pairs RPC to the owner's batcher via ``submit_remote`` — the
    request joins whatever coalescing window is open there, so miss
    sub-batches from different *processes* share physical
    ``predict_batch`` dispatches.  The requester records its own
    flight-record batcher wait with the window occupancy the owner
    reports back.
    """

    def __init__(self, state: "ShardedWorkerState"):
        self.state = state

    def submit(self, model, video, inputs: Sequence) -> list:
        owner = self.state.router.worker_of(
            inference_key(model.name, video.name))
        if owner == self.state.worker_id:
            return self.state.batcher.submit(model, video, inputs)
        inputs = list(inputs)
        if not inputs:
            return []
        flight = current_flight()
        started = time.perf_counter() if flight is not None else 0.0
        outputs, window_requests = self.state.peers.client(owner).call(
            "infer", model.name, video.name, inputs)
        if flight is not None:
            record_batcher_wait("follower",
                                time.perf_counter() - started,
                                window_requests)
        return outputs


# -- the per-worker state ------------------------------------------------------


class ShardedWorkerState(SharedReuseState):
    """One worker process's :class:`SharedReuseState` over owned shards.

    Overrides ``_init_reuse_state`` to open one durable partition
    directory per *owned* shard (``<store_path>/shard-<k>``) — each
    with its own :class:`SharedViewStore` (per-shard view locks) and
    :class:`LockedUdfManager` over a
    :class:`~repro.store.integration.PersistentUdfManager` — and to
    install the routing facades that make every session see the whole
    fleet.  Recovery is per-shard: a respawned worker replays only its
    own shards' WALs, in parallel with nothing (the other shards'
    owners never stopped serving).
    """

    def __init__(self, config: EvaConfig, zoo=None, *, worker_id: int,
                 peers: PeerTable | None = None):
        self.worker_id = worker_id
        self.router = ShardRouter(config.shards, config.workers)
        self.peers = peers if peers is not None else PeerTable(worker_id)
        #: Per-remote-view decoded-hit scratch dicts (see
        #: :attr:`RemoteViewHandle.runtime_cache`).
        self.remote_runtime_caches: dict[str, dict] = {}
        super().__init__(config, zoo)
        # Replace the inference seam *after* the base constructor built
        # the local batcher: sessions route every (model, video) to its
        # owning dispatcher process; the local batcher keeps serving
        # owned pairs and incoming ``infer`` RPCs.
        self.inference = ShardedInference(self)

    def _init_reuse_state(self) -> None:
        from repro.store import (PersistentUdfManager, open_view_store,
                                 restore_udf_histories)

        self.shard_stores: dict[int, SharedViewStore] = {}
        self.shard_managers: dict[int, LockedUdfManager] = {}
        self._base_stores = []
        for shard in self.router.shards_owned_by(self.worker_id):
            shard_config = replace(
                self.config,
                store_path=os.path.join(str(self.config.store_path),
                                        f"shard-{shard}"),
                workers=1)
            base_store = open_view_store(shard_config)
            base_manager = PersistentUdfManager(self.symbolic, base_store)
            restore_udf_histories(base_store, base_manager, self.symbolic)
            self.shard_stores[shard] = SharedViewStore(base_store)
            self.shard_managers[shard] = LockedUdfManager(base_manager)
            self._base_stores.append(base_store)
        if not self.shard_stores:
            raise ServerError(
                f"worker {self.worker_id} owns no shards "
                f"(shards={self.router.num_shards}, "
                f"workers={self.router.num_workers})")
        self.view_store = ShardedViewStore(self)
        self.udf_manager = ShardedUdfManager(self)

    def other_workers(self) -> list[int]:
        return [w for w in range(self.router.num_workers)
                if w != self.worker_id]

    def all_view_names(self) -> list[str]:
        names = list(self.view_store.names())
        for worker_id in self.other_workers():
            names.extend(self.peers.client(worker_id).call("store_names"))
        return sorted(names)


# -- owner-side request dispatch ----------------------------------------------


def handle_shard_request(state: ShardedWorkerState, method: str,
                         args: tuple):
    """Execute one peer RPC against this worker's owned state.

    Runs on a service thread of the owning worker; called by the pool
    worker's connection loop.  Raises whatever the underlying
    operation raises — the loop encodes it with :func:`encode_error`.
    """
    if method == "infer":
        model_name, video_name, inputs = args
        model = state.zoo.get(model_name)
        video = state.storage.table(video_name).video
        return state.batcher.submit_remote(model, video, inputs)

    if method.startswith("view_"):
        name = args[0]
        shard = state.router.shard_of(shard_key_for_view(name))
        store = state.shard_stores.get(shard)
        if store is None:
            raise ServerError(
                f"shard {shard} for view {name!r} is not owned by "
                f"worker {state.worker_id} (stale routing table?)")
        if method == "view_create_or_get":
            _, key_columns, output_columns = args
            existed = name in store
            view = store.base.create_or_get(name, key_columns,
                                            output_columns)
            return (not existed, list(view.key_columns),
                    list(view.output_columns))
        if method == "view_meta":
            view = store.base.get(name)
            if view is None:
                return None
            return (list(view.key_columns), list(view.output_columns))
        if method == "view_counts":
            view = store.base.get(name)
            if view is None:
                return (0, 0)
            return (view.num_keys, view.num_output_rows)
        if method == "view_contains_key":
            view = store.base.get(name)
            return view is not None and args[1] in view
        if method == "view_get":
            _, client_id, key = args
            handle = store.for_client(client_id).get(name)
            return None if handle is None else handle.get(key)
        if method == "view_get_many":
            _, client_id, keys = args
            handle = store.for_client(client_id).get(name)
            if handle is None:
                return [None] * len(keys)
            return handle.get_many(keys)
        if method == "view_put":
            _, client_id, key, rows = args
            handle = store.for_client(client_id).get(name)
            if handle is None:
                raise ServerError(f"view {name!r} does not exist")
            return handle.put(key, rows)
        if method == "view_put_many":
            _, client_id, items = args
            handle = store.for_client(client_id).get(name)
            if handle is None:
                raise ServerError(f"view {name!r} does not exist")
            return handle.put_many(items)
        if method == "view_keys":
            view = store.base.get(name)
            return [] if view is None else list(view.keys())
        if method == "view_keys_with_prefix":
            view = store.base.get(name)
            return ([] if view is None
                    else view.keys_with_prefix(args[1]))
        if method == "view_serialize":
            view = store.base.get(name)
            return b"" if view is None else view.serialize()
        raise ServerError(f"unknown view method {method!r}")

    if method.startswith("store_"):
        if method == "store_names":
            return state.view_store.names()
        if method == "store_total_bytes":
            return state.view_store.total_serialized_bytes()
        if method == "store_contains":
            return args[0] in state.view_store
        if method == "store_view_bytes":
            result: dict[str, int] = {}
            for name in args[0]:
                shard = state.router.shard_of(shard_key_for_view(name))
                store = state.shard_stores.get(shard)
                if store is not None:
                    result.update(store.base.view_bytes([name]))
            return result
        if method == "store_drop":
            return state.view_store.drop(args[0], reason=args[1])
        if method == "store_log_lineage":
            for record in args[0]:
                name = record.get("view")
                if name is None:
                    continue
                shard = state.router.shard_of(shard_key_for_view(name))
                store = state.shard_stores.get(shard)
                if store is not None:
                    store.base.log_lineage([record])
            return None
        raise ServerError(f"unknown store method {method!r}")

    if method.startswith("udf_"):
        if method == "udf_version":
            return sum(manager.version
                       for manager in state.shard_managers.values())
        if method == "udf_reset":
            for manager in state.shard_managers.values():
                manager.reset()
            return None
        if method == "udf_histories":
            rows = []
            for manager in state.shard_managers.values():
                for entry in manager.histories():
                    rows.append((entry.signature.udf_name,
                                 entry.signature.sources,
                                 entry.per_tuple_cost,
                                 entry.aggregated_predicate,
                                 entry.view_name))
            return rows
        signature = UdfSignature(args[0], tuple(args[1]))
        manager = state.shard_managers.get(
            state.router.shard_of(signature.key()))
        if manager is None:
            raise ServerError(
                f"signature {signature.key()!r} is not owned by "
                f"worker {state.worker_id} (stale routing table?)")
        if method == "udf_known":
            return manager.known(signature)
        if method == "udf_history":
            entry = manager.history(signature, args[2])
            return (entry.per_tuple_cost, entry.aggregated_predicate,
                    entry.view_name)
        if method == "udf_intersection":
            return manager.intersection_with_history(signature, args[2])
        if method == "udf_difference":
            return manager.difference_with_history(signature, args[2])
        if method == "udf_record":
            manager.record_execution(signature, args[2], args[3])
            return None
        raise ServerError(f"unknown udf method {method!r}")

    raise ServerError(f"unknown shard method {method!r}")
