"""Concurrent multi-client query serving over shared reuse state.

The paper's materialized UDF views amortize inference cost across
*queries*; this package makes them amortize across *users* as well.  An
:class:`EvaServer` multiplexes many concurrent clients over one shared
:class:`~repro.server.state.SharedReuseState` (thread-safe view store +
UDF manager + model zoo + catalog/storage) while keeping everything else
— plan cache, metrics, virtual clock — private per client::

    from repro.server import EvaServer

    server = EvaServer(max_workers=4)
    server.register_video(repro.video.ua_detrac("short"))
    with server.start():
        alice = server.connect("alice")
        bob = server.connect("bob")
        alice.execute("SELECT id FROM ua_detrac_short CROSS APPLY "
                      "FastRCNNObjectDetector(frame) WHERE id < 100;")
        # Bob's overlapping query is served from Alice's materialized work:
        bob.execute("SELECT id FROM ua_detrac_short CROSS APPLY "
                    "FastRCNNObjectDetector(frame) WHERE id < 50;")
        print(server.stats().format())

See ``docs/server.md`` for the concurrency model and what is shared
versus per-client.
"""

from repro.server.batcher import BatcherSnapshot, InferenceBatcher
from repro.server.client import ClientHandle
from repro.server.pool import PoolClientHandle, PoolServer
from repro.server.server import EvaServer
from repro.server.shard import ShardedWorkerState, ShardRouter
from repro.server.state import (
    LockedUdfManager,
    SharedReuseState,
    SharedViewStore,
)
from repro.server.stats import (
    ClientStatsSnapshot,
    ServerStats,
    ServerStatsSnapshot,
    merged_metrics,
)

__all__ = [
    "EvaServer",
    "ClientHandle",
    "PoolServer",
    "PoolClientHandle",
    "ShardRouter",
    "ShardedWorkerState",
    "InferenceBatcher",
    "BatcherSnapshot",
    "SharedReuseState",
    "SharedViewStore",
    "LockedUdfManager",
    "ServerStats",
    "ServerStatsSnapshot",
    "ClientStatsSnapshot",
    "merged_metrics",
]
