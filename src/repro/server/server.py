"""The concurrent multi-client query server.

An :class:`EvaServer` runs queries from many clients on a
``ThreadPoolExecutor``-backed worker pool over one
:class:`~repro.server.state.SharedReuseState`:

* **admission control** — at most ``max_workers + max_queue`` queries
  may be in flight; beyond that, :meth:`submit` fails fast with
  :class:`~repro.errors.ServerOverloadedError` carrying a
  ``retry_after`` estimate (backpressure, not unbounded queueing);
* **per-query timeout + cancellation** — each query gets a
  :class:`~repro.cancellation.CancelToken`; workers check it before
  starting (a query that spent its whole deadline queued never runs)
  and the executor checks it at batch boundaries while running;
* **per-client serialization** — one client's queries run one at a
  time against its private session (checkout/checkin via the client's
  lock), while *different* clients run fully in parallel;
* **graceful shutdown** — ``shutdown(drain=True)`` stops admission and
  waits for every queued and running query to finish;
  ``drain=False`` additionally trips every outstanding token so
  in-flight queries unwind at their next batch boundary.

The simulated models make each query cheap in wall-clock terms, but the
concurrency skeleton — shared state locking, admission, cancellation —
is exactly what a GPU-backed deployment needs; swapping the model zoo
swaps the cost profile, not the server.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cancellation import CancelToken
from repro.config import EvaConfig
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServerClosedError,
    ServerError,
    ServerOverloadedError,
)
from repro.models.zoo import ModelZoo
from repro.obs.sinks import InMemorySink, TraceSink
from repro.server.client import ClientHandle
from repro.server.state import SharedReuseState
from repro.server.stats import ServerStats, ServerStatsSnapshot, \
    merged_metrics
from repro.session import EvaSession
from repro.types import QueryResult
from repro.video.synthetic import SyntheticVideo

#: Sentinel: "use the server's default timeout".
_DEFAULT = object()


@dataclass
class _Client:
    """Server-side record for one connected client."""

    client_id: str
    session: EvaSession
    #: Checkout lock: serializes this client's queries (sessions are not
    #: reentrant — metrics begin/end pairs and the virtual clock assume
    #: one query at a time).
    lock: threading.Lock = field(default_factory=threading.Lock)
    closed: bool = False


class EvaServer:
    """Multiplexes concurrent clients over shared reuse state."""

    def __init__(self, config: EvaConfig | None = None,
                 zoo: ModelZoo | None = None, *,
                 max_workers: int = 4,
                 max_queue: int = 16,
                 default_timeout: float | None = None,
                 trace_sink: TraceSink | None = None,
                 state: SharedReuseState | None = None):
        if max_workers < 1:
            raise ServerError("max_workers must be >= 1")
        if max_queue < 0:
            raise ServerError("max_queue must be >= 0")
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        #: Shared export sink for every client's tracer (spans, audit
        #: records, slow queries — all stamped with the client id).
        self.trace_sink: TraceSink = (trace_sink if trace_sink is not None
                                      else InMemorySink())
        #: ``state`` injection seam: the worker pool embeds one
        #: EvaServer per worker process over a pre-built
        #: :class:`~repro.server.shard.ShardedWorkerState` instead of
        #: letting the server construct the default single-store state.
        self.state = (state if state is not None
                      else SharedReuseState(config, zoo))
        self.stats_hub = ServerStats()
        self.state.attach_stats(self.stats_hub)
        self._lock = threading.Lock()
        self._clients: dict[str, _Client] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        #: Queries admitted but not yet done (queued + running).
        self._pending = 0
        self._active_tokens: set[CancelToken] = set()
        #: EWMA of recent query latency, seeds retry_after estimates.
        self._latency_ewma = 0.05
        self._next_client = 1

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "EvaServer":
        """Spin up the worker pool (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("server already shut down")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="eva-worker")
        return self

    def __enter__(self) -> "EvaServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    @property
    def running(self) -> bool:
        with self._lock:
            return self._executor is not None and not self._closed

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop the server.

        ``drain=True`` (graceful): stop admitting new queries, then wait
        for everything queued and running to complete.  ``drain=False``:
        additionally cancel queued work and trip every running query's
        token so workers unwind at the next batch boundary.  ``timeout``
        bounds the final wait (None = wait indefinitely).
        """
        with self._lock:
            self._closed = True
            executor = self._executor
            tokens = list(self._active_tokens) if not drain else []
        for token in tokens:
            token.cancel("server shutting down")
        if executor is not None:
            if timeout is None:
                executor.shutdown(wait=True, cancel_futures=not drain)
            else:
                # ThreadPoolExecutor.shutdown has no timeout; emulate by
                # polling the pending count.
                executor.shutdown(wait=False, cancel_futures=not drain)
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    with self._lock:
                        if self._pending == 0:
                            break
                    time.sleep(0.005)
        # Workers are quiesced: snapshot and close a durable view store
        # so the next server over this path recovers from snapshots
        # instead of replaying the whole WAL.
        self.state.close_store()

    # -- setup -----------------------------------------------------------------

    def register_video(self, video: SyntheticVideo) -> None:
        """Register a video for every current and future client."""
        self.state.register_video(video)

    # -- clients ---------------------------------------------------------------

    def connect(self, client_id: str | None = None) -> ClientHandle:
        """Check out a client handle with its own private session."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is shut down")
            if client_id is None:
                client_id = f"client-{self._next_client}"
                self._next_client += 1
            if client_id in self._clients:
                raise ServerError(
                    f"client id {client_id!r} already connected")
            # Session construction registers standard UDFs against the
            # shared catalog (idempotent, but not concurrency-safe), so
            # it happens under the server lock.
            session = EvaSession(
                state=self.state.session_state(
                    client_id, trace_sink=self.trace_sink))
            client = _Client(client_id=client_id, session=session)
            self._clients[client_id] = client
        return ClientHandle(self, client)

    def disconnect(self, client_id: str) -> None:
        """Close a client; its metrics remain for attribution."""
        with self._lock:
            client = self._clients.get(client_id)
            if client is not None:
                client.closed = True

    # -- query admission -------------------------------------------------------

    def submit(self, client_id: str, sql: str,
               timeout: float | None = _DEFAULT) -> "Future[QueryResult]":
        """Admit one query for ``client_id``; returns a Future.

        Raises:
            ServerClosedError: the server is not running.
            ServerOverloadedError: the admission queue is full; the
                error's ``retry_after`` suggests a client back-off.
        """
        if timeout is _DEFAULT:
            timeout = self.default_timeout
        with self._lock:
            client = self._clients.get(client_id)
            if client is None or client.closed:
                raise ServerError(f"unknown or closed client {client_id!r}")
            if self._closed or self._executor is None:
                raise ServerClosedError(
                    "server is not accepting queries (closed or not "
                    "started)")
            capacity = self.max_workers + self.max_queue
            if self._pending >= capacity:
                retry_after = self._estimate_retry_after_locked()
                self.stats_hub.record_rejected(client_id)
                raise ServerOverloadedError(
                    f"admission queue full ({self._pending} in flight, "
                    f"capacity {capacity}); retry in {retry_after:.2f}s",
                    retry_after=retry_after)
            token = CancelToken.with_timeout(timeout)
            self._pending += 1
            self._active_tokens.add(token)
            self.stats_hub.record_submitted(client_id)
            self._update_queue_depth_locked()
            executor = self._executor
        submitted_at = time.monotonic()
        future = executor.submit(self._run_query, client, sql, token,
                                 submitted_at)
        future.add_done_callback(
            lambda f: self._on_done(f, client.client_id, token))
        return future

    def _estimate_retry_after_locked(self) -> float:
        queued = max(0, self._pending - self.max_workers)
        return max(0.05,
                   (queued + 1) * self._latency_ewma / self.max_workers)

    def _update_queue_depth_locked(self) -> None:
        self.stats_hub.set_queue_depth(
            max(0, self._pending - self.max_workers))

    # -- worker body -----------------------------------------------------------

    def _run_query(self, client: _Client, sql: str,
                   token: CancelToken,
                   submitted_at: float | None = None) -> QueryResult:
        started = time.monotonic()
        try:
            # A query that burned its whole deadline in the queue must
            # not start executing.
            token.check()
            # Session checkout: one query at a time per client.
            with client.lock:
                token.check()
                # Admission wait: submit-to-worker-start, including the
                # checkout wait above (a query stuck behind its own
                # client's previous query is queued, not computing).
                queue_wait = (time.monotonic() - submitted_at
                              if submitted_at is not None else 0.0)
                self.stats_hub.record_admission_wait(queue_wait)
                client.session.flight.deposit_queue_wait(queue_wait)
                result = client.session.execute(sql, cancel=token)
            self.stats_hub.record_completed(client.client_id)
            return result
        except QueryTimeoutError:
            self.stats_hub.record_timeout(client.client_id)
            raise
        except QueryCancelledError:
            self.stats_hub.record_cancelled(client.client_id)
            raise
        except BaseException:
            self.stats_hub.record_failed(client.client_id)
            raise
        finally:
            elapsed = time.monotonic() - started
            with self._lock:
                self._latency_ewma = (0.8 * self._latency_ewma
                                      + 0.2 * elapsed)

    def _on_done(self, future: "Future[QueryResult]", client_id: str,
                 token: CancelToken) -> None:
        """Accounting for *every* admitted query, including futures that
        were cancelled while still queued (``shutdown(drain=False)``)."""
        if future.cancelled():
            self.stats_hub.record_cancelled(client_id)
        with self._lock:
            self._pending -= 1
            self._active_tokens.discard(token)
            self._update_queue_depth_locked()

    # -- introspection ---------------------------------------------------------

    def clients(self) -> list[str]:
        with self._lock:
            return sorted(self._clients)

    def queue_depth(self) -> int:
        with self._lock:
            return max(0, self._pending - self.max_workers)

    def aggregate_metrics(self):
        """One MetricsCollector over every client's work."""
        with self._lock:
            collectors = [c.session.metrics
                          for c in self._clients.values()]
        return merged_metrics(collectors)

    def hit_percentage(self) -> float:
        """Aggregate hit percentage across all clients."""
        return self.aggregate_metrics().hit_percentage()

    def stats(self) -> ServerStatsSnapshot:
        """A point-in-time snapshot of server-level observability."""
        store = self.state.view_store
        return self.stats_hub.snapshot(
            workers=self.max_workers,
            hit_percentage=self.hit_percentage(),
            num_views=len(store.names()),
            view_storage_bytes=store.total_serialized_bytes(),
        )

    def trace_events(self, type: str | None = None) -> list[dict]:
        """Events captured by the server's trace sink (when it buffers).

        Works with the default :class:`~repro.obs.sinks.InMemorySink`;
        returns ``[]`` for write-only sinks (e.g. JSONL files).
        """
        events = getattr(self.trace_sink, "events", None)
        if events is None:
            return []
        return events(type)

    def aggregate_clock(self):
        """One clock totalling virtual time across every client."""
        from repro.clock import SimulationClock

        with self._lock:
            clocks = [c.session.clock for c in self._clients.values()]
        total = SimulationClock()
        for clock in clocks:
            for category, seconds in clock.breakdown().items():
                if seconds > 0:
                    total.charge(category, seconds)
        return total

    def profile_snapshot(self):
        """Point-in-time snapshot of the *shared* continuous profiler.

        All clients roll their per-query model/operator telemetry into
        one :class:`~repro.obs.profiler.ProfileStore` on the shared
        state, so this is the server-wide profile, not any one
        client's.
        """
        return self.state.profiler.snapshot()

    def drift_report(self):
        """Server-wide cost-model drift: the shared profile's observed
        per-tuple costs vs the catalog's believed (modeled) costs."""
        from repro.obs.calibration import detect_drift, modeled_model_costs

        config = self.state.config
        return detect_drift(
            self.profile_snapshot(),
            modeled_model_costs(self.state.catalog),
            ratio_threshold=config.drift_ratio_threshold,
            min_invocations=config.calibration_min_invocations,
        )

    def batcher_snapshot(self):
        """Point-in-time statistics of the shared inference batcher.

        Returns a :class:`~repro.server.batcher.BatcherSnapshot`:
        physical dispatches vs logical requests, coalesced-call counts,
        and max/mean batch sizes — ``mean_batch_requests > 1`` means
        concurrent clients actually shared model calls.
        """
        return self.state.batcher.snapshot()

    def slo_snapshot(self):
        """Fleet-wide SLO accounting: latency quantiles over every
        completed query plus burn-rate counters against the configured
        ``slo_latency_*`` targets
        (:class:`~repro.obs.slo.SloSnapshot`)."""
        return self.state.slo.snapshot()

    def flight_stats(self):
        """Aggregate flight-record rollups (records, per-stage wall
        seconds, dominant-stage and over-SLO attribution counts)."""
        return self.state.flight_stats.snapshot()

    def ledger_snapshot(self) -> list[dict]:
        """Per-view lineage gauges from the shared provenance ledger
        (:meth:`~repro.obs.lineage.ViewLedger.snapshot`); empty when
        ``config.view_ledger`` is off."""
        ledger = self.state.ledger
        return ledger.snapshot() if ledger is not None else []

    def lineage_records(self) -> list[dict]:
        """All provenance records of the shared ledger
        (:meth:`~repro.obs.lineage.ViewLedger.export_records`)."""
        ledger = self.state.ledger
        return ledger.export_records() if ledger is not None else []

    def prometheus_text(self) -> str:
        """The Prometheus exposition for the whole server: merged
        per-UDF #TI/#DI/hit-rate metrics, summed per-client virtual-time
        categories, the admission/backpressure counters, the shared
        continuous-profiler rollups, the inference micro-batcher's
        coalescing gauges, the modeled-vs-observed cost-drift gauges,
        and the flight/SLO/lock-contention families."""
        from repro.obs.prometheus import prometheus_text

        return prometheus_text(
            metrics=self.aggregate_metrics(),
            clock=self.aggregate_clock(),
            server=self.stats(),
            profile=self.profile_snapshot(),
            drift=self.drift_report(),
            batcher=self.batcher_snapshot(),
            store=self.state.view_store.store_snapshot(),
            flight=self.flight_stats(),
            slo=self.slo_snapshot(),
            views=self.ledger_snapshot(),
        )
