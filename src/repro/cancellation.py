"""Cooperative query cancellation.

Python threads cannot be killed, so long-running queries are cancelled
*cooperatively*: the server hands each query a :class:`CancelToken`
carrying an optional deadline, and the executor checks it at batch
boundaries (the scan operator and the plan root).  A tripped token makes
the next check raise :class:`~repro.errors.QueryTimeoutError` or
:class:`~repro.errors.QueryCancelledError`, unwinding the operator tree.

Tokens are thread-safe: the submitting thread (or the server's shutdown
path) may cancel while a worker thread is mid-query.
"""

from __future__ import annotations

import threading
import time

from repro.errors import QueryCancelledError, QueryTimeoutError


class CancelToken:
    """A cancellation flag plus an optional wall-clock deadline."""

    def __init__(self, deadline: float | None = None):
        #: Absolute ``time.monotonic()`` deadline, or None for no timeout.
        self.deadline = deadline
        self._cancelled = threading.Event()
        self._reason: str | None = None

    @classmethod
    def with_timeout(cls, seconds: float | None) -> "CancelToken":
        """A token that trips ``seconds`` from now (None = never)."""
        if seconds is None:
            return cls()
        return cls(deadline=time.monotonic() + seconds)

    def cancel(self, reason: str | None = None) -> None:
        """Trip the token; the next :meth:`check` raises."""
        if reason is not None and self._reason is None:
            self._reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def timed_out(self) -> bool:
        return (self.deadline is not None
                and time.monotonic() >= self.deadline)

    def remaining(self) -> float | None:
        """Seconds until the deadline (None if no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def check(self) -> None:
        """Raise if the token is cancelled or past its deadline.

        Raises:
            QueryTimeoutError: the deadline has passed.
            QueryCancelledError: :meth:`cancel` was called.
        """
        if self.timed_out:
            raise QueryTimeoutError(
                self._reason or "query exceeded its deadline")
        if self._cancelled.is_set():
            raise QueryCancelledError(self._reason or "query cancelled")
