"""Workload- and query-level metric collection.

Tracks the quantities the paper's evaluation reports:

* per-UDF invocation counts — total (#TI) and distinct (#DI) — and how many
  invocations were satisfied from materialized results (the *hit percentage*
  of section 5.2);
* per-query virtual-time breakdowns (Fig. 6, Table 4);
* storage footprint of materialized views (section 5.2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.clock import ClockSnapshot, CostCategory, SimulationClock


@dataclass
class UdfInvocationStats:
    """Invocation accounting for one UDF signature (Table 3 rows)."""

    name: str
    per_tuple_cost: float = 0.0
    total_invocations: int = 0
    reused_invocations: int = 0
    _distinct_keys: set = field(default_factory=set, repr=False)

    @property
    def distinct_invocations(self) -> int:
        return len(self._distinct_keys)

    def record(self, keys, reused: bool) -> None:
        """Record a batch of invocations identified by hashable ``keys``."""
        count = len(keys)
        self.total_invocations += count
        if reused:
            self.reused_invocations += count
        self._distinct_keys.update(keys)

    @property
    def executed_invocations(self) -> int:
        return self.total_invocations - self.reused_invocations


@dataclass
class QueryMetrics:
    """Metrics for one executed query."""

    query_text: str
    time_breakdown: dict[CostCategory, float] = field(default_factory=dict)
    udf_counts: dict[str, int] = field(default_factory=dict)
    reused_counts: dict[str, int] = field(default_factory=dict)
    rows_returned: int = 0

    @property
    def total_time(self) -> float:
        return sum(self.time_breakdown.values())

    def time(self, category: CostCategory) -> float:
        return self.time_breakdown.get(category, 0.0)

    @property
    def udf_time(self) -> float:
        return self.time(CostCategory.UDF)

    @property
    def reuse_time(self) -> float:
        """Time spent on reuse machinery rather than UDF evaluation."""
        reuse_categories = (
            CostCategory.READ_VIEW,
            CostCategory.MATERIALIZE,
            CostCategory.OPTIMIZE,
            CostCategory.JOIN,
            CostCategory.APPLY,
            CostCategory.HASH,
        )
        return sum(self.time(c) for c in reuse_categories)


class MetricsCollector:
    """Accumulates statistics across a workload run.

    One collector lives on the execution context; operators report UDF
    invocations through it, and the session closes out per-query metrics by
    diffing clock snapshots.
    """

    def __init__(self) -> None:
        self.udf_stats: dict[str, UdfInvocationStats] = {}
        self.query_metrics: list[QueryMetrics] = []
        #: Named event counters (e.g. ``plan_cache_evictions``); anything
        #: worth counting that is not a UDF invocation lands here.
        self.counters: dict[str, int] = defaultdict(int)
        self._open_query: QueryMetrics | None = None
        self._open_snapshot: ClockSnapshot | None = None
        self._open_udf_counts: dict[str, int] = defaultdict(int)
        self._open_reused_counts: dict[str, int] = defaultdict(int)

    def increment(self, counter: str, by: int = 1) -> None:
        """Bump a named event counter."""
        self.counters[counter] += by

    # -- workload-level UDF accounting ------------------------------------

    def stats_for(self, udf_name: str, per_tuple_cost: float = 0.0
                  ) -> UdfInvocationStats:
        stats = self.udf_stats.get(udf_name)
        if stats is None:
            stats = UdfInvocationStats(udf_name, per_tuple_cost)
            self.udf_stats[udf_name] = stats
        elif per_tuple_cost and not stats.per_tuple_cost:
            stats.per_tuple_cost = per_tuple_cost
        return stats

    def record_invocations(self, udf_name: str, keys, reused: bool,
                           per_tuple_cost: float = 0.0) -> None:
        """Record UDF invocations; ``keys`` identify distinct inputs."""
        self.stats_for(udf_name, per_tuple_cost).record(keys, reused)
        if self._open_query is not None:
            self._open_udf_counts[udf_name] += len(keys)
            if reused:
                self._open_reused_counts[udf_name] += len(keys)

    def hit_percentage(self) -> float:
        """Fraction of UDF invocations satisfied from materialized results.

        Defined in section 5.2:
        ``reused invocations / total invocations * 100``.
        """
        total = sum(s.total_invocations for s in self.udf_stats.values())
        if total == 0:
            return 0.0
        reused = sum(s.reused_invocations for s in self.udf_stats.values())
        return 100.0 * reused / total

    # -- per-query accounting ----------------------------------------------

    def begin_query(self, query_text: str, clock: SimulationClock) -> None:
        self._open_query = QueryMetrics(query_text)
        self._open_snapshot = clock.snapshot()
        self._open_udf_counts = defaultdict(int)
        self._open_reused_counts = defaultdict(int)

    def end_query(self, clock: SimulationClock, rows_returned: int
                  ) -> QueryMetrics:
        if self._open_query is None or self._open_snapshot is None:
            raise RuntimeError("end_query called without begin_query")
        metrics = self._open_query
        metrics.time_breakdown = self._open_snapshot.delta(clock)
        metrics.udf_counts = dict(self._open_udf_counts)
        metrics.reused_counts = dict(self._open_reused_counts)
        metrics.rows_returned = rows_returned
        self.query_metrics.append(metrics)
        self._open_query = None
        self._open_snapshot = None
        return metrics

    # -- workload summaries --------------------------------------------------

    def workload_time(self) -> float:
        return sum(m.total_time for m in self.query_metrics)

    def speedup_upper_bound(self) -> float:
        """Eq. 7 upper bound: total UDF cost / distinct UDF cost."""
        total = sum(s.per_tuple_cost * s.total_invocations
                    for s in self.udf_stats.values())
        distinct = sum(s.per_tuple_cost * s.distinct_invocations
                       for s in self.udf_stats.values())
        if distinct == 0:
            return 1.0
        return total / distinct
