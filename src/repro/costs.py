"""The materialization-aware UDF cost model (Eq. 3) and cost constants.

Eq. 3 prices one UDF-based predicate over an input of cardinality ``|R|``:

    T(sigma, |R|) = 3*C_M + |R|*c_r + |R| * s_{p-} * c_e

where ``C_M`` is the cost of reading the materialized view (the hash-join
estimate of [38]), ``c_r`` the per-tuple input read cost, ``c_e`` the
per-tuple UDF evaluation cost, and ``s_{p-}`` the selectivity of the
difference predicate — the fraction of input tuples missing from the view.

The constants also calibrate the execution engine's virtual clock; they are
chosen so the component times match the paper's Table 4 decomposition
(e.g. ~2.2 ms/frame video reads).

Every constant is strictly *per tuple* (or per key/row/operator), which is
what makes the vectorized executor cost-transparent: charging
``len(batch) * per_tuple_cost`` once per batch is arithmetically the sum
of the per-row charges, so row and column-at-a-time execution produce
identical virtual totals by construction (``docs/execution.md``; enforced
by ``tests/test_vectorized_differential.py``).  Nothing here depends on
batch size — batching changes real seconds only.

The ``udf_cost`` (c_e) argument of :meth:`CostModel.udf_predicate_cost`
is supplied by the caller and is the planner's *believed* per-model
cost: the value snapshotted into the catalog at UDF registration,
optionally re-fit from observed execution telemetry by
:mod:`repro.obs.calibration` (``EvaConfig.cost_calibration="apply"``).
The continuous profiler (:mod:`repro.obs.profiler`) measures the
observed counterpart — charged virtual seconds per executed invocation
— and the drift detector flags when the two diverge (see the mapping
table in ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostConstants:
    """Calibrated per-unit costs (virtual seconds)."""

    #: Reading one frame (decode + transfer); Table 4: ~22 s / 10k frames.
    read_video_per_frame: float = 0.0022
    #: Probing the view hash table for one key; Table 4: ~10 s / 10k frames.
    view_read_per_key: float = 0.00012
    #: Reading one materialized output row from the view.
    view_read_per_row: float = 0.00002
    #: Appending one output row to a view (batched, section 5.3).
    materialize_per_row: float = 0.00002
    #: Building/probing the outer-join hash table, per operator (the 3*C_M
    #: fixed term of Eq. 3, amortized).
    join_setup: float = 0.05
    #: APPLY operator bookkeeping per input batch.
    apply_per_batch: float = 0.0005
    #: FunCache: xxHash over input bytes (~8 GB/s) plus per-call overhead.
    hash_per_byte: float = 1e-9
    #: HashStash: deduplicating one row of the union of matched recycler
    #: entries (hash + compare).
    hashstash_dedup_per_row: float = 0.0005
    hash_per_call: float = 0.0025

    @property
    def view_read_per_tuple(self) -> float:
        """The c_r term of Eq. 3/Eq. 4 (per-tuple view access cost)."""
        return self.view_read_per_key


class CostModel:
    """Implements Eq. 3 on top of :class:`CostConstants`."""

    def __init__(self, constants: CostConstants | None = None):
        self.constants = constants or CostConstants()

    def view_scan_cost(self, view_rows: int) -> float:
        """C_M: full cost of reading a materialized view of that many rows."""
        return view_rows * self.constants.view_read_per_row

    def udf_predicate_cost(self, input_rows: float, udf_cost: float,
                           missing_fraction: float,
                           view_rows: int = 0) -> float:
        """Eq. 3: expected cost of one UDF-based predicate.

        Args:
            input_rows: |R|, cardinality flowing into the predicate.
            udf_cost: c_e, per-tuple UDF evaluation cost.
            missing_fraction: s_{p-}, fraction of tuples not in the view.
            view_rows: size of the materialized view (for the 3*C_M term).
        """
        join_term = 3.0 * self.view_scan_cost(view_rows)
        read_term = input_rows * self.constants.view_read_per_tuple
        eval_term = input_rows * missing_fraction * udf_cost
        return join_term + read_term + eval_term

    def ordering_cost(self, input_rows: float,
                      predicates: list[tuple[float, float, float]]) -> float:
        """Expected cost of evaluating predicates in the given order.

        Each predicate is ``(selectivity, udf_cost, missing_fraction)``;
        cardinality shrinks by each selectivity in turn (Theorem 4.1's
        T(O, |R|) expansion).
        """
        total = 0.0
        rows = float(input_rows)
        for selectivity, udf_cost, missing_fraction in predicates:
            total += self.udf_predicate_cost(rows, udf_cost,
                                             missing_fraction)
            rows *= selectivity
        return total
