"""View lineage & reuse-provenance ledger.

EVA's value proposition is the accumulated pool of materialized views,
yet the observability stack so far watches queries (spans, flight
records) and models (profiler) — not the views themselves.  This module
closes that gap with a thread-safe :class:`ViewLedger` keeping one
provenance record per ``(view, generation)``:

* **creation side** — creating query / trace / flight ids, client id,
  the defining predicate in canonical DNF, source model + video, frame
  range, model invocations paid, virtual seconds spent materializing,
  and bytes;
* **read side** — per-reader hit counts, rows served, cumulative
  virtual seconds saved (the Eq. 3 economics: a hit costs
  ``c_r + rows * c_row`` instead of the model's ``c_e``), last-access
  logical clock, and the cross-client reader set;
* **derivation edges** — when Rule I / Algorithm 1 builds a plan from
  symbolic INTER / DIFF / UNION over existing view content, an edge
  links the probed source view to the view the query extends, forming
  a queryable lineage DAG.

Instrumentation follows the flight-recorder seam: the session installs
a per-query :class:`QueryLineage` accumulator into a thread-local;
:mod:`repro.storage.view_store` calls the module-level ``record_*``
hooks, which are dict-miss no-ops when no query is active (so recovery,
deserialization, and direct store manipulation never pollute
attribution).  Totals are pure commutative counts, so morsel-parallel
execution folds to the same ledger as the serial run.

Every quantity exported by :meth:`ViewLedger.export_records` is
restart-stable — logical sequence numbers instead of wall timestamps —
so a ledger rebuilt from the durable store's control log matches the
uninterrupted run byte for byte.  Wall-clock age/idle (for the
Prometheus gauges) live in :meth:`ViewLedger.snapshot` only.
"""

from __future__ import annotations

import threading
import time

#: Materialized-view names are ``mv::<model>[@<source>...]`` (the UDF
#: signature key); the first two ``@`` segments name model and video.
VIEW_PREFIX = "mv::"

#: Reader key used when no client id is known (embedded sessions).
LOCAL_CLIENT = "local"


def parse_view_name(name: str) -> tuple[str | None, str | None]:
    """``(model, video)`` encoded in a view name, or ``(None, None)``."""
    if not name.startswith(VIEW_PREFIX):
        return None, None
    parts = name[len(VIEW_PREFIX):].split("@")
    model = parts[0] or None
    video = parts[1] if len(parts) > 1 and parts[1] else None
    return model, video


# -- per-query accumulator ----------------------------------------------------


class QueryLineage:
    """Commutative per-query view-touch counts (thread-safe).

    Worker threads of the morsel-parallel executor share the driver's
    instance; all fields are additive counters or min/max folds, so the
    aggregate is independent of interleaving.
    """

    __slots__ = ("_lock", "probes", "writes", "creates")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> [hits, misses, rows_served]
        self.probes: dict[str, list[int]] = {}
        #: name -> [fresh_keys, fresh_rows, frame_lo, frame_hi]
        self.writes: dict[str, list] = {}
        #: names created by this query, in creation order.
        self.creates: list[str] = []

    def record_probe(self, name: str, hits: int, misses: int,
                     rows: int) -> None:
        with self._lock:
            slot = self.probes.get(name)
            if slot is None:
                self.probes[name] = [hits, misses, rows]
            else:
                slot[0] += hits
                slot[1] += misses
                slot[2] += rows

    def record_write(self, name: str, keys: int, rows: int,
                     frame_lo, frame_hi) -> None:
        with self._lock:
            slot = self.writes.get(name)
            if slot is None:
                self.writes[name] = [keys, rows, frame_lo, frame_hi]
            else:
                slot[0] += keys
                slot[1] += rows
                if frame_lo is not None:
                    slot[2] = (frame_lo if slot[2] is None
                               else min(slot[2], frame_lo))
                    slot[3] = (frame_hi if slot[3] is None
                               else max(slot[3], frame_hi))

    def record_create(self, name: str) -> None:
        with self._lock:
            if name not in self.creates:
                self.creates.append(name)

    @property
    def touched(self) -> bool:
        return bool(self.probes or self.writes or self.creates)


# -- thread-local hook seam ---------------------------------------------------

_ACTIVE = threading.local()


def current_lineage() -> QueryLineage | None:
    """The query-lineage accumulator installed on this thread, if any."""
    if getattr(_ACTIVE, "suppressed", 0):
        return None
    return getattr(_ACTIVE, "ctx", None)


def install_lineage(ctx: QueryLineage | None) -> None:
    _ACTIVE.ctx = ctx


def uninstall_lineage() -> None:
    _ACTIVE.ctx = None


class suppress_lineage:
    """Context manager: mute the hooks on this thread (re-entrant).

    Used around bulk re-inserts that are *not* query work — view
    deserialization and warm-tier promotion replay stored entries via
    ``put``; attributing those to the running query would double-count
    materialization that was already paid for.
    """

    def __enter__(self):
        _ACTIVE.suppressed = getattr(_ACTIVE, "suppressed", 0) + 1
        return self

    def __exit__(self, *exc):
        _ACTIVE.suppressed -= 1
        return False


def record_view_probe(name: str, rows) -> None:
    """One single-key probe: ``rows`` is the stored tuple or None."""
    ctx = current_lineage()
    if ctx is not None:
        if rows is None:
            ctx.record_probe(name, 0, 1, 0)
        else:
            ctx.record_probe(name, 1, 0, len(rows))


def record_view_probe_many(name: str, found) -> None:
    """One bulk probe: ``found`` is the ``get_many`` result list."""
    ctx = current_lineage()
    if ctx is None:
        return
    hits = misses = rows = 0
    for entry in found:
        if entry is None:
            misses += 1
        else:
            hits += 1
            rows += len(entry)
    ctx.record_probe(name, hits, misses, rows)


def record_view_write(name: str, fresh) -> None:
    """Freshly inserted ``(key, stored_rows)`` pairs of one put batch."""
    ctx = current_lineage()
    if ctx is None or not fresh:
        return
    keys = len(fresh)
    rows = 0
    lo = hi = None
    for key, stored in fresh:
        rows += len(stored)
        frame = key[0] if key else None
        if isinstance(frame, int):
            lo = frame if lo is None else min(lo, frame)
            hi = frame if hi is None else max(hi, frame)
    ctx.record_write(name, keys, rows, lo, hi)


def record_view_create(name: str) -> None:
    ctx = current_lineage()
    if ctx is not None:
        ctx.record_create(name)


# -- ledger records -----------------------------------------------------------

#: Record lifecycle states.  ``live`` views are readable; ``dropped``
#: ones were removed explicitly; ``evicted`` ones were dropped by the
#: durable store's byte-budget policy.
STATUS_LIVE = "live"
STATUS_DROPPED = "dropped"
STATUS_EVICTED = "evicted"


class _Record:
    """Mutable provenance state of one (view, generation)."""

    __slots__ = (
        "name", "generation", "status",
        "model", "video", "key_columns", "output_columns",
        "query", "trace_id", "flight_id", "client_id", "predicate",
        "frame_lo", "frame_hi",
        "invocations_paid", "fresh_rows", "materialize_vs", "bytes",
        "hits", "misses", "rows_served", "saved_vs",
        "readers", "edges",
        "created_seq", "last_access_seq",
        "created_wall", "last_access_wall",
    )

    def __init__(self, name: str, generation: int,
                 key_columns=None, output_columns=None):
        self.name = name
        self.generation = generation
        self.status = STATUS_LIVE
        self.model, self.video = parse_view_name(name)
        self.key_columns = list(key_columns or [])
        self.output_columns = list(output_columns or [])
        self.query = None
        self.trace_id = None
        self.flight_id = None
        self.client_id = None
        self.predicate = None
        self.frame_lo = None
        self.frame_hi = None
        self.invocations_paid = 0
        self.fresh_rows = 0
        self.materialize_vs = 0.0
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.rows_served = 0
        self.saved_vs = 0.0
        self.readers: dict[str, int] = {}
        #: (source_lineage_id, op) pairs; op in INTER | DIFF | UNION.
        self.edges: set[tuple[str, str]] = set()
        self.created_seq = None
        self.last_access_seq = None
        self.created_wall = time.perf_counter()
        self.last_access_wall = self.created_wall

    @property
    def lineage_id(self) -> str:
        return f"{self.name}#g{self.generation}"

    @property
    def net_benefit(self) -> float:
        return self.saved_vs - self.materialize_vs

    def export(self) -> dict:
        """Restart-stable JSON record (the ``lineage.schema.json`` shape)."""
        return {
            "type": "lineage",
            "lineage_id": self.lineage_id,
            "view": self.name,
            "generation": self.generation,
            "status": self.status,
            "model": self.model,
            "video": self.video,
            "key_columns": list(self.key_columns),
            "output_columns": list(self.output_columns),
            "created": {
                "query": self.query,
                "trace_id": self.trace_id,
                "flight_id": self.flight_id,
                "client_id": self.client_id,
                "predicate": self.predicate,
                "seq": self.created_seq,
            },
            "frame_range": (None if self.frame_lo is None
                            else [self.frame_lo, self.frame_hi]),
            "invocations_paid": self.invocations_paid,
            "fresh_rows": self.fresh_rows,
            "materialize_vs": self.materialize_vs,
            "bytes": self.bytes,
            "hits": self.hits,
            "misses": self.misses,
            "rows_served": self.rows_served,
            "saved_vs": self.saved_vs,
            "net_benefit": self.net_benefit,
            "readers": {k: self.readers[k] for k in sorted(self.readers)},
            "last_access_seq": self.last_access_seq,
            "edges": [
                {"source": source, "op": op}
                for source, op in sorted(self.edges)
            ],
        }

    @classmethod
    def restore(cls, payload: dict) -> "_Record":
        record = cls(payload["view"], payload["generation"],
                     payload.get("key_columns"),
                     payload.get("output_columns"))
        record.status = payload.get("status", STATUS_LIVE)
        created = payload.get("created") or {}
        record.query = created.get("query")
        record.trace_id = created.get("trace_id")
        record.flight_id = created.get("flight_id")
        record.client_id = created.get("client_id")
        record.predicate = created.get("predicate")
        record.created_seq = created.get("seq")
        frame_range = payload.get("frame_range")
        if frame_range:
            record.frame_lo, record.frame_hi = frame_range
        record.invocations_paid = payload.get("invocations_paid", 0)
        record.fresh_rows = payload.get("fresh_rows", 0)
        record.materialize_vs = payload.get("materialize_vs", 0.0)
        record.bytes = payload.get("bytes", 0)
        record.hits = payload.get("hits", 0)
        record.misses = payload.get("misses", 0)
        record.rows_served = payload.get("rows_served", 0)
        record.saved_vs = payload.get("saved_vs", 0.0)
        record.readers = dict(payload.get("readers") or {})
        record.last_access_seq = payload.get("last_access_seq")
        record.edges = {
            (edge["source"], edge["op"])
            for edge in payload.get("edges") or ()
        }
        return record


class ViewLedger:
    """Thread-safe provenance ledger over all (view, generation) pairs."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._records: dict[str, _Record] = {}
        #: name -> current generation (bumped on every create).
        self._gen: dict[str, int] = {}
        #: Logical event clock: one tick per observed query.
        self._seq = 0

    # -- lifecycle events (store seam) ------------------------------------

    def on_create(self, name: str, key_columns, output_columns) -> None:
        """A view was registered in the store (new generation)."""
        with self._lock:
            generation = self._gen.get(name, 0) + 1
            self._gen[name] = generation
            record = _Record(name, generation, key_columns, output_columns)
            self._records[record.lineage_id] = record

    def on_drop(self, name: str, reason: str = "drop") -> None:
        """The current generation of ``name`` left the store.

        ``reason`` maps to the record status (``evicted`` for budget
        evictions, ``dropped`` otherwise); the first drop wins, so a
        budget eviction routed through :meth:`ViewStore.drop` is not
        downgraded to a plain drop afterwards.
        """
        with self._lock:
            record = self._current(name)
            if record is None or record.status != STATUS_LIVE:
                return
            record.status = (STATUS_EVICTED if reason == "evicted"
                             else STATUS_DROPPED)

    def _current(self, name: str) -> _Record | None:
        generation = self._gen.get(name)
        if generation is None:
            return None
        return self._records.get(f"{name}#g{generation}")

    def current_id(self, name: str) -> str | None:
        """Lineage id of the live generation of ``name``, if any."""
        with self._lock:
            record = self._current(name)
            return record.lineage_id if record is not None else None

    # -- per-query fold ----------------------------------------------------

    def observe_query(self, qlin: QueryLineage, *, query: str,
                      trace_id: str | None, client_id: str | None,
                      view_bytes: dict[str, int],
                      model_costs: dict[str, float],
                      costs, audit=()) -> dict | None:
        """Fold one query's accumulated view touches into the ledger.

        ``costs`` duck-types :class:`repro.costs.CostConstants`
        (``view_read_per_key`` / ``view_read_per_row`` /
        ``materialize_per_row``); ``model_costs`` maps the model segment
        of a view name to its believed per-tuple cost ``c_e``.  Savings
        follow Eq. 3: every probed key pays ``c_r``, every served row
        pays ``c_row``, and every hit avoids one ``c_e`` — so
        ``saved = hits*c_e - (probes*c_r + rows*c_row)``.  The
        materialization investment is
        ``fresh_keys*c_e + fresh_rows*c_mat``.

        Returns a summary for the flight record / slow-query log, or
        None when the query touched no views.
        """
        if not qlin.touched:
            return None
        reader = client_id or LOCAL_CLIENT
        with self._lock:
            self._seq += 1
            seq = self._seq
            now = time.perf_counter()
            touched: dict[str, _Record] = {}

            def resolve(name: str) -> _Record:
                record = self._current(name)
                if record is None:
                    # A view that predates the ledger (e.g. a store
                    # loaded from disk without lineage records): adopt
                    # it as generation 1 with unknown creation.
                    self.on_create(name, None, None)
                    record = self._current(name)
                touched[name] = record
                return record

            created = []
            for name in qlin.creates:
                record = resolve(name)
                if record.created_seq is None:
                    record.created_seq = seq
                    record.query = query
                    record.trace_id = trace_id
                    record.client_id = reader
                created.append(record.lineage_id)

            audit_by_view = {}
            for entry in audit:
                if getattr(entry, "signature", None) and \
                        getattr(entry, "kind", "") in (
                            "classifier-apply", "detector-apply"):
                    audit_by_view.setdefault(
                        VIEW_PREFIX + str(entry.signature), entry)

            probed = []
            for name in sorted(qlin.probes):
                hits, misses, rows = qlin.probes[name]
                record = resolve(name)
                record.hits += hits
                record.misses += misses
                record.rows_served += rows
                if hits:
                    record.readers[reader] = \
                        record.readers.get(reader, 0) + hits
                per_tuple = model_costs.get(record.model or "", 0.0)
                record.saved_vs += (
                    hits * per_tuple
                    - (hits + misses) * costs.view_read_per_key
                    - rows * costs.view_read_per_row)
                probed.append({
                    "id": record.lineage_id, "view": name,
                    "hits": hits, "misses": misses, "rows": rows,
                })

            written = []
            for name in sorted(qlin.writes):
                keys, rows, lo, hi = qlin.writes[name]
                record = resolve(name)
                record.invocations_paid += keys
                record.fresh_rows += rows
                per_tuple = model_costs.get(record.model or "", 0.0)
                record.materialize_vs += (
                    keys * per_tuple + rows * costs.materialize_per_row)
                if lo is not None:
                    record.frame_lo = (lo if record.frame_lo is None
                                       else min(record.frame_lo, lo))
                    record.frame_hi = (hi if record.frame_hi is None
                                       else max(record.frame_hi, hi))
                written.append(record.lineage_id)

            # Derivation edges: the plan decomposed each extended view's
            # predicate as UNION(INTER(p, h), p - h) over probed content
            # (Rule I / Algorithm 1); the ops recorded on the edge come
            # from the target's own reuse-decision audit record.
            for name in sorted(set(qlin.writes) | set(qlin.creates)):
                target = touched[name]
                entry = audit_by_view.get(name)
                if target.predicate is None and entry is not None:
                    target.predicate = getattr(entry, "query_predicate",
                                               None)
                ops = []
                if entry is not None:
                    if getattr(entry, "intersection", None):
                        ops.append("INTER")
                    if getattr(entry, "difference", None):
                        ops.append("DIFF")
                for source_name, (hits, _m, _r) in qlin.probes.items():
                    if not hits:
                        continue
                    source = touched[source_name]
                    if source_name == name:
                        target.edges.add((source.lineage_id, "UNION"))
                    else:
                        for op in ops or ("UNION",):
                            target.edges.add((source.lineage_id, op))

            for name, record in touched.items():
                if name in view_bytes:
                    record.bytes = view_bytes[name]
                record.last_access_seq = seq
                record.last_access_wall = now

            return {
                "touched": sorted(r.lineage_id for r in touched.values()),
                "created": created,
                "written": written,
                "probed": probed,
            }

    def attach_flight(self, lineage_ids, flight_id: str | None) -> None:
        """Stamp the creating flight id (assigned at flight finish)."""
        if not flight_id:
            return
        with self._lock:
            for lineage_id in lineage_ids:
                record = self._records.get(lineage_id)
                if record is not None and record.flight_id is None:
                    record.flight_id = flight_id

    def refresh_bytes(self, view_bytes: dict[str, int]) -> None:
        """Update live-generation byte sizes (e.g. after eviction)."""
        with self._lock:
            for name, nbytes in view_bytes.items():
                record = self._current(name)
                if record is not None:
                    record.bytes = nbytes

    # -- queries ----------------------------------------------------------

    def export_record(self, lineage_id: str) -> dict | None:
        with self._lock:
            record = self._records.get(lineage_id)
            return record.export() if record is not None else None

    def export_current(self, name: str) -> dict | None:
        with self._lock:
            record = self._current(name)
            return record.export() if record is not None else None

    def export_records(self) -> list[dict]:
        """All records, sorted by lineage id (the JSONL export order)."""
        with self._lock:
            return [self._records[k].export()
                    for k in sorted(self._records)]

    def net_benefit(self, name: str) -> float | None:
        """Net benefit of the live generation of ``name``, if tracked."""
        with self._lock:
            record = self._current(name)
            return record.net_benefit if record is not None else None

    def ranking(self) -> list[dict]:
        """Records ranked by ``net_benefit`` (descending, id tiebreak)."""
        records = self.export_records()
        records.sort(key=lambda r: (-r["net_benefit"], r["lineage_id"]))
        return records

    def wasted(self) -> list[dict]:
        """Materialized but never re-read: pure sunk cost so far."""
        return [r for r in self.export_records()
                if r["hits"] == 0 and r["invocations_paid"] > 0]

    def graph(self) -> dict:
        """The derivation DAG as ``{"nodes": [...], "edges": [...]}``."""
        records = self.export_records()
        edges = []
        for record in records:
            for edge in record["edges"]:
                edges.append({
                    "source": edge["source"],
                    "target": record["lineage_id"],
                    "op": edge["op"],
                })
        edges.sort(key=lambda e: (e["source"], e["target"], e["op"]))
        nodes = [{
            "id": r["lineage_id"], "view": r["view"],
            "status": r["status"], "net_benefit": r["net_benefit"],
        } for r in records]
        return {"nodes": nodes, "edges": edges}

    def to_dot(self) -> str:
        """Graphviz rendering of :meth:`graph`."""
        graph = self.graph()
        lines = ["digraph lineage {", "  rankdir=LR;"]
        for node in graph["nodes"]:
            label = (f"{node['id']}\\n{node['status']} "
                     f"net={node['net_benefit']:+.4f}s")
            lines.append(f'  "{node["id"]}" [label="{label}"];')
        for edge in graph["edges"]:
            lines.append(
                f'  "{edge["source"]}" -> "{edge["target"]}" '
                f'[label="{edge["op"]}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> list[dict]:
        """Volatile per-view gauges for Prometheus / the dashboard.

        Wall-clock age and idle time are measured from this process's
        monotonic clock (restored records restart their age at
        recovery); everything else mirrors the stable export.
        """
        now = time.perf_counter()
        with self._lock:
            rows = []
            for key in sorted(self._records):
                record = self._records[key]
                rows.append({
                    "id": record.lineage_id,
                    "view": record.name,
                    "status": record.status,
                    "bytes": record.bytes,
                    "hits": record.hits,
                    "rows_served": record.rows_served,
                    "net_benefit": record.net_benefit,
                    "age_s": max(0.0, now - record.created_wall),
                    "idle_s": max(0.0, now - record.last_access_wall),
                })
            return rows

    # -- persistence -------------------------------------------------------

    def restore(self, payloads) -> None:
        """Rebuild ledger state from persisted export records.

        Later records for the same lineage id win (the control log is
        append-only with upsert semantics); generation counters and the
        logical clock resume at the maxima seen.
        """
        with self._lock:
            for payload in payloads:
                record = _Record.restore(payload)
                self._records[record.lineage_id] = record
            for record in self._records.values():
                if record.generation > self._gen.get(record.name, 0):
                    self._gen[record.name] = record.generation
                for seq in (record.created_seq, record.last_access_seq):
                    if seq is not None and seq > self._seq:
                        self._seq = seq
