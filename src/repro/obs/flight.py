"""Per-query flight recorder: one wide event per finished query.

Spans (:mod:`repro.obs.trace`) answer *what a query computed*; the
flight record answers *where its wall time went under concurrency*.
Each finished SELECT produces exactly one ``{"type": "flight"}`` event —
schema-validated against ``tests/schemas/flight.schema.json`` — that
assembles, from spans, counters, and the wait-time instrumentation this
module anchors:

* **admission wait** — submit-to-worker-start gap, deposited by
  :class:`~repro.server.server.EvaServer` before the query runs;
* **per-lock-class RW-lock wait** — the contention listener installed on
  :class:`~repro.server.locks.RWLock` forwards wait seconds here;
* **batcher wait** — leader windows vs follower rides and the dispatch
  window occupancy (:class:`~repro.server.batcher.InferenceBatcher`);
* **store I/O** — WAL append/fsync, snapshot, and promotion seconds
  (:mod:`repro.store.wal` / :mod:`repro.store.durable`);
* **morsel skew** — per-morsel wall durations of a parallel run
  (:mod:`repro.executor.parallel`);
* plus kernel fallbacks, the #TI/#DI hit/miss breakdown, and the summed
  Eq. 3/4 costs of the plan's reuse decisions.

Instrumented components never hold a reference to a recorder: they call
the module-level hooks (:func:`record_lock_wait`, :func:`record_store_io`,
:func:`record_inference`, :func:`record_batcher_wait`,
:func:`record_morsels`), which resolve the **thread-local**
:class:`FlightContext` installed by the session for the duration of the
query.  With no context installed every hook is a dictionary miss — no
``perf_counter`` calls, no allocation — so library code paths that never
asked for flight data pay nothing.  Morsel worker threads do not inherit
the context; their wall time reaches the record through the morsel-skew
summary instead (the driver thread records it).

Stage accounting: ``queueing + contention + inference + store-io +
compute == total_s`` by construction (compute is the residual), where
``total_s = queue_wait_s + wall_s``.  The identity is what the 8-client
concurrency test asserts, and what makes :func:`repro.obs.slo.attribute`
a partition of real time rather than a guess.

Ids are deterministic per-recorder counters (``f000001``), following the
tracer's hash-free convention, so flight streams are stable under
``PYTHONHASHSEED=random``.
"""

from __future__ import annotations

import threading

from repro.obs.slo import STAGES, SloTracker, attribute

__all__ = [
    "FlightContext", "FlightRecorder", "FlightStats", "STAGES",
    "current_flight", "record_batcher_wait", "record_inference",
    "record_lock_wait", "record_morsels", "record_store_io",
]

#: Store I/O kinds a context accumulates (fixed so the record — and its
#: schema — stay wide-but-closed).
STORE_IO_KINDS = ("wal_append", "fsync", "snapshot", "promotion")


class FlightContext:
    """Mutable per-query accumulator, installed thread-locally.

    Not thread-safe by design: exactly one worker thread executes a
    query between ``begin`` and ``finish`` (morsel threads do not see
    the context — see module docstring).
    """

    __slots__ = ("queue_wait_s", "lock_waits", "store_io", "inference_s",
                 "leader_windows", "follower_rides", "batcher_wait_s",
                 "max_window_requests", "morsel_walls")

    def __init__(self, queue_wait_s: float = 0.0):
        self.queue_wait_s = max(0.0, queue_wait_s)
        #: lock class -> {"read_s", "write_s", "waits"}
        self.lock_waits: dict[str, dict] = {}
        self.store_io = {kind: 0.0 for kind in STORE_IO_KINDS}
        self.inference_s = 0.0
        self.leader_windows = 0
        self.follower_rides = 0
        self.batcher_wait_s = 0.0
        self.max_window_requests = 0
        self.morsel_walls: list[float] = []

    # -- hook targets --------------------------------------------------------

    def add_lock_wait(self, lock_class: str, kind: str,
                      seconds: float) -> None:
        entry = self.lock_waits.get(lock_class)
        if entry is None:
            entry = {"read_s": 0.0, "write_s": 0.0, "waits": 0}
            self.lock_waits[lock_class] = entry
        entry["read_s" if kind == "read" else "write_s"] += seconds
        entry["waits"] += 1

    def add_store_io(self, kind: str, seconds: float) -> None:
        self.store_io[kind] = self.store_io.get(kind, 0.0) + seconds

    def add_inference(self, seconds: float) -> None:
        self.inference_s += seconds

    def add_batcher_wait(self, role: str, seconds: float,
                         window_requests: int) -> None:
        if role == "leader":
            self.leader_windows += 1
        else:
            self.follower_rides += 1
        self.batcher_wait_s += seconds
        if window_requests > self.max_window_requests:
            self.max_window_requests = window_requests

    def set_morsels(self, wall_seconds) -> None:
        self.morsel_walls = [float(w) for w in wall_seconds]

    # -- derived -------------------------------------------------------------

    @property
    def contention_s(self) -> float:
        return sum(entry["read_s"] + entry["write_s"]
                   for entry in self.lock_waits.values())

    @property
    def store_io_s(self) -> float:
        return sum(self.store_io.values())


# One slot per thread; hooks are no-ops when it is empty.
_ACTIVE = threading.local()


def current_flight() -> FlightContext | None:
    """The query flight context of the calling thread, if any."""
    return getattr(_ACTIVE, "ctx", None)


def record_lock_wait(lock_class: str, kind: str, seconds: float) -> None:
    ctx = current_flight()
    if ctx is not None:
        ctx.add_lock_wait(lock_class, kind, seconds)


def record_store_io(kind: str, seconds: float) -> None:
    ctx = current_flight()
    if ctx is not None:
        ctx.add_store_io(kind, seconds)


def record_inference(seconds: float) -> None:
    ctx = current_flight()
    if ctx is not None:
        ctx.add_inference(seconds)


def record_batcher_wait(role: str, seconds: float,
                        window_requests: int) -> None:
    ctx = current_flight()
    if ctx is not None:
        ctx.add_batcher_wait(role, seconds, window_requests)


def record_morsels(wall_seconds) -> None:
    ctx = current_flight()
    if ctx is not None:
        ctx.set_morsels(wall_seconds)


class FlightStats:
    """Thread-safe aggregate over finished flight records.

    One instance is shared server-wide (every client's recorder feeds
    it); it backs the ``eva_flight_*`` Prometheus family and the
    ``repro top`` stage columns without re-reading the event stream.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records = 0
        self._over_slo = 0
        self._stage_seconds = {stage: 0.0 for stage in STAGES}
        self._dominant = {stage: 0 for stage in STAGES}
        self._over_slo_by_stage = {stage: 0 for stage in STAGES}

    def observe(self, record: dict) -> None:
        stages = record.get("stages", {})
        with self._lock:
            self._records += 1
            for stage in STAGES:
                self._stage_seconds[stage] += stages.get(stage, 0.0)
            self._dominant[record["dominant_stage"]] += 1
            if record.get("over_slo"):
                self._over_slo += 1
                self._over_slo_by_stage[record["dominant_stage"]] += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "records": self._records,
                "over_slo": self._over_slo,
                "stage_seconds": dict(self._stage_seconds),
                "dominant": dict(self._dominant),
                "over_slo_by_stage": dict(self._over_slo_by_stage),
            }

    @staticmethod
    def merge_snapshots(snapshots: list) -> dict:
        """Field-wise sum of per-process :meth:`snapshot` dicts.

        Every field is a count or a seconds total, so the fleet rollup
        is a plain associative sum — no windows or quantiles involved.
        """
        merged = {"records": 0, "over_slo": 0, "stage_seconds": {},
                  "dominant": {}, "over_slo_by_stage": {}}
        for snap in snapshots:
            if not snap:
                continue
            merged["records"] += snap.get("records", 0)
            merged["over_slo"] += snap.get("over_slo", 0)
            for key in ("stage_seconds", "dominant", "over_slo_by_stage"):
                for stage, value in snap.get(key, {}).items():
                    merged[key][stage] = merged[key].get(stage, 0) + value
        return merged


class FlightRecorder:
    """Assembles and emits one flight record per finished query.

    One recorder per session; under the server every client's recorder
    shares the :class:`~repro.obs.slo.SloTracker` and
    :class:`FlightStats` so SLO burn and stage rollups are fleet-wide
    while flight ids stay per-client deterministic.
    """

    def __init__(self, tracer, *, slo: SloTracker | None = None,
                 stats: FlightStats | None = None):
        self._tracer = tracer
        self.slo = slo if slo is not None else SloTracker()
        self.stats = stats if stats is not None else FlightStats()
        self._lock = threading.Lock()
        self._next_id = 1
        self._pending_queue_wait = 0.0
        self.emitted = 0

    # -- server seam ---------------------------------------------------------

    def deposit_queue_wait(self, seconds: float) -> None:
        """Stage the admission wait of the query about to run.

        Called by the server worker (same thread, before ``execute``);
        consumed by the next :meth:`begin` and cleared on statements
        that produce no flight record (DDL), so a wait can never leak
        onto a later query.
        """
        self._pending_queue_wait = max(0.0, seconds)

    def take_queue_wait(self) -> float:
        wait = self._pending_queue_wait
        self._pending_queue_wait = 0.0
        return wait

    # -- lifecycle -----------------------------------------------------------

    def begin(self, queue_wait_s: float = 0.0) -> FlightContext:
        """Install a fresh context as the thread's active flight."""
        ctx = FlightContext(queue_wait_s)
        _ACTIVE.ctx = ctx
        return ctx

    def abort(self) -> None:
        """Drop the active context (query raised; no record)."""
        _ACTIVE.ctx = None

    def _new_flight_id(self) -> str:
        with self._lock:
            flight_id = f"f{self._next_id:06d}"
            self._next_id += 1
        return flight_id

    def finish(self, ctx: FlightContext, *, query: str,
               trace_id: str | None, wall_seconds: float,
               virtual_seconds: float, virtual_breakdown: dict,
               rows_returned: int, cache_hit: bool, reused: bool,
               kernel_fallbacks: int, invocations: dict,
               reuse: dict, views: dict | None = None) -> dict:
        """Assemble, classify, and emit the record; returns it.

        Also uninstalls the thread's active context, feeds the shared
        SLO tracker (total latency = queueing + wall) and the aggregate
        stats.
        """
        _ACTIVE.ctx = None
        wall = max(0.0, wall_seconds)
        contention = ctx.contention_s
        inference = ctx.inference_s
        store_io = ctx.store_io_s
        compute = max(0.0, wall - contention - inference - store_io)
        total = ctx.queue_wait_s + wall
        stages = {
            "queueing": round(ctx.queue_wait_s, 9),
            "contention": round(contention, 9),
            "inference": round(inference, 9),
            "store-io": round(store_io, 9),
            "compute": round(compute, 9),
        }
        over_slo = self.slo.observe(total)
        dominant = attribute(stages)
        walls = ctx.morsel_walls
        mean_wall = (sum(walls) / len(walls)) if walls else 0.0
        record = {
            "type": "flight",
            "flight_id": self._new_flight_id(),
            "trace_id": trace_id,
            "client_id": getattr(self._tracer, "client_id", None),
            "query": query,
            "status": "ok",
            "queue_wait_s": round(ctx.queue_wait_s, 9),
            "wall_s": round(wall, 9),
            "total_s": round(total, 9),
            "virtual_s": round(virtual_seconds, 9),
            "virtual_breakdown": {k: round(v, 9)
                                  for k, v in virtual_breakdown.items()},
            "rows_returned": rows_returned,
            "cache_hit": bool(cache_hit),
            "reused": bool(reused),
            "stages": stages,
            "dominant_stage": dominant,
            "over_slo": over_slo,
            "lock_waits": {
                name: {"read_s": round(entry["read_s"], 9),
                       "write_s": round(entry["write_s"], 9),
                       "waits": entry["waits"]}
                for name, entry in sorted(ctx.lock_waits.items())
            },
            "batcher": {
                "leader_windows": ctx.leader_windows,
                "follower_rides": ctx.follower_rides,
                "wait_s": round(ctx.batcher_wait_s, 9),
                "max_window_requests": ctx.max_window_requests,
            },
            "store_io": {
                **{kind: round(ctx.store_io.get(kind, 0.0), 9)
                   for kind in STORE_IO_KINDS},
            },
            "morsels": {
                "count": len(walls),
                "max_wall_s": round(max(walls), 9) if walls else 0.0,
                "mean_wall_s": round(mean_wall, 9),
                "skew": round(max(walls) / mean_wall, 6)
                if walls and mean_wall > 0 else 0.0,
            },
            "kernel_fallbacks": kernel_fallbacks,
            "invocations": dict(invocations),
            "reuse": dict(reuse),
            "views": {
                "probed": list((views or {}).get("probed", ())),
                "created": list((views or {}).get("created", ())),
                "written": list((views or {}).get("written", ())),
            },
        }
        self.stats.observe(record)
        with self._lock:
            self.emitted += 1
        self._tracer.emit_event(record)
        return record
