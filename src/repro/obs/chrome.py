"""Chrome-trace / Perfetto export of recorded spans.

Converts :class:`~repro.obs.trace.Span` records into the Chrome trace
event format (the ``{"traceEvents": [...]}`` JSON that
``chrome://tracing``, Perfetto and speedscope all open), so a ``repro
trace`` run can be inspected on a real flame-graph timeline instead of
the ASCII tree.

Spans deliberately store only *durations* (wall seconds and virtual
seconds; see :mod:`repro.obs.trace`), never absolute timestamps — that
is what keeps traces byte-stable across processes.  The exporter
therefore reconstructs a **synthetic deterministic timeline**:

* traces are laid out sequentially in trace-id order;
* within a trace, each span's children are laid out sequentially from
  the parent's start, in span-id order (span ids are allocated
  monotonically, so this matches actual nesting order);
* a span's displayed duration is ``max(own wall time, sum of children)``
  — a child measured slightly longer than its parent (scheduler noise)
  still nests inside it.

The result is not a literal wall-clock record but an exact rendering of
the measured hierarchy and proportions, and it is identical for
identical workloads under ``PYTHONHASHSEED=random``.

All events are complete events (``"ph": "X"``) with microsecond
``ts``/``dur``; virtual seconds and the span's tags ride in ``args``.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Minimum rendered duration so zero-length spans stay visible (µs).
MIN_DURATION_US = 1


def _trace_sort_key(trace_id: str) -> tuple:
    try:
        return (0, int(trace_id[1:]))
    except (ValueError, IndexError):
        return (1, trace_id)


def _span_sort_key(span) -> tuple:
    try:
        return (0, int(span.span_id[1:]))
    except (ValueError, IndexError):
        return (1, span.span_id)


def _duration_us(span, children_by_parent) -> int:
    """max(own wall, sum of children) in whole microseconds, memoized
    implicitly by the bottom-up call order."""
    own = int(round(span.wall_seconds * 1e6))
    child_total = sum(
        _duration_us(child, children_by_parent)
        for child in children_by_parent.get(span.span_id, ()))
    return max(own, child_total, MIN_DURATION_US)


def chrome_trace_events(spans) -> list[dict]:
    """Chrome trace events for ``spans`` (any iterable of Span)."""
    spans = sorted(spans, key=_span_sort_key)
    by_trace: dict[str, list] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    events: list[dict] = [
        {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
         "args": {"name": "repro"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "query lifecycle"}},
    ]
    cursor = 0
    for trace_id in sorted(by_trace, key=_trace_sort_key):
        trace_spans = by_trace[trace_id]
        present = {span.span_id for span in trace_spans}
        children: dict[str | None, list] = {}
        roots = []
        for span in trace_spans:
            if span.parent_id in present:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)

        def emit(span, start: int) -> int:
            duration = _duration_us(span, children)
            args: dict = {
                "span_id": span.span_id,
                "trace_id": span.trace_id,
                "virtual_s": round(span.virtual_seconds, 9),
            }
            if span.virtual_breakdown:
                args["virtual_breakdown"] = {
                    k: round(v, 9)
                    for k, v in sorted(span.virtual_breakdown.items())}
            if span.client_id is not None:
                args["client_id"] = span.client_id
            for key in sorted(span.tags):
                args.setdefault(f"tag.{key}", str(span.tags[key]))
            events.append({
                "name": span.name,
                "cat": "eva",
                "ph": "X",
                "ts": start,
                "dur": duration,
                "pid": 1,
                "tid": 1,
                "args": args,
            })
            child_start = start
            for child in children.get(span.span_id, ()):
                child_start += emit(child, child_start)
            return duration

        for root in roots:
            cursor += emit(root, cursor)
    return events


def chrome_trace_document(spans) -> dict:
    """The full Chrome trace JSON document for ``spans``."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.chrome",
            "timeline": "synthetic-deterministic",
        },
    }


def write_chrome_trace(path, spans) -> int:
    """Write the Chrome trace JSON for ``spans``; returns event count."""
    document = chrome_trace_document(spans)
    Path(path).write_text(json.dumps(document, indent=1) + "\n",
                          encoding="utf-8")
    return len(document["traceEvents"])
