"""Streaming latency histograms, SLO burn accounting, and tail attribution.

This module is the *policy* half of the flight-recorder pair
(:mod:`repro.obs.flight` is the measurement half): it turns per-query
latencies into the three signals a service operator actually watches —

* **quantiles** — :class:`LatencyHistogram` keeps fixed-bucket counts
  (Prometheus-style cumulative-on-export) and estimates p50/p95/p99 by
  linear interpolation inside the owning bucket.  Streaming, bounded,
  thread-safe; never stores raw samples.
* **SLO burn** — :class:`SloTracker` compares each observed latency
  against the ``EvaConfig.slo_*`` targets and maintains burn-rate
  counters: the fraction of queries over a target divided by that
  objective's error budget (a p99 objective tolerates 1% violations, so
  a burn rate of 1.0 means the budget is being consumed exactly as
  provisioned; > 1.0 means the SLO will be missed over the window).
* **attribution** — :func:`attribute` classifies a query's dominant
  stage from its flight-record stage breakdown using the fixed taxonomy
  :data:`STAGES` (``queueing | contention | inference | store-io |
  compute``).  The tail-latency attribution pass runs this over every
  over-SLO query and feeds the result to the
  :class:`~repro.obs.slowlog.SlowQueryLog` and the
  ``eva_slo_over_total{stage=...}`` Prometheus family.

Latencies here are **wall seconds** (``time.perf_counter`` intervals):
under concurrency the interesting failures — admission queueing, lock
convoys, fsync stalls — are real-time phenomena the virtual clock by
design cannot see (see docs/observability.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

#: The attribution taxonomy, in tie-break priority order: when two
#: stages account for the same time, the earlier entry wins (queueing
#: before contention before inference ...), so attribution is
#: deterministic under ``PYTHONHASHSEED=random``.
STAGES = ("queueing", "contention", "inference", "store-io", "compute")

#: Default latency buckets (seconds).  Chosen to straddle the bench
#: workloads: sub-millisecond hit probes up to tens of seconds of
#: saturated-queue tail.  The last bucket is open-ended (+Inf).
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Isolated point-in-time copy of a :class:`LatencyHistogram`."""

    buckets: tuple          # upper bounds, seconds (exclusive of +Inf)
    counts: tuple           # per-bucket counts; len(buckets) + 1 (+Inf)
    count: int
    sum_seconds: float
    min_seconds: float
    max_seconds: float
    p50: float
    p95: float
    p99: float

    def to_dict(self) -> dict:
        """JSON-friendly form (server stats snapshots, ``repro top``)."""
        return {
            "count": self.count,
            "sum_s": round(self.sum_seconds, 9),
            "min_s": round(self.min_seconds, 9),
            "max_s": round(self.max_seconds, 9),
            "p50_s": round(self.p50, 9),
            "p95_s": round(self.p95, 9),
            "p99_s": round(self.p99, 9),
        }

    @classmethod
    def merge(cls, snapshots: "list[HistogramSnapshot]"
              ) -> "HistogramSnapshot":
        """Combine per-process snapshots into one fleet histogram.

        Associative and commutative (same contract as
        :meth:`~repro.obs.profiler.ProfileStore.merge`): bucket counts
        add, min/max fold, and the quantiles are re-estimated from the
        merged counts — *never* averaged from the inputs' quantiles,
        which would not compose.  All inputs must share one bucket grid
        (every histogram in this codebase uses a fixed, config-free
        grid per call site, so worker processes always agree).
        """
        snapshots = [s for s in snapshots if s is not None]
        if not snapshots:
            return LatencyHistogram().snapshot()
        buckets = snapshots[0].buckets
        for other in snapshots[1:]:
            if other.buckets != buckets:
                raise ValueError(
                    f"cannot merge histograms with different bucket "
                    f"grids: {buckets!r} vs {other.buckets!r}")
        counts = [0] * (len(buckets) + 1)
        count = 0
        total = 0.0
        minimum = 0.0
        maximum = 0.0
        for s in snapshots:
            for i, c in enumerate(s.counts):
                counts[i] += c
            if s.count:
                minimum = (s.min_seconds if count == 0
                           else min(minimum, s.min_seconds))
                maximum = max(maximum, s.max_seconds)
                count += s.count
                total += s.sum_seconds
        return cls(
            buckets=buckets,
            counts=tuple(counts),
            count=count,
            sum_seconds=total,
            min_seconds=minimum,
            max_seconds=maximum,
            p50=_quantile_from_counts(buckets, counts, count, maximum,
                                      0.50),
            p95=_quantile_from_counts(buckets, counts, count, maximum,
                                      0.95),
            p99=_quantile_from_counts(buckets, counts, count, maximum,
                                      0.99),
        )


def _quantile_from_counts(buckets, counts, count: int, maximum: float,
                          q: float) -> float:
    """Interpolated quantile over raw bucket counts (merge path).

    Mirrors :meth:`LatencyHistogram._quantile_locked` exactly, so a
    merged snapshot of one input equals that input.
    """
    if count == 0:
        return 0.0
    rank = q * count
    cumulative = 0.0
    for i, upper in enumerate(buckets):
        previous = cumulative
        cumulative += counts[i]
        if cumulative >= rank:
            if counts[i] == 0:
                return upper
            lower = buckets[i - 1] if i else 0.0
            fraction = (rank - previous) / counts[i]
            return min(lower + (upper - lower) * fraction, maximum)
    return maximum


class LatencyHistogram:
    """Fixed-bucket streaming histogram with interpolated quantiles.

    ``observe`` is O(len(buckets)) with one lock acquisition and no
    allocation — cheap enough to sit on the per-query completion path.
    Quantiles interpolate linearly within the bucket that contains the
    target rank; ranks landing in the open +Inf bucket report the
    largest observed sample (the honest answer for a bounded sketch).
    """

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS):
        if not buckets or any(b <= 0 for b in buckets) \
                or list(buckets) != sorted(set(buckets)):
            raise ValueError(
                "buckets must be positive, strictly increasing")
        self._buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self._buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        value = max(0.0, float(seconds))
        with self._lock:
            for i, upper in enumerate(self._buckets):
                if value <= upper:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1
            if self._count == 0 or value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._count += 1
            self._sum += value

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0.0
        for i, upper in enumerate(self._buckets):
            previous = cumulative
            cumulative += self._counts[i]
            if cumulative >= rank:
                if self._counts[i] == 0:
                    return upper
                lower = self._buckets[i - 1] if i else 0.0
                fraction = (rank - previous) / self._counts[i]
                return min(lower + (upper - lower) * fraction, self._max)
        return self._max  # rank fell in the open +Inf bucket

    def quantile(self, q: float) -> float:
        """Estimated latency at quantile ``q`` (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                buckets=self._buckets,
                counts=tuple(self._counts),
                count=self._count,
                sum_seconds=self._sum,
                min_seconds=self._min,
                max_seconds=self._max,
                p50=self._quantile_locked(0.50),
                p95=self._quantile_locked(0.95),
                p99=self._quantile_locked(0.99),
            )


@dataclass(frozen=True)
class SloSnapshot:
    """Point-in-time SLO accounting (``repro top``, Prometheus)."""

    target_p50: float | None
    target_p99: float | None
    observed: int
    over_p50: int
    over_p99: int
    burn_rate_p50: float
    burn_rate_p99: float
    latency: HistogramSnapshot

    @property
    def enabled(self) -> bool:
        return self.target_p50 is not None or self.target_p99 is not None

    @classmethod
    def merge(cls, snapshots: "list[SloSnapshot]") -> "SloSnapshot":
        """Fleet SLO accounting over per-process snapshots.

        Counters add, latency histograms merge bucket-wise, and burn
        rates are recomputed from the merged counters (every process
        shares the targets, which come from one config).  Associative.
        """
        snapshots = [s for s in snapshots if s is not None]
        if not snapshots:
            return cls(target_p50=None, target_p99=None, observed=0,
                       over_p50=0, over_p99=0, burn_rate_p50=0.0,
                       burn_rate_p99=0.0,
                       latency=LatencyHistogram().snapshot())
        target_p50 = snapshots[0].target_p50
        target_p99 = snapshots[0].target_p99
        observed = sum(s.observed for s in snapshots)
        over_p50 = sum(s.over_p50 for s in snapshots)
        over_p99 = sum(s.over_p99 for s in snapshots)
        burn_p50 = burn_p99 = 0.0
        if observed:
            if target_p50 is not None:
                burn_p50 = (over_p50 / observed) / SloTracker._BUDGET_P50
            if target_p99 is not None:
                burn_p99 = (over_p99 / observed) / SloTracker._BUDGET_P99
        return cls(
            target_p50=target_p50,
            target_p99=target_p99,
            observed=observed,
            over_p50=over_p50,
            over_p99=over_p99,
            burn_rate_p50=burn_p50,
            burn_rate_p99=burn_p99,
            latency=HistogramSnapshot.merge(
                [s.latency for s in snapshots]),
        )


class SloTracker:
    """Burn-rate counters over configured latency targets.

    ``p50_target`` / ``p99_target`` come from ``EvaConfig.slo_latency_p50``
    / ``slo_latency_p99`` (seconds of *total* latency: admission wait +
    execution wall).  Either may be None — the tracker still maintains
    the latency histogram so quantiles are available even without SLOs.

    A query is an **SLO violation** when it exceeds the p99 target (the
    per-query bound the tail-attribution pass keys on); the p50 target
    only feeds its own burn counter.
    """

    #: Error budgets per objective: a p50 objective tolerates half the
    #: traffic over target, a p99 objective 1%.
    _BUDGET_P50 = 0.50
    _BUDGET_P99 = 0.01

    def __init__(self, *, p50_target: float | None = None,
                 p99_target: float | None = None,
                 buckets: tuple = DEFAULT_BUCKETS):
        for name, value in (("p50_target", p50_target),
                            ("p99_target", p99_target)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if p50_target is not None and p99_target is not None \
                and p50_target > p99_target:
            raise ValueError("p50 target must not exceed the p99 target")
        self.p50_target = p50_target
        self.p99_target = p99_target
        self.latency = LatencyHistogram(buckets)
        self._lock = threading.Lock()
        self._observed = 0
        self._over_p50 = 0
        self._over_p99 = 0

    @classmethod
    def from_config(cls, config) -> "SloTracker":
        """Build from an :class:`~repro.config.EvaConfig` (duck-typed:
        any object with ``slo_latency_p50`` / ``slo_latency_p99``)."""
        return cls(p50_target=getattr(config, "slo_latency_p50", None),
                   p99_target=getattr(config, "slo_latency_p99", None))

    def is_violation(self, latency_seconds: float) -> bool:
        """Over the p99 target?  Always False when no target is set."""
        return self.p99_target is not None \
            and latency_seconds > self.p99_target

    def observe(self, latency_seconds: float) -> bool:
        """Fold one finished query in; returns :meth:`is_violation`."""
        self.latency.observe(latency_seconds)
        violation = self.is_violation(latency_seconds)
        with self._lock:
            self._observed += 1
            if self.p50_target is not None \
                    and latency_seconds > self.p50_target:
                self._over_p50 += 1
            if violation:
                self._over_p99 += 1
        return violation

    def snapshot(self) -> SloSnapshot:
        with self._lock:
            observed = self._observed
            over_p50 = self._over_p50
            over_p99 = self._over_p99
        burn_p50 = burn_p99 = 0.0
        if observed:
            if self.p50_target is not None:
                burn_p50 = (over_p50 / observed) / self._BUDGET_P50
            if self.p99_target is not None:
                burn_p99 = (over_p99 / observed) / self._BUDGET_P99
        return SloSnapshot(
            target_p50=self.p50_target,
            target_p99=self.p99_target,
            observed=observed,
            over_p50=over_p50,
            over_p99=over_p99,
            burn_rate_p50=burn_p50,
            burn_rate_p99=burn_p99,
            latency=self.latency.snapshot(),
        )


def attribute(stages: dict) -> str:
    """The dominant stage of a query's latency breakdown.

    ``stages`` maps stage names (a subset of :data:`STAGES`) to seconds.
    Ties break toward the earlier taxonomy entry; an empty or all-zero
    breakdown attributes to ``compute`` (the residual stage).
    """
    best = "compute"
    best_seconds = 0.0
    for name in STAGES:
        seconds = float(stages.get(name, 0.0))
        if seconds > best_seconds:
            best = name
            best_seconds = seconds
    return best
