"""A lightweight span API threading one trace through the query lifecycle.

A :class:`Tracer` lives on a session (one per client under the server)
and records :class:`Span` entries for each lifecycle stage — parse, bind,
optimize (with per-rule spans), model selection, execute (with
per-operator spans), and the post-execution view updates.  Every span
carries *two* durations:

* **wall seconds** — real elapsed time of the block
  (``time.perf_counter``), the honest cost of work this reproduction
  genuinely performs (symbolic analysis, plan folding);
* **virtual seconds** — the per-category delta charged to the session's
  :class:`~repro.clock.SimulationClock` while the span was open, the
  calibrated stand-in for GPU model time (see DESIGN.md).

Identifiers are **deterministic**: per-tracer monotone counters
(``t000001`` / ``s000001``), never ``hash()`` or ``id()``, so traces are
byte-stable across processes and under ``PYTHONHASHSEED=random`` (the
same guarantee :mod:`repro._rng` gives synthetic content).

Finished spans land in a bounded in-memory ring (for ``repro trace`` and
tests) and are exported as events through the tracer's
:class:`~repro.obs.sinks.TraceSink`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.clock import SimulationClock
from repro.obs.sinks import NullSink, TraceSink

#: Tag values exported verbatim; everything else is stringified.
_JSON_SCALARS = (bool, int, float, str, type(None))


@dataclass
class Span:
    """One traced stage of a query's lifecycle."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    client_id: str | None = None
    tags: dict = field(default_factory=dict)
    status: str = "ok"
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    #: Per-category virtual time charged while the span was open
    #: (category value -> seconds; only categories that moved).
    virtual_breakdown: dict[str, float] = field(default_factory=dict)
    #: Wall start marker (perf_counter) while the span is open.
    _start_wall: float = field(default=0.0, repr=False)
    _start_virtual: dict = field(default_factory=dict, repr=False)

    def tag(self, **tags) -> "Span":
        """Attach key/value annotations (chainable)."""
        self.tags.update(tags)
        return self

    def to_event(self) -> dict:
        """The JSON-serializable sink event for this span."""
        tags = {key: (value if isinstance(value, _JSON_SCALARS)
                      else str(value))
                for key, value in self.tags.items()}
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "client_id": self.client_id,
            "status": self.status,
            "wall_ms": round(self.wall_seconds * 1000.0, 6),
            "virtual_s": round(self.virtual_seconds, 9),
            "virtual_breakdown": {k: round(v, 9) for k, v
                                  in self.virtual_breakdown.items()},
            "tags": tags,
        }


class _NoopSpan:
    """Shared do-nothing span handle for disabled tracers."""

    __slots__ = ()

    def tag(self, **tags) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """Context manager that opens/closes one :class:`Span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def tag(self, **tags) -> "_SpanHandle":
        self.span.tag(**tags)
        return self

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.tags.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.span)


class Tracer:
    """Per-session span recorder with deterministic ids.

    Args:
        clock: the session's simulation clock; when provided every span
            also measures the virtual-time delta charged while open.
        sink: export target for finished spans and emitted events
            (default: :class:`~repro.obs.sinks.NullSink`).
        enabled: ``False`` turns :meth:`span` into a shared no-op handle
            — the documented zero-overhead mode.
        client_id: stamped on every span (server deployments; the
            cross-client attribution key).
        capture_operators: sessions consult this to decide whether to
            run queries through the instrumented engine and emit
            per-operator spans (``repro trace`` turns it on).
        keep: ring-buffer capacity for finished spans.
    """

    def __init__(self, clock: SimulationClock | None = None,
                 sink: TraceSink | None = None, *,
                 enabled: bool = True,
                 client_id: str | None = None,
                 capture_operators: bool = False,
                 keep: int = 2048):
        self.clock = clock
        self.sink = sink if sink is not None else NullSink()
        self.enabled = enabled
        self.client_id = client_id
        self.capture_operators = capture_operators
        self._finished: deque[Span] = deque(maxlen=keep)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_trace = 1
        self._next_span = 1
        self.last_trace_id: str | None = None

    # -- id allocation (deterministic, hash-free) ---------------------------

    def _new_trace_id(self) -> str:
        with self._lock:
            trace_id = f"t{self._next_trace:06d}"
            self._next_trace += 1
        return trace_id

    def _new_span_id(self) -> str:
        with self._lock:
            span_id = f"s{self._next_span:06d}"
            self._next_span += 1
        return span_id

    # -- span lifecycle -----------------------------------------------------

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **tags):
        """Open a span; use as a context manager.

        The first span on a thread's stack starts a new trace; nested
        spans inherit the trace and parent ids.
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = self._stack
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._new_trace_id(), None
            self.last_trace_id = trace_id
        span = Span(trace_id=trace_id, span_id=self._new_span_id(),
                    parent_id=parent_id, name=name,
                    client_id=self.client_id, tags=dict(tags))
        return _SpanHandle(self, span)

    def _push(self, span: Span) -> None:
        span._start_wall = time.perf_counter()
        if self.clock is not None:
            span._start_virtual = self.clock.breakdown()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.wall_seconds = time.perf_counter() - span._start_wall
        if self.clock is not None:
            delta: dict[str, float] = {}
            for category, value in self.clock.breakdown().items():
                diff = value - span._start_virtual.get(category, 0.0)
                if diff > 0:
                    delta[category.value] = diff
            span.virtual_breakdown = delta
            span.virtual_seconds = sum(delta.values())
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        self._record(span)

    def add_span(self, name: str, *, trace_id: str,
                 parent_id: str | None = None,
                 wall_seconds: float = 0.0,
                 virtual_seconds: float = 0.0,
                 virtual_breakdown: dict | None = None,
                 status: str = "ok", **tags) -> Span | None:
        """Record a pre-measured span (e.g. per-operator actuals that
        were collected by the instrumented engine during execution)."""
        if not self.enabled:
            return None
        span = Span(trace_id=trace_id, span_id=self._new_span_id(),
                    parent_id=parent_id, name=name,
                    client_id=self.client_id, tags=dict(tags),
                    status=status, wall_seconds=wall_seconds,
                    virtual_seconds=virtual_seconds,
                    virtual_breakdown=dict(virtual_breakdown or {}))
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)
        self.sink.emit(span.to_event())

    # -- non-span events ----------------------------------------------------

    def emit_event(self, event: dict) -> None:
        """Export a non-span event (audit records, slow queries)."""
        if self.enabled:
            self.sink.emit(event)

    # -- introspection ------------------------------------------------------

    @property
    def current_trace_id(self) -> str | None:
        """The trace id of the innermost open span on this thread."""
        stack = self._stack
        return stack[-1].trace_id if stack else None

    @property
    def current_span_id(self) -> str | None:
        """The span id of the innermost open span on this thread."""
        stack = self._stack
        return stack[-1].span_id if stack else None

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Finished spans, oldest first (optionally one trace only)."""
        with self._lock:
            snapshot = list(self._finished)
        if trace_id is None:
            return snapshot
        return [s for s in snapshot if s.trace_id == trace_id]

    def render(self, trace_id: str | None = None) -> str:
        """The hierarchical text rendering of one trace (default:
        the most recently started)."""
        trace_id = trace_id or self.last_trace_id
        if trace_id is None:
            return "(no traces recorded)"
        return render_spans(self.spans(trace_id))


def _span_sort_key(span: Span) -> int:
    return int(span.span_id[1:])


def render_spans(spans: list[Span]) -> str:
    """Render spans as an indented tree with wall + virtual actuals.

    Spans whose parent is missing from ``spans`` (ring-buffer eviction)
    are promoted to roots, so partial traces still render.
    """
    if not spans:
        return "(no spans)"
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    roots: list[Span] = []
    for span in sorted(spans, key=_span_sort_key):
        if span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        lines.append("  " * depth + _format_span(span))
        for child in children.get(span.span_id, []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def _format_span(span: Span) -> str:
    parts = [span.name]
    if span.virtual_seconds:
        parts.append(f"virtual={span.virtual_seconds:.3f}s")
    parts.append(f"wall={span.wall_seconds * 1000:.2f}ms")
    if span.status != "ok":
        parts.append(f"status={span.status}")
    for key in sorted(span.tags):
        value = span.tags[key]
        text = str(value)
        if len(text) > 48:
            text = text[:45] + "..."
        parts.append(f"{key}={text}")
    return f"{parts[0]}  [{span.span_id}] " + " ".join(parts[1:])
