"""Continuous profiling: rolling per-model / per-operator telemetry.

The tracer (:mod:`repro.obs.trace`) answers "what happened in *this*
query"; the profiler answers "what has been happening *lately*".  A
:class:`ProfileStore` accumulates two rollups across every executed
query:

* **per model** — invocation counts split into reused (served from
  materialized views) vs executed (the model actually ran), plus the
  virtual seconds the executor charged for the executed invocations.
  The ratio ``virtual_seconds / executed`` is the *observed* per-tuple
  cost — what evaluation really costs on the simulation clock, as
  opposed to the ``c_e`` the planner *believes* (the per-tuple cost
  snapshotted into the catalog at UDF registration).  The gap between
  the two is exactly what :mod:`repro.obs.calibration` detects and
  (optionally) repairs.
* **per operator** — self wall seconds, self virtual seconds, rows,
  batches, kernel-mode counts and row-interpreter fallback batches,
  aggregated by operator label from the instrumented engine's
  :class:`~repro.executor.instrument.OperatorStats`.  Available whenever
  the session runs instrumented (``repro profile`` / ``repro trace``
  turn that on); the per-model rollup needs no instrumentation at all.

The store is thread-safe (the server shares one across all clients) and
persists to JSONL — one ``profile_meta`` header plus one
``profile_model`` / ``profile_operator`` record per rollup entry — so
profiles survive process restarts and merge across runs
(:meth:`ProfileStore.load_jsonl` / :meth:`ProfileStore.merge`).

This module deliberately does **not** import the legacy
:mod:`repro.metrics` collector (enforced by ``tests/test_obs_imports.py``):
sessions push plain numbers into the store, keeping the two metric
surfaces decoupled.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ModelProfile:
    """Rolling invocation/cost telemetry for one physical model."""

    model: str
    #: Total invocations observed (#TI contribution).
    invocations: int = 0
    #: Invocations served from materialized views.
    reused: int = 0
    #: Virtual seconds the executor charged for executed invocations.
    virtual_seconds: float = 0.0

    @property
    def executed(self) -> int:
        """Invocations where the model actually ran."""
        return self.invocations - self.reused

    @property
    def observed_per_tuple_cost(self) -> float | None:
        """Observed c_e: charged virtual seconds per executed invocation.

        ``None`` until at least one invocation executed (a 100% hit-rate
        model never reveals its true cost).
        """
        if self.executed <= 0:
            return None
        return self.virtual_seconds / self.executed

    @property
    def hit_ratio(self) -> float:
        if self.invocations <= 0:
            return 0.0
        return self.reused / self.invocations

    def to_event(self) -> dict:
        observed = self.observed_per_tuple_cost
        return {
            "type": "profile_model",
            "model": self.model,
            "invocations": self.invocations,
            "reused": self.reused,
            "executed": self.executed,
            "virtual_seconds": round(self.virtual_seconds, 9),
            "observed_per_tuple_cost": (round(observed, 12)
                                        if observed is not None else None),
        }


@dataclass
class OperatorProfile:
    """Rolling self-time telemetry for one operator label."""

    operator: str
    calls: int = 0
    rows: int = 0
    batches: int = 0
    #: Self wall seconds (subtree minus children; instrumented runs).
    self_wall_seconds: float = 0.0
    #: Self virtual seconds.
    self_virtual_seconds: float = 0.0
    #: Operator instances per kernel mode (vectorized/row-fallback/row).
    kernel_modes: dict[str, int] = field(default_factory=dict)
    #: Batches re-run through the row interpreter at runtime.
    fallback_batches: int = 0

    def to_event(self) -> dict:
        return {
            "type": "profile_operator",
            "operator": self.operator,
            "calls": self.calls,
            "rows": self.rows,
            "batches": self.batches,
            "self_wall_seconds": round(self.self_wall_seconds, 9),
            "self_virtual_seconds": round(self.self_virtual_seconds, 9),
            "kernel_modes": dict(sorted(self.kernel_modes.items())),
            "fallback_batches": self.fallback_batches,
        }


@dataclass(frozen=True)
class ProfileSnapshot:
    """An immutable point-in-time copy of a :class:`ProfileStore`."""

    queries: int
    models: dict[str, ModelProfile]
    operators: dict[str, OperatorProfile]

    def top_operators(self, n: int = 10) -> list[OperatorProfile]:
        """Operators by self wall seconds, descending (name tiebreak)."""
        return sorted(self.operators.values(),
                      key=lambda p: (-p.self_wall_seconds, p.operator))[:n]

    def top_models(self, n: int = 10) -> list[ModelProfile]:
        """Models by charged virtual seconds, descending (name tiebreak)."""
        return sorted(self.models.values(),
                      key=lambda p: (-p.virtual_seconds, p.model))[:n]


class ProfileStore:
    """Thread-safe rollup store with JSONL persistence.

    One store per session; the server replaces it with a single shared
    instance so every client's telemetry lands in the same rollups
    (mirroring how materialized views are shared).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._models: dict[str, ModelProfile] = {}
        self._operators: dict[str, OperatorProfile] = {}
        self._queries = 0

    # -- ingestion ----------------------------------------------------------

    def observe_query(self) -> None:
        with self._lock:
            self._queries += 1

    def observe_model(self, model: str, invocations: int, reused: int,
                      virtual_seconds: float) -> None:
        """Fold one query's invocation telemetry for ``model``."""
        if invocations <= 0:
            return
        with self._lock:
            profile = self._models.get(model)
            if profile is None:
                profile = self._models[model] = ModelProfile(model)
            profile.invocations += invocations
            profile.reused += reused
            profile.virtual_seconds += virtual_seconds

    def observe_operator(self, operator: str, *, rows: int = 0,
                         batches: int = 0,
                         self_wall_seconds: float = 0.0,
                         self_virtual_seconds: float = 0.0,
                         kernel_mode: str | None = None,
                         fallback_batches: int = 0) -> None:
        """Fold one operator instance's actuals into its label rollup."""
        with self._lock:
            profile = self._operators.get(operator)
            if profile is None:
                profile = self._operators[operator] = \
                    OperatorProfile(operator)
            profile.calls += 1
            profile.rows += rows
            profile.batches += batches
            profile.self_wall_seconds += self_wall_seconds
            profile.self_virtual_seconds += self_virtual_seconds
            if kernel_mode is not None:
                profile.kernel_modes[kernel_mode] = \
                    profile.kernel_modes.get(kernel_mode, 0) + 1
            profile.fallback_batches += fallback_batches

    def observe_operator_stats(self, stats_list) -> None:
        """Fold a plan's :class:`~repro.executor.instrument.OperatorStats`.

        Duck-typed on the stats attributes so this module stays free of
        executor imports.
        """
        for stats in stats_list:
            self.observe_operator(
                stats.label,
                rows=stats.rows_out,
                batches=stats.batches_out,
                self_wall_seconds=stats.self_elapsed,
                self_virtual_seconds=stats.self_virtual,
                kernel_mode=stats.kernel_mode,
                fallback_batches=stats.kernel_fallbacks,
            )

    # -- introspection ------------------------------------------------------

    @property
    def queries(self) -> int:
        with self._lock:
            return self._queries

    def snapshot(self) -> ProfileSnapshot:
        """A deep, immutable copy safe to read without the lock."""
        with self._lock:
            models = {
                name: ModelProfile(p.model, p.invocations, p.reused,
                                   p.virtual_seconds)
                for name, p in self._models.items()
            }
            operators = {
                name: OperatorProfile(
                    p.operator, p.calls, p.rows, p.batches,
                    p.self_wall_seconds, p.self_virtual_seconds,
                    dict(p.kernel_modes), p.fallback_batches)
                for name, p in self._operators.items()
            }
            return ProfileSnapshot(self._queries, models, operators)

    def top_operators(self, n: int = 10) -> list[OperatorProfile]:
        return self.snapshot().top_operators(n)

    def top_models(self, n: int = 10) -> list[ModelProfile]:
        return self.snapshot().top_models(n)

    # -- persistence --------------------------------------------------------

    def events(self) -> list[dict]:
        """The JSONL records for this store, deterministically ordered."""
        snapshot = self.snapshot()
        records: list[dict] = [{
            "type": "profile_meta",
            "queries": snapshot.queries,
            "models": len(snapshot.models),
            "operators": len(snapshot.operators),
        }]
        for name in sorted(snapshot.models):
            records.append(snapshot.models[name].to_event())
        for name in sorted(snapshot.operators):
            records.append(snapshot.operators[name].to_event())
        return records

    def save_jsonl(self, path) -> int:
        """Write the rollups as JSONL; returns the record count."""
        records = self.events()
        text = "".join(json.dumps(r, sort_keys=True) + "\n"
                       for r in records)
        Path(path).write_text(text, encoding="utf-8")
        return len(records)

    @classmethod
    def load_jsonl(cls, path) -> "ProfileStore":
        """Rebuild a store from :meth:`save_jsonl` output."""
        store = cls()
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "profile_meta":
                store._queries += int(record.get("queries", 0))
            elif kind == "profile_model":
                store.observe_model(
                    record["model"], int(record["invocations"]),
                    int(record["reused"]),
                    float(record["virtual_seconds"]))
            elif kind == "profile_operator":
                profile = store._operators.get(record["operator"])
                if profile is None:
                    profile = store._operators[record["operator"]] = \
                        OperatorProfile(record["operator"])
                profile.calls += int(record["calls"])
                profile.rows += int(record["rows"])
                profile.batches += int(record["batches"])
                profile.self_wall_seconds += \
                    float(record["self_wall_seconds"])
                profile.self_virtual_seconds += \
                    float(record["self_virtual_seconds"])
                for mode, count in record.get("kernel_modes", {}).items():
                    profile.kernel_modes[mode] = \
                        profile.kernel_modes.get(mode, 0) + int(count)
                profile.fallback_batches += \
                    int(record.get("fallback_batches", 0))
        return store

    def merge(self, other: "ProfileStore | ProfileSnapshot") -> None:
        """Fold another store's rollups into this one."""
        snapshot = (other.snapshot() if isinstance(other, ProfileStore)
                    else other)
        with self._lock:
            self._queries += snapshot.queries
        for name in sorted(snapshot.models):
            p = snapshot.models[name]
            self.observe_model(p.model, p.invocations, p.reused,
                               p.virtual_seconds)
        for name in sorted(snapshot.operators):
            p = snapshot.operators[name]
            with self._lock:
                mine = self._operators.get(name)
                if mine is None:
                    mine = self._operators[name] = OperatorProfile(name)
                mine.calls += p.calls
                mine.rows += p.rows
                mine.batches += p.batches
                mine.self_wall_seconds += p.self_wall_seconds
                mine.self_virtual_seconds += p.self_virtual_seconds
                for mode, count in p.kernel_modes.items():
                    mine.kernel_modes[mode] = \
                        mine.kernel_modes.get(mode, 0) + count
                mine.fallback_batches += p.fallback_batches


def render_profile(snapshot: ProfileSnapshot, top: int = 10) -> str:
    """Human-readable profile tables (``repro profile`` output)."""
    lines = [f"profile over {snapshot.queries} queries"]
    operators = snapshot.top_operators(top)
    if operators:
        lines.append("")
        lines.append(f"top {len(operators)} operators by self wall time:")
        lines.append(f"  {'operator':<20} {'calls':>6} {'rows':>10} "
                     f"{'self wall':>11} {'self virt':>11} "
                     f"{'kernels':<24} {'fallback':>8}")
        for p in operators:
            kernels = ",".join(f"{mode}:{count}" for mode, count
                               in sorted(p.kernel_modes.items())) or "-"
            lines.append(
                f"  {p.operator:<20} {p.calls:>6} {p.rows:>10} "
                f"{p.self_wall_seconds * 1000:>9.2f}ms "
                f"{p.self_virtual_seconds:>10.3f}s "
                f"{kernels:<24} {p.fallback_batches:>8}")
    models = snapshot.top_models(top)
    if models:
        lines.append("")
        lines.append(f"top {len(models)} models by charged virtual time:")
        lines.append(f"  {'model':<24} {'invoked':>8} {'reused':>8} "
                     f"{'executed':>8} {'hit%':>6} {'virtual':>10} "
                     f"{'observed c_e':>12}")
        for p in models:
            observed = p.observed_per_tuple_cost
            observed_text = (f"{observed:.6f}" if observed is not None
                             else "-")
            lines.append(
                f"  {p.model:<24} {p.invocations:>8} {p.reused:>8} "
                f"{p.executed:>8} {p.hit_ratio * 100:>5.1f}% "
                f"{p.virtual_seconds:>9.3f}s {observed_text:>12}")
    if not operators and not models:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)
