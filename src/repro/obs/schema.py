"""A dependency-free validator for the trace-event JSON schema.

The container image deliberately carries no ``jsonschema`` package, so
this module implements the small, well-defined subset of JSON Schema
(draft-07 keywords) that ``tests/schemas/trace.schema.json`` uses:
``type``, ``enum``, ``const``, ``properties``, ``required``,
``additionalProperties``, ``items``, ``minimum``, ``minLength``,
``pattern``, ``oneOf``, ``anyOf`` and ``allOf``.  CI runs it over the
JSONL output of ``repro trace``::

    python -m repro.obs.schema trace.jsonl tests/schemas/trace.schema.json
"""

from __future__ import annotations

import json
import re
from pathlib import Path

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON Schema keeps them apart.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class SchemaError(ValueError):
    """The instance does not conform to the schema."""

    def __init__(self, path: str, message: str):
        self.path = path or "$"
        super().__init__(f"{self.path}: {message}")


def _check_type(instance, expected, path: str) -> None:
    types = expected if isinstance(expected, list) else [expected]
    for name in types:
        check = _TYPE_CHECKS.get(name)
        if check is None:
            raise SchemaError(path, f"unsupported schema type {name!r}")
        if check(instance):
            return
    raise SchemaError(
        path, f"expected type {expected}, got {type(instance).__name__}")


def validate(instance, schema: dict, path: str = "$") -> None:
    """Raise :class:`SchemaError` if ``instance`` violates ``schema``."""
    if not isinstance(schema, dict):
        raise SchemaError(path, f"schema must be an object, got {schema!r}")
    if "const" in schema and instance != schema["const"]:
        raise SchemaError(
            path, f"expected const {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            path, f"{instance!r} not in enum {schema['enum']!r}")
    if "type" in schema:
        _check_type(instance, schema["type"], path)
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise SchemaError(
                path, f"{instance} < minimum {schema['minimum']}")
    if isinstance(instance, str):
        if len(instance) < schema.get("minLength", 0):
            raise SchemaError(
                path, f"length {len(instance)} < minLength "
                f"{schema['minLength']}")
        pattern = schema.get("pattern")
        if pattern is not None and re.search(pattern, instance) is None:
            raise SchemaError(
                path, f"{instance!r} does not match pattern {pattern!r}")
    if isinstance(instance, dict):
        for name in schema.get("required", []):
            if name not in instance:
                raise SchemaError(path, f"missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, sub in properties.items():
            if name in instance:
                validate(instance[name], sub, f"{path}.{name}")
        additional = schema.get("additionalProperties", True)
        if additional is False:
            extras = sorted(set(instance) - set(properties))
            if extras:
                raise SchemaError(
                    path, f"unexpected additional keys {extras}")
        elif isinstance(additional, dict):
            for name in set(instance) - set(properties):
                validate(instance[name], additional, f"{path}.{name}")
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{index}]")
    for keyword in ("oneOf", "anyOf"):
        alternatives = schema.get(keyword)
        if alternatives:
            errors = []
            matches = 0
            for index, sub in enumerate(alternatives):
                try:
                    validate(instance, sub, path)
                    matches += 1
                except SchemaError as error:
                    errors.append(f"[{index}] {error}")
            if matches == 0:
                raise SchemaError(
                    path, f"no {keyword} alternative matched: "
                    + "; ".join(errors))
            if keyword == "oneOf" and matches > 1:
                raise SchemaError(
                    path, f"{matches} oneOf alternatives matched "
                    "(exactly one required)")
    for sub in schema.get("allOf", []):
        validate(instance, sub, path)


def validate_event(event: dict, schema: dict) -> None:
    """Alias with a name that reads well at call sites."""
    validate(event, schema)


def validate_jsonl(path, schema: dict) -> int:
    """Validate every line of a JSONL file; returns the line count.

    Raises:
        SchemaError: the first invalid event, with its line number.
    """
    count = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise SchemaError(f"line {line_no}",
                                  f"invalid JSON: {error}") from error
            try:
                validate(event, schema)
            except SchemaError as error:
                raise SchemaError(f"line {line_no} {error.path}",
                                  str(error)) from error
            count += 1
    return count


def load_schema(path) -> dict:
    return json.loads(Path(path).read_text("utf-8"))


def main(argv: list[str] | None = None) -> int:
    import sys

    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print("usage: python -m repro.obs.schema <events.jsonl> "
              "<schema.json>", file=sys.stderr)
        return 2
    events_path, schema_path = argv
    try:
        count = validate_jsonl(events_path, load_schema(schema_path))
    except SchemaError as error:
        print(f"INVALID {events_path}: {error}", file=sys.stderr)
        return 1
    print(f"OK {events_path}: {count} events valid against "
          f"{schema_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
