"""Cost-model drift detection and calibration (closing Eq. 3's loop).

The optimizer's Eq. 3 / Eq. 4 decisions run on *believed* per-tuple UDF
costs: ``c_e`` values snapshotted into the catalog when each UDF was
registered (:meth:`~repro.catalog.catalog.Catalog.register_model_udf`).
The executor, meanwhile, charges the *actual* per-invocation cost of the
physical model to the simulation clock.  When the two diverge — a model
was swapped, re-quantized, or moved to different hardware after
registration — every ranking (Eq. 4), classifier/detector
implementation choice (Eq. 3) and Algorithm 2 selection silently runs
on stale numbers.

This module closes the loop using the telemetry
:class:`~repro.obs.profiler.ProfileStore` already aggregates:

* :func:`modeled_model_costs` — the planner's current beliefs, read
  from the catalog's UDF definitions (deterministic, sorted).
* :func:`detect_drift` — compares believed vs observed per-tuple costs
  per model and flags divergence beyond a configurable ratio
  (``EvaConfig.drift_ratio_threshold``), ignoring models with too few
  executed invocations to trust (``calibration_min_invocations``).
* :func:`apply_calibration` — re-fits the catalog's believed costs to
  the observed ones (rebuilding the frozen
  :class:`~repro.catalog.udf_registry.UdfDefinition` entries) and
  returns the per-model overlay the optimizer threads into Algorithm 2
  (:func:`~repro.optimizer.model_selection.select_physical_udfs`).
* :func:`probe_decision_changes` — a deterministic before/after probe
  reporting whether the new constants change (a) the Eq. 4 cost
  ordering of UDFs feeding Rule I's predicate ranking or (b) any
  logical detector's cheapest-model choice (Algorithm 2, line 3) —
  the evidence recorded on the ``cost-calibration`` audit record.

Sessions drive this via ``EvaConfig.cost_calibration``:
``"off"`` (default), ``"report"`` (detect and expose, never mutate), or
``"apply"`` (re-fit after each query once drift is established).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field


def modeled_model_costs(catalog) -> dict[str, float]:
    """The planner's believed per-tuple cost per physical model.

    Reads every model-backed UDF definition in the catalog (already
    deterministically sorted by :meth:`UdfRegistry.definitions`); the
    first definition wins when several UDFs wrap the same model.
    """
    modeled: dict[str, float] = {}
    for definition in catalog.udfs.definitions():
        if definition.model_name:
            modeled.setdefault(definition.model_name,
                               definition.per_tuple_cost)
    return modeled


@dataclass(frozen=True)
class DriftEntry:
    """Modeled vs observed cost for one physical model."""

    model: str
    modeled_cost: float
    observed_cost: float
    #: Executed (non-reused) invocations backing the observation.
    executed: int
    #: observed / modeled; ``inf`` when the belief is zero.
    ratio: float
    drifted: bool

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "modeled_cost": self.modeled_cost,
            "observed_cost": self.observed_cost,
            "executed": self.executed,
            "ratio": (round(self.ratio, 6)
                      if math.isfinite(self.ratio) else "inf"),
            "drifted": self.drifted,
        }


@dataclass(frozen=True)
class DriftReport:
    """All drift entries of one detection pass, sorted by model name."""

    entries: tuple[DriftEntry, ...]
    ratio_threshold: float
    min_invocations: int
    #: Models with observations but below ``min_invocations`` executed.
    skipped: tuple[str, ...] = ()

    @property
    def drifted_entries(self) -> list[DriftEntry]:
        return [e for e in self.entries if e.drifted]

    @property
    def has_drift(self) -> bool:
        return any(e.drifted for e in self.entries)

    def render(self) -> str:
        lines = [
            f"cost-model drift (threshold {self.ratio_threshold:.2f}x, "
            f"min {self.min_invocations} executed invocations):"
        ]
        if not self.entries and not self.skipped:
            lines.append("  (no executed model invocations observed)")
            return "\n".join(lines)
        if self.entries:
            lines.append(
                f"  {'model':<24} {'modeled c_e':>12} {'observed c_e':>12} "
                f"{'ratio':>8} {'executed':>9}  drift")
            for e in self.entries:
                ratio = (f"{e.ratio:.2f}x" if math.isfinite(e.ratio)
                         else "inf")
                lines.append(
                    f"  {e.model:<24} {e.modeled_cost:>12.6f} "
                    f"{e.observed_cost:>12.6f} {ratio:>8} "
                    f"{e.executed:>9}  {'DRIFT' if e.drifted else 'ok'}")
        for model in self.skipped:
            lines.append(f"  {model:<24} (below min executed invocations; "
                         "skipped)")
        return "\n".join(lines)


def detect_drift(snapshot, modeled: dict[str, float], *,
                 ratio_threshold: float = 1.5,
                 min_invocations: int = 32) -> DriftReport:
    """Compare observed per-tuple costs against the planner's beliefs.

    Args:
        snapshot: a :class:`~repro.obs.profiler.ProfileSnapshot` (or any
            object with a ``models`` mapping of
            :class:`~repro.obs.profiler.ModelProfile`).
        modeled: believed cost per model (:func:`modeled_model_costs`).
        ratio_threshold: flag when observed/modeled ≥ threshold or
            ≤ 1/threshold.
        min_invocations: ignore models with fewer *executed*
            invocations — a thin sample is not evidence of drift.

    Entries are sorted by model name, so the report (and everything
    derived from it: audit records, Prometheus samples, CLI tables) is
    byte-stable under ``PYTHONHASHSEED=random``.
    """
    if ratio_threshold < 1.0:
        raise ValueError("ratio_threshold must be >= 1.0")
    entries: list[DriftEntry] = []
    skipped: list[str] = []
    for model in sorted(modeled):
        profile = snapshot.models.get(model)
        if profile is None:
            continue
        observed = profile.observed_per_tuple_cost
        if observed is None:
            continue
        if profile.executed < min_invocations:
            skipped.append(model)
            continue
        believed = modeled[model]
        if believed > 0:
            ratio = observed / believed
        else:
            ratio = math.inf if observed > 0 else 1.0
        drifted = ratio >= ratio_threshold or \
            (ratio > 0 and ratio <= 1.0 / ratio_threshold)
        entries.append(DriftEntry(
            model=model,
            modeled_cost=believed,
            observed_cost=observed,
            executed=profile.executed,
            ratio=ratio,
            drifted=drifted,
        ))
    return DriftReport(
        entries=tuple(entries),
        ratio_threshold=ratio_threshold,
        min_invocations=min_invocations,
        skipped=tuple(skipped),
    )


@dataclass(frozen=True)
class CalibrationChange:
    """One believed cost replaced by its observed value."""

    model: str
    old_cost: float
    new_cost: float
    #: Catalog UDF names whose definitions were rebuilt.
    udfs: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "old": self.old_cost,
            "new": self.new_cost,
            "udfs": list(self.udfs),
        }


@dataclass
class CalibrationResult:
    """What a calibration pass changed (or would change)."""

    applied: bool
    changes: list[CalibrationChange] = field(default_factory=list)
    #: model -> calibrated per-tuple cost (the Algorithm 2 overlay).
    calibrated: dict[str, float] = field(default_factory=dict)
    #: Probe results (:func:`probe_decision_changes`), filled by callers.
    probes: dict = field(default_factory=dict)

    def render(self) -> str:
        if not self.changes:
            return "calibration: no constants changed"
        verb = "applied" if self.applied else "proposed"
        lines = [f"calibration ({verb}):"]
        for change in self.changes:
            factor = (change.new_cost / change.old_cost
                      if change.old_cost else math.inf)
            lines.append(
                f"  {change.model:<24} c_e {change.old_cost:.6f} -> "
                f"{change.new_cost:.6f} (x{factor:.2f}; "
                f"udfs: {', '.join(change.udfs) or '-'})")
        ranking = self.probes.get("ranking")
        if ranking is not None:
            lines.append(
                "  ranking cost order "
                + ("CHANGED: " + " < ".join(ranking["after"])
                   if ranking["changed"] else "unchanged"))
        selection = self.probes.get("model_selection")
        if selection is not None:
            if selection["changes"]:
                for flip in selection["changes"]:
                    lines.append(
                        f"  cheapest {flip['logical_type']} model "
                        f"CHANGED: {flip['before']} -> {flip['after']}")
            else:
                lines.append("  cheapest-model choices unchanged")
        return "\n".join(lines)


def apply_calibration(catalog, report: DriftReport, *,
                      apply: bool = True) -> CalibrationResult:
    """Re-fit the catalog's believed costs to the observed ones.

    For every drifted entry, each UDF definition wrapping that model is
    rebuilt (``dataclasses.replace`` — definitions are frozen) with
    ``per_tuple_cost`` set to the observed cost and re-registered.  With
    ``apply=False`` the catalog is left untouched and the result only
    describes what *would* change (``cost_calibration="report"``).
    """
    result = CalibrationResult(applied=apply)
    for entry in report.drifted_entries:
        if math.isclose(entry.modeled_cost, entry.observed_cost,
                        rel_tol=1e-9, abs_tol=1e-15):
            continue
        udf_names = tuple(
            definition.name
            for definition in catalog.udfs.definitions()
            if definition.model_name == entry.model)
        if apply:
            for name in udf_names:
                definition = catalog.udfs.get(name)
                catalog.udfs.register(
                    dataclasses.replace(
                        definition, per_tuple_cost=entry.observed_cost),
                    replace=True)
        result.changes.append(CalibrationChange(
            model=entry.model,
            old_cost=entry.modeled_cost,
            new_cost=entry.observed_cost,
            udfs=udf_names,
        ))
        result.calibrated[entry.model] = entry.observed_cost
    return result


def probe_decision_changes(catalog, old_costs: dict[str, float],
                           new_costs: dict[str, float]) -> dict:
    """Would the new constants change a planner decision?

    Two deterministic probes, independent of any concrete query:

    * **ranking** — Eq. 4's rank is monotone in ``c_e`` for fixed
      selectivity and miss fraction, so Rule I's predicate order flips
      exactly when the cost order of the expensive UDFs flips.  The
      probe compares the cost-sorted order of expensive model-backed
      UDFs before and after.
    * **model_selection** — Algorithm 2's line 3 ("cheapest physical
      UDF") is an argmin over believed costs; the probe recomputes it
      per logical detector type before and after.
    """
    expensive = [
        d for d in catalog.udfs.definitions()
        if d.model_name and d.is_expensive
    ]

    def cost_order(costs: dict[str, float]) -> list[str]:
        return [d.name for d in sorted(
            expensive,
            key=lambda d: (costs.get(d.model_name, d.per_tuple_cost),
                           d.name))]

    before_order = cost_order(old_costs)
    after_order = cost_order(new_costs)
    probes: dict = {
        "ranking": {
            "changed": before_order != after_order,
            "before": before_order,
            "after": after_order,
        },
    }
    flips: list[dict] = []
    for definition in catalog.udfs.definitions():
        if not definition.is_logical:
            continue
        logical_type = definition.logical_type or "ObjectDetector"
        models = catalog.physical_detectors(logical_type)
        if not models:
            continue

        def cheapest(costs: dict[str, float]) -> str:
            return min(
                models,
                key=lambda m: (costs.get(m.name, m.per_tuple_cost),
                               m.name)).name

        before = cheapest(old_costs)
        after = cheapest(new_costs)
        if before != after:
            flips.append({
                "logical_type": logical_type,
                "before": before,
                "after": after,
            })
    probes["model_selection"] = {
        "changed": bool(flips),
        "changes": flips,
    }
    return probes
