"""Prometheus text-format exposition of the reproduction's metrics.

Builds the classic ``# HELP`` / ``# TYPE`` exposition (text format
0.0.4) from the structures the system already maintains:

* :class:`~repro.metrics.MetricsCollector` — per-UDF #TI / #DI / reused
  counts and hit ratios (section 5.2), named event counters, and a
  histogram of per-query virtual seconds;
* :class:`~repro.clock.SimulationClock` — per-category virtual-time
  totals (the Fig. 6 / Table 4 buckets);
* :class:`~repro.server.stats.ServerStatsSnapshot` — admission /
  backpressure / lifecycle counters, queue depth, view storage, and
  cross-client hit attribution.

No client library is required; the output is a string suitable for an
HTTP scrape endpoint or ``repro metrics-dump``.
"""

from __future__ import annotations

#: Upper bounds (virtual seconds) of the query-latency histogram.
QUERY_SECONDS_BUCKETS = (1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0)


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels(**labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(str(value))}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Exposition:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def header(self, name: str, help_text: str, type_: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {type_}")

    def sample(self, name: str, value: float, **labels) -> None:
        self.lines.append(f"{name}{_labels(**labels)} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _expose_udf_stats(exp: _Exposition, metrics) -> None:
    exp.header("eva_udf_invocations_total",
               "UDF invocations by disposition (total=#TI, "
               "distinct=#DI, reused=served from materialized views, "
               "executed=model actually ran)", "counter")
    for name in sorted(metrics.udf_stats):
        stats = metrics.udf_stats[name]
        exp.sample("eva_udf_invocations_total", stats.total_invocations,
                   udf=name, disposition="total")
        exp.sample("eva_udf_invocations_total",
                   stats.distinct_invocations,
                   udf=name, disposition="distinct")
        exp.sample("eva_udf_invocations_total", stats.reused_invocations,
                   udf=name, disposition="reused")
        exp.sample("eva_udf_invocations_total",
                   stats.executed_invocations,
                   udf=name, disposition="executed")
    exp.header("eva_udf_hit_ratio",
               "Fraction of a UDF's invocations served from "
               "materialized views (section 5.2 hit percentage / 100)",
               "gauge")
    for name in sorted(metrics.udf_stats):
        stats = metrics.udf_stats[name]
        ratio = (stats.reused_invocations / stats.total_invocations
                 if stats.total_invocations else 0.0)
        exp.sample("eva_udf_hit_ratio", ratio, udf=name)
    exp.header("eva_hit_ratio",
               "Aggregate reuse hit ratio across all UDFs", "gauge")
    exp.sample("eva_hit_ratio", metrics.hit_percentage() / 100.0)


#: Prefix carved out of the generic event counters: operators bump
#: ``kernel_fallback:<Operator>`` when a batch falls off the vectorized
#: fast path, and the exposition reports those under a dedicated metric
#: (labelled by operator) instead of ``eva_events_total``.
KERNEL_FALLBACK_PREFIX = "kernel_fallback:"


def _expose_counters(exp: _Exposition, metrics) -> None:
    if not metrics.counters:
        return
    events = {name: value for name, value in metrics.counters.items()
              if not name.startswith(KERNEL_FALLBACK_PREFIX)}
    fallbacks = {name[len(KERNEL_FALLBACK_PREFIX):]: value
                 for name, value in metrics.counters.items()
                 if name.startswith(KERNEL_FALLBACK_PREFIX)}
    if events:
        exp.header("eva_events_total",
                   "Named event counters (plan-cache evictions, ...)",
                   "counter")
        for name in sorted(events):
            exp.sample("eva_events_total", events[name], event=name)
    if fallbacks:
        exp.header("eva_kernel_fallback_batches_total",
                   "Batches that fell off the vectorized fast path "
                   "onto row-at-a-time execution, by operator",
                   "counter")
        for operator in sorted(fallbacks):
            exp.sample("eva_kernel_fallback_batches_total",
                       fallbacks[operator], operator=operator)


def _expose_query_histogram(exp: _Exposition, metrics) -> None:
    exp.header("eva_query_virtual_seconds",
               "Histogram of per-query virtual execution time",
               "histogram")
    times = [m.total_time for m in metrics.query_metrics]
    cumulative = 0
    for bound in QUERY_SECONDS_BUCKETS:
        cumulative = sum(1 for t in times if t <= bound)
        exp.sample("eva_query_virtual_seconds_bucket", cumulative,
                   le=_fmt(bound))
    exp.sample("eva_query_virtual_seconds_bucket", len(times), le="+Inf")
    exp.sample("eva_query_virtual_seconds_sum", sum(times))
    exp.sample("eva_query_virtual_seconds_count", len(times))


def _expose_clock(exp: _Exposition, clock) -> None:
    exp.header("eva_virtual_seconds_total",
               "Virtual seconds charged per cost category "
               "(Fig. 6 / Table 4 buckets)", "counter")
    breakdown = clock.breakdown()
    for category in sorted(breakdown, key=lambda c: c.value):
        exp.sample("eva_virtual_seconds_total", breakdown[category],
                   category=category.value)


def _expose_server(exp: _Exposition, snapshot) -> None:
    exp.header("eva_server_queries_total",
               "Queries by admission/lifecycle outcome "
               "(rejected = admission-control backpressure)", "counter")
    for outcome in ("submitted", "completed", "failed", "rejected",
                    "timed_out", "cancelled"):
        exp.sample("eva_server_queries_total",
                   getattr(snapshot, outcome), outcome=outcome)
    exp.header("eva_server_queue_depth", "Admitted-but-waiting queries",
               "gauge")
    exp.sample("eva_server_queue_depth", snapshot.queue_depth)
    exp.header("eva_server_queue_depth_peak",
               "High-water mark of the admission queue", "gauge")
    exp.sample("eva_server_queue_depth_peak", snapshot.peak_queue_depth)
    exp.header("eva_server_uptime_seconds", "Server uptime", "gauge")
    exp.sample("eva_server_uptime_seconds", snapshot.uptime)
    exp.header("eva_server_views", "Materialized views currently stored",
               "gauge")
    exp.sample("eva_server_views", snapshot.num_views)
    exp.header("eva_server_view_storage_bytes",
               "Serialized size of all materialized views", "gauge")
    exp.sample("eva_server_view_storage_bytes",
               snapshot.view_storage_bytes)
    exp.header("eva_server_cross_client_hits_total",
               "View probes served from another client's materialized "
               "work (prober/owner attribution)", "counter")
    for (prober, owner), count in sorted(
            snapshot.cross_client_hits.items()):
        exp.sample("eva_server_cross_client_hits_total", count,
                   prober=prober, owner=owner)
    if snapshot.clients:
        exp.header("eva_server_client_queries_total",
                   "Per-client query outcomes", "counter")
        for client in snapshot.clients:
            for outcome in ("submitted", "completed", "rejected",
                            "timed_out", "cancelled"):
                exp.sample("eva_server_client_queries_total",
                           getattr(client, outcome),
                           client=client.client_id, outcome=outcome)


def _expose_profile(exp: _Exposition, snapshot) -> None:
    """Continuous-profiler rollups (:class:`~repro.obs.profiler.ProfileSnapshot`)."""
    exp.header("eva_profile_queries_total",
               "Queries observed by the continuous profiler", "counter")
    exp.sample("eva_profile_queries_total", snapshot.queries)
    if snapshot.operators:
        exp.header("eva_profile_operator_self_seconds_total",
                   "Per-operator self time from instrumented runs "
                   "(kind=wall|virtual)", "counter")
        for name in sorted(snapshot.operators):
            op = snapshot.operators[name]
            exp.sample("eva_profile_operator_self_seconds_total",
                       op.self_wall_seconds, operator=name, kind="wall")
            exp.sample("eva_profile_operator_self_seconds_total",
                       op.self_virtual_seconds, operator=name,
                       kind="virtual")
        exp.header("eva_profile_operator_rows_total",
                   "Rows produced per operator (instrumented runs)",
                   "counter")
        for name in sorted(snapshot.operators):
            exp.sample("eva_profile_operator_rows_total",
                       snapshot.operators[name].rows, operator=name)
    if snapshot.models:
        exp.header("eva_profile_model_invocations_total",
                   "Model invocations observed by the profiler "
                   "(disposition=total|reused|executed)", "counter")
        for name in sorted(snapshot.models):
            prof = snapshot.models[name]
            exp.sample("eva_profile_model_invocations_total",
                       prof.invocations, model=name, disposition="total")
            exp.sample("eva_profile_model_invocations_total",
                       prof.reused, model=name, disposition="reused")
            exp.sample("eva_profile_model_invocations_total",
                       prof.executed, model=name, disposition="executed")
        exp.header("eva_profile_model_virtual_seconds_total",
                   "Virtual seconds charged to executed model "
                   "invocations", "counter")
        for name in sorted(snapshot.models):
            exp.sample("eva_profile_model_virtual_seconds_total",
                       snapshot.models[name].virtual_seconds, model=name)


def _expose_drift(exp: _Exposition, report) -> None:
    """Cost-model drift (:class:`~repro.obs.calibration.DriftReport`)."""
    if not report.entries:
        return
    exp.header("eva_model_cost_seconds",
               "Per-tuple model cost (kind=modeled is the planner's "
               "belief; kind=observed is measured from telemetry)",
               "gauge")
    for entry in report.entries:
        exp.sample("eva_model_cost_seconds", entry.modeled_cost,
                   model=entry.model, kind="modeled")
        exp.sample("eva_model_cost_seconds", entry.observed_cost,
                   model=entry.model, kind="observed")
    exp.header("eva_model_cost_ratio",
               "Observed / modeled per-tuple cost (1.0 = calibrated)",
               "gauge")
    for entry in report.entries:
        ratio = entry.ratio
        exp.sample("eva_model_cost_ratio",
                   ratio if ratio != float("inf") else 0.0,
                   model=entry.model)
    exp.header("eva_model_cost_drifted",
               "1 when a model's observed cost diverges from the "
               "planner's belief beyond the configured ratio", "gauge")
    for entry in report.entries:
        exp.sample("eva_model_cost_drifted",
                   1 if entry.drifted else 0, model=entry.model)


def _expose_batcher(exp: _Exposition, snapshot) -> None:
    """Inference micro-batcher coalescing statistics
    (:class:`~repro.server.batcher.BatcherSnapshot`)."""
    exp.header("eva_batcher_requests_total",
               "Client miss sub-batches submitted to the shared "
               "inference batcher", "counter")
    exp.sample("eva_batcher_requests_total", snapshot.requests)
    exp.header("eva_batcher_tuples_total",
               "Tuples submitted to the shared inference batcher",
               "counter")
    exp.sample("eva_batcher_tuples_total", snapshot.tuples)
    exp.header("eva_batcher_dispatches_total",
               "Physical predict_batch calls (kind=coalesced carried "
               "more than one client request)", "counter")
    exp.sample("eva_batcher_dispatches_total", snapshot.dispatches,
               kind="all")
    exp.sample("eva_batcher_dispatches_total",
               snapshot.coalesced_dispatches, kind="coalesced")
    exp.header("eva_batcher_batch_requests",
               "Client requests per physical dispatch "
               "(stat=mean|max; mean > 1 means cross-client "
               "coalescing happened)", "gauge")
    exp.sample("eva_batcher_batch_requests",
               snapshot.mean_batch_requests, stat="mean")
    exp.sample("eva_batcher_batch_requests",
               snapshot.max_batch_requests, stat="max")
    exp.header("eva_batcher_batch_tuples",
               "Tuples per physical dispatch (stat=mean|max)", "gauge")
    exp.sample("eva_batcher_batch_tuples", snapshot.mean_batch_tuples,
               stat="mean")
    exp.sample("eva_batcher_batch_tuples", snapshot.max_batch_tuples,
               stat="max")
    exp.header("eva_batcher_remote_requests_total",
               "Miss sub-batches that arrived over the worker pool's "
               "shard protocol from a non-owner process (> 0 means "
               "coalescing spans processes)", "counter")
    exp.sample("eva_batcher_remote_requests_total",
               snapshot.remote_requests)
    exp.header("eva_batcher_queue_depth",
               "Requests currently parked in coalescing windows",
               "gauge")
    exp.sample("eva_batcher_queue_depth", snapshot.queue_depth)


def _expose_store(exp: _Exposition, snapshot) -> None:
    """Durable view-store health (``repro.store.StoreSnapshot``)."""
    exp.header("eva_store_tier_bytes",
               "Estimated bytes held per view-store tier "
               "(hot=resident, warm=demoted to disk)", "gauge")
    exp.sample("eva_store_tier_bytes", snapshot.hot_bytes, tier="hot")
    exp.sample("eva_store_tier_bytes", snapshot.warm_bytes, tier="warm")
    exp.header("eva_store_tier_views", "Views held per tier", "gauge")
    exp.sample("eva_store_tier_views", snapshot.hot_views, tier="hot")
    exp.sample("eva_store_tier_views", snapshot.warm_views, tier="warm")
    exp.header("eva_store_wal_bytes",
               "Bytes across all open WAL segments (control log "
               "included); falls back to 0 after the store closes",
               "gauge")
    exp.sample("eva_store_wal_bytes", snapshot.wal_bytes)
    exp.header("eva_store_snapshot_files",
               "Partition snapshot files on disk", "gauge")
    exp.sample("eva_store_snapshot_files", snapshot.snapshot_files)
    if snapshot.snapshot_age_seconds is not None:
        exp.header("eva_store_snapshot_age_seconds",
                   "Seconds since the last partition snapshot was "
                   "written by this process", "gauge")
        exp.sample("eva_store_snapshot_age_seconds",
                   snapshot.snapshot_age_seconds)
    exp.header("eva_store_evictions_total",
               "Tier evictions by disposition (demoted=hot->warm, "
               "dropped=warm budget exceeded)", "counter")
    exp.sample("eva_store_evictions_total",
               snapshot.counters.get("demotions", 0), reason="demoted")
    exp.sample("eva_store_evictions_total",
               snapshot.counters.get("evicted_dropped", 0),
               reason="dropped")
    exp.header("eva_store_promotions_total",
               "Warm views reloaded into the hot tier on probe",
               "counter")
    exp.sample("eva_store_promotions_total",
               snapshot.counters.get("promotions", 0))
    exp.header("eva_store_wal_records_total",
               "Put records appended to partition WALs", "counter")
    exp.sample("eva_store_wal_records_total",
               snapshot.counters.get("wal_records", 0))
    exp.header("eva_store_snapshots_total",
               "Partition snapshots written", "counter")
    exp.sample("eva_store_snapshots_total",
               snapshot.counters.get("snapshots", 0))
    recovery = snapshot.recovery
    if recovery:
        exp.header("eva_store_recovery_info",
                   "Startup recovery pass results (views/partitions/"
                   "records replayed, torn tails repaired)", "gauge")
        for key in ("views_recovered", "partitions_replayed",
                    "records_replayed", "keys_recovered",
                    "torn_tails_repaired", "stale_files_removed"):
            exp.sample("eva_store_recovery_info", recovery.get(key, 0),
                       stat=key)


def _expose_views(exp: _Exposition, views: list) -> None:
    """Per-view lineage gauges (:meth:`ViewLedger.snapshot` rows)."""
    if not views:
        return
    exp.header("eva_view_age_seconds",
               "Seconds since the (view, generation) was first tracked "
               "by this process (restored views restart at recovery)",
               "gauge")
    for row in views:
        exp.sample("eva_view_age_seconds", row["age_s"], view=row["id"])
    exp.header("eva_view_idle_seconds",
               "Seconds since the view was last probed or written",
               "gauge")
    for row in views:
        exp.sample("eva_view_idle_seconds", row["idle_s"],
                   view=row["id"])
    exp.header("eva_view_bytes",
               "Serialized size of the view at its last observation",
               "gauge")
    for row in views:
        exp.sample("eva_view_bytes", row["bytes"], view=row["id"],
                   status=row["status"])
    exp.header("eva_view_hits_total",
               "Probes served from the view's materialized content",
               "counter")
    for row in views:
        exp.sample("eva_view_hits_total", row["hits"], view=row["id"])
    exp.header("eva_view_rows_served_total",
               "Materialized rows served from the view", "counter")
    for row in views:
        exp.sample("eva_view_rows_served_total", row["rows_served"],
                   view=row["id"])
    exp.header("eva_view_net_benefit_virtual_seconds",
               "Eq. 3 virtual seconds saved by reads minus the virtual "
               "seconds invested materializing (negative = the view "
               "has not yet paid for itself)", "gauge")
    for row in views:
        exp.sample("eva_view_net_benefit_virtual_seconds",
                   row["net_benefit"], view=row["id"])


def _expose_lock_waits(exp: _Exposition, lock_waits: dict) -> None:
    """Per-lock-class contention rollups (``snapshot.lock_waits``)."""
    if not lock_waits:
        return
    exp.header("eva_lock_wait_seconds_total",
               "Seconds spent waiting to acquire shared locks, by lock "
               "class and side (read=shared, write=exclusive)", "counter")
    for name in sorted(lock_waits):
        waits = lock_waits[name]
        exp.sample("eva_lock_wait_seconds_total", waits["read_s"],
                   lock_class=name, kind="read")
        exp.sample("eva_lock_wait_seconds_total", waits["write_s"],
                   lock_class=name, kind="write")
    exp.header("eva_lock_wait_acquisitions_total",
               "Timed lock acquisitions per lock class", "counter")
    for name in sorted(lock_waits):
        exp.sample("eva_lock_wait_acquisitions_total",
                   lock_waits[name]["waits"], lock_class=name)
    exp.header("eva_lock_writers_waiting_high_water",
               "Most writers ever simultaneously queued on one lock",
               "gauge")
    for name in sorted(lock_waits):
        exp.sample("eva_lock_writers_waiting_high_water",
                   lock_waits[name].get("writers_waiting_high_water", 0),
                   lock_class=name)


def _expose_admission_wait(exp: _Exposition, wait: dict) -> None:
    """Admission-wait summary (``snapshot.admission_wait``)."""
    if not wait or not wait.get("count"):
        return
    exp.header("eva_server_admission_wait_seconds",
               "Wall seconds between submit and a worker picking the "
               "query up (stat=p50|p99|max|mean)", "gauge")
    mean = wait["sum_s"] / wait["count"]
    for stat, value in (("p50", wait["p50_s"]), ("p99", wait["p99_s"]),
                        ("max", wait["max_s"]), ("mean", mean)):
        exp.sample("eva_server_admission_wait_seconds", value, stat=stat)
    exp.header("eva_server_admission_wait_total",
               "Queries whose admission wait was measured", "counter")
    exp.sample("eva_server_admission_wait_total", wait["count"])


def _expose_flight(exp: _Exposition, stats: dict) -> None:
    """Flight-recorder rollups (``FlightStats.snapshot()``)."""
    exp.header("eva_flight_records_total",
               "Per-query flight records assembled", "counter")
    exp.sample("eva_flight_records_total", stats["records"])
    exp.header("eva_flight_stage_seconds_total",
               "Wall seconds attributed per latency stage across all "
               "recorded queries", "counter")
    for stage in sorted(stats["stage_seconds"]):
        exp.sample("eva_flight_stage_seconds_total",
                   stats["stage_seconds"][stage], stage=stage)
    exp.header("eva_flight_dominant_stage_total",
               "Queries whose latency was dominated by each stage",
               "counter")
    for stage in sorted(stats["dominant"]):
        exp.sample("eva_flight_dominant_stage_total",
                   stats["dominant"][stage], stage=stage)
    exp.header("eva_flight_over_slo_total",
               "Recorded queries that violated the p99 latency SLO, "
               "by dominant stage", "counter")
    for stage in sorted(stats["over_slo_by_stage"]):
        exp.sample("eva_flight_over_slo_total",
                   stats["over_slo_by_stage"][stage], stage=stage)


def _expose_slo(exp: _Exposition, snapshot) -> None:
    """Latency SLO state (:class:`~repro.obs.slo.SloSnapshot`)."""
    latency = snapshot.latency
    exp.header("eva_slo_latency_seconds",
               "Histogram of total query latency (admission wait + "
               "execution wall time)", "histogram")
    cumulative = 0
    for bound, count in zip(latency.buckets, latency.counts):
        cumulative += count
        exp.sample("eva_slo_latency_seconds_bucket", cumulative,
                   le=_fmt(bound))
    exp.sample("eva_slo_latency_seconds_bucket", latency.count, le="+Inf")
    exp.sample("eva_slo_latency_seconds_sum", latency.sum_seconds)
    exp.sample("eva_slo_latency_seconds_count", latency.count)
    exp.header("eva_slo_latency_quantile_seconds",
               "Streaming latency quantile estimates", "gauge")
    for stat, value in (("p50", latency.p50), ("p95", latency.p95),
                        ("p99", latency.p99)):
        exp.sample("eva_slo_latency_quantile_seconds", value,
                   quantile=stat)
    targets = (("p50", snapshot.target_p50, snapshot.over_p50,
                snapshot.burn_rate_p50),
               ("p99", snapshot.target_p99, snapshot.over_p99,
                snapshot.burn_rate_p99))
    configured = [t for t in targets if t[1] is not None]
    if not configured:
        return
    exp.header("eva_slo_target_seconds",
               "Configured latency SLO targets", "gauge")
    for objective, target, _, _ in configured:
        exp.sample("eva_slo_target_seconds", target, objective=objective)
    exp.header("eva_slo_violations_total",
               "Queries over each configured SLO target", "counter")
    for objective, _, over, _ in configured:
        exp.sample("eva_slo_violations_total", over, objective=objective)
    exp.header("eva_slo_burn_rate",
               "Error-budget burn rate (violation fraction / budget; "
               ">1 means the objective is being missed)", "gauge")
    for objective, _, _, burn in configured:
        exp.sample("eva_slo_burn_rate", burn, objective=objective)


def prometheus_text(metrics=None, clock=None, server=None, *,
                    profile=None, drift=None, batcher=None,
                    store=None, flight=None, slo=None,
                    views=None) -> str:
    """Render the exposition for any subset of metric sources.

    Args:
        metrics: a :class:`~repro.metrics.MetricsCollector` (per-UDF
            stats, counters, query-latency histogram).
        clock: a :class:`~repro.clock.SimulationClock` (category totals).
        server: a :class:`~repro.server.stats.ServerStatsSnapshot`
            (admission / backpressure / attribution counters).
        profile: a :class:`~repro.obs.profiler.ProfileSnapshot`
            (continuous-profiler operator/model rollups).
        drift: a :class:`~repro.obs.calibration.DriftReport`
            (modeled vs observed per-tuple model costs).
        batcher: a :class:`~repro.server.batcher.BatcherSnapshot`
            (cross-client inference micro-batching gauges).
        store: a :class:`~repro.store.StoreSnapshot` (durable
            view-store tier sizes, WAL bytes, eviction counters).
        flight: a ``FlightStats.snapshot()`` dict (per-stage wall-time
            rollups and dominant-stage counts; ``eva_flight_*``).
        slo: a :class:`~repro.obs.slo.SloSnapshot` (latency histogram,
            targets, violations, burn rates; ``eva_slo_*``).
        views: a :meth:`~repro.obs.lineage.ViewLedger.snapshot` list
            (per-view age/idle/bytes/hits/net-benefit; ``eva_view_*``).
    """
    exp = _Exposition()
    if metrics is not None:
        _expose_udf_stats(exp, metrics)
        _expose_counters(exp, metrics)
        _expose_query_histogram(exp, metrics)
    if clock is not None:
        _expose_clock(exp, clock)
    if server is not None:
        _expose_server(exp, server)
        _expose_lock_waits(exp, getattr(server, "lock_waits", {}))
        _expose_admission_wait(exp, getattr(server, "admission_wait", {}))
    if profile is not None:
        _expose_profile(exp, profile)
    if drift is not None:
        _expose_drift(exp, drift)
    if batcher is not None:
        _expose_batcher(exp, batcher)
    if store is not None:
        _expose_store(exp, store)
    if flight is not None:
        _expose_flight(exp, flight)
    if slo is not None:
        _expose_slo(exp, slo)
    if views is not None:
        _expose_views(exp, views)
    return exp.text()
