"""Structured audit records for the optimizer's reuse decisions.

Every place the optimizer consults the aggregated predicates — Rule I's
materialization-aware ranking (Eq. 4), Rule II's classifier/detector
implementation (Eq. 3), and Algorithm 2's greedy model selection — emits
one :class:`ReuseDecisionRecord` into the optimization context's
:class:`ReuseAuditTrail`.  The records capture the symbolic inputs
(``p_u``, ``q``, the reduced INTER/DIFF), the cost/rank numbers that fed
the decision, the candidate models with their weights, and the chosen
physical sources — enough to answer "why did EVA (not) reuse the view
for this query?" from logs alone.

Records ride back on
:class:`~repro.optimizer.optimizer.OptimizedQuery`; the session stamps
the query's trace id on them and exports each as a ``reuse_decision``
event through the tracer's sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Record kinds (the decision sites).
KIND_RANKING = "predicate-ranking"
KIND_CLASSIFIER = "classifier-apply"
KIND_DETECTOR = "detector-apply"
KIND_MODEL_SELECTION = "model-selection"
#: Emitted when a calibration pass re-fits believed UDF costs from
#: observed telemetry (:mod:`repro.obs.calibration`); the record's
#: candidates carry the drift entries and before/after decision probes.
KIND_COST_CALIBRATION = "cost-calibration"
#: Emitted once per optimization pass that exercised the symbolic
#: engine's reduction memo; the record's ``costs`` carry the pass's
#: hit/miss/eviction deltas and the memo's current size, and ``reused``
#: means at least one reduction was served from cache.
KIND_SYMBOLIC_MEMO = "symbolic-memo"
#: Emitted when the durable store's byte-budget policy demotes or drops
#: a view: ``costs`` carry the eviction score (rebuild cost per byte),
#: the freed bytes, and the view's ledger net benefit; ``chosen``
#: records the action (``demote`` / ``evict_drop``) and tier reason.
KIND_STORE_EVICTION = "store-eviction"


def predicate_sql(predicate) -> str:
    """Best-effort SQL rendering of a symbolic DNF predicate."""
    if predicate is None:
        return ""
    try:
        return predicate.to_expression().to_sql()
    except Exception:  # pragma: no cover - defensive fallback
        return repr(predicate)


@dataclass
class ReuseDecisionRecord:
    """One reuse decision, with everything that went into it."""

    #: Decision site: one of the ``KIND_*`` constants.
    kind: str
    #: UDF / model signature the decision is about (or the table for
    #: ranking decisions).
    signature: str
    #: q — the query-side predicate (guard) under consideration.
    query_predicate: str = ""
    #: p_u — the signature's aggregated (materialized) predicate, when
    #: the UdfManager knows it.
    history_predicate: str | None = None
    #: Reduced INTER(p_u, q) — what the views can serve.
    intersection: str | None = None
    #: Reduced DIFF(p_u, q) — what must still be evaluated.
    difference: str | None = None
    #: Estimated fraction of guarded tuples missing from the views
    #: (Eq. 3/4's f_miss; 1.0 when nothing is materialized).
    missing_fraction: float | None = None
    #: Selectivity estimates feeding the decision (name -> estimate).
    selectivities: dict = field(default_factory=dict)
    #: Cost-model numbers per alternative (label -> Eq. 3/4 cost).
    costs: dict = field(default_factory=dict)
    #: Candidate models with weights (Algorithm 2's W(x, q), ranking
    #: entries, ...): a list of dicts, schema per ``kind``.
    candidates: list = field(default_factory=list)
    #: The chosen physical sources / order, as readable dicts.
    chosen: list = field(default_factory=list)
    #: Did the decision route any tuples through materialized views?
    reused: bool = False
    #: Stamped by the session when the record is exported.
    trace_id: str | None = None
    client_id: str | None = None
    #: Lineage id of the live (view, generation) this decision touched,
    #: when the view ledger tracks one — joins the audit log to the
    #: provenance ledger (``repro lineage --view``).
    lineage_id: str | None = None

    def to_event(self) -> dict:
        """The JSON-serializable sink event for this record."""
        return {
            "type": "reuse_decision",
            "kind": self.kind,
            "signature": self.signature,
            "query_predicate": self.query_predicate,
            "history_predicate": self.history_predicate,
            "intersection": self.intersection,
            "difference": self.difference,
            "missing_fraction": self.missing_fraction,
            "selectivities": dict(self.selectivities),
            "costs": dict(self.costs),
            "candidates": list(self.candidates),
            "chosen": list(self.chosen),
            "reused": self.reused,
            "trace_id": self.trace_id,
            "client_id": self.client_id,
            "lineage_id": self.lineage_id,
        }


class ReuseAuditTrail:
    """Collects the records of one optimization pass."""

    def __init__(self) -> None:
        self.records: list[ReuseDecisionRecord] = []

    def record(self, record: ReuseDecisionRecord) -> ReuseDecisionRecord:
        self.records.append(record)
        return record

    def by_kind(self, kind: str) -> list[ReuseDecisionRecord]:
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
