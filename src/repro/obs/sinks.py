"""Pluggable trace-event sinks.

Every observability signal — finished spans, reuse-decision audit
records, slow-query entries — is exported as one JSON-serializable
``dict`` event through a :class:`TraceSink`.  Sinks are deliberately
tiny: ``emit`` one event, ``close`` when done.  They must be
thread-safe; the server's workers emit from many threads into one sink.

Events always carry a ``"type"`` key (``"span"``, ``"reuse_decision"``,
``"slow_query"``); the JSONL wire format is one event per line, which
``tests/schemas/trace.schema.json`` describes and
:mod:`repro.obs.schema` validates.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import IO, Iterable


class TraceSink:
    """Base class / no-behavior contract for event sinks."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (default: nothing to release)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullSink(TraceSink):
    """Drops every event: the zero-overhead default."""

    def emit(self, event: dict) -> None:
        pass


class InMemorySink(TraceSink):
    """Bounded ring buffer of events (newest win).

    The default sink for sessions and servers: cheap, bounded, and
    introspectable — ``repro trace`` and the tests read events back out
    of it.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    def emit(self, event: dict) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)

    def events(self, type: str | None = None) -> list[dict]:
        """A snapshot of buffered events, optionally filtered by type."""
        with self._lock:
            snapshot = list(self._events)
        if type is None:
            return snapshot
        return [e for e in snapshot if e.get("type") == type]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class JsonlFileSink(TraceSink):
    """Appends one compact JSON object per line to a file.

    The file is opened lazily on the first event and flushed per emit so
    a crash mid-workload still leaves a readable prefix.  Values that
    are not JSON-serializable are stringified (trace payloads favor
    robustness over fidelity).  ``truncate=True`` starts a fresh file
    instead of appending (what one-shot CLI exports want).
    """

    def __init__(self, path, truncate: bool = False):
        self.path = Path(path)
        self._mode = "w" if truncate else "a"
        self._handle: IO[str] | None = None
        self._lock = threading.Lock()
        self.events_written = 0

    def emit(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"), sort_keys=True,
                          default=str)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open(self._mode, encoding="utf-8")
                self._mode = "a"  # reopen after close() must not clobber
            self._handle.write(line + "\n")
            self._handle.flush()
            self.events_written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class CompositeSink(TraceSink):
    """Fans every event out to several sinks."""

    def __init__(self, sinks: Iterable[TraceSink]):
        self.sinks = list(sinks)

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
