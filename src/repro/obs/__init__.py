"""Observability: end-to-end tracing, reuse-decision audit, and export.

The paper's argument is a *time-accounting* argument — Fig. 6 / Table 4
breakdowns, section 5.2 hit percentages, the optimizer's INTER/DIFF/UNION
reuse decisions.  This package makes those signals first-class:

* :mod:`repro.obs.trace` — a lightweight span API.  One
  :class:`~repro.obs.trace.Tracer` per session threads a single trace
  through parse → optimize (per-rule spans) → execute (per-operator
  spans) → post-execution view updates, recording both *wall* seconds
  and *virtual* seconds (the simulation clock's per-category deltas).
* :mod:`repro.obs.audit` — structured
  :class:`~repro.obs.audit.ReuseDecisionRecord` entries emitted by the
  optimizer capturing the symbolic ``p_u``/``q``, the reduced
  INTER/DIFF, Eq. 3/4 cost inputs, candidate models with weights, and
  the chosen physical sources — "why did EVA (not) reuse the view?" is
  answerable from logs.
* :mod:`repro.obs.sinks` — pluggable export: in-memory ring buffer,
  JSONL file sink, composites, and a no-op sink for zero-overhead runs.
* :mod:`repro.obs.prometheus` — Prometheus text exposition built from
  :class:`~repro.metrics.MetricsCollector` /
  :class:`~repro.server.stats.ServerStats` counters and histograms.
* :mod:`repro.obs.slowlog` — a slow-query log thresholded on *virtual*
  seconds (the honest cost in this reproduction).
* :mod:`repro.obs.schema` — a dependency-free JSON-schema validator for
  the exported JSONL event stream (used by CI and tests).
* :mod:`repro.obs.profiler` — continuous profiling: rolling per-model /
  per-operator rollups (:class:`~repro.obs.profiler.ProfileStore`) with
  JSONL persistence, shared across all clients under the server.
* :mod:`repro.obs.calibration` — cost-model drift detection (believed
  vs observed per-tuple UDF costs) and the opt-in calibration pass that
  re-fits the planner's constants from telemetry
  (``EvaConfig.cost_calibration``).
* :mod:`repro.obs.chrome` — Chrome-trace / Perfetto export of recorded
  spans on a synthetic deterministic timeline.

CLI surfaces: ``repro trace "<query>"`` renders the hierarchical span
tree with actuals (EXPLAIN ANALYZE, but hierarchical and exportable;
``--chrome-trace`` exports the flame-graph JSON), ``repro profile``
prints the top-N operator/model tables, the drift table and any
calibration diff, and ``repro metrics-dump`` prints the Prometheus
exposition.
"""

from repro.obs.audit import ReuseAuditTrail, ReuseDecisionRecord
from repro.obs.calibration import (
    CalibrationResult,
    DriftReport,
    apply_calibration,
    detect_drift,
    modeled_model_costs,
)
from repro.obs.chrome import chrome_trace_document, write_chrome_trace
from repro.obs.profiler import (
    ProfileSnapshot,
    ProfileStore,
    render_profile,
)
from repro.obs.prometheus import prometheus_text
from repro.obs.sinks import (
    CompositeSink,
    InMemorySink,
    JsonlFileSink,
    NullSink,
    TraceSink,
)
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.trace import Span, Tracer, render_spans

__all__ = [
    "Tracer",
    "Span",
    "render_spans",
    "ReuseDecisionRecord",
    "ReuseAuditTrail",
    "TraceSink",
    "NullSink",
    "InMemorySink",
    "JsonlFileSink",
    "CompositeSink",
    "SlowQueryLog",
    "SlowQueryEntry",
    "prometheus_text",
    "ProfileStore",
    "ProfileSnapshot",
    "render_profile",
    "DriftReport",
    "CalibrationResult",
    "detect_drift",
    "apply_calibration",
    "modeled_model_costs",
    "chrome_trace_document",
    "write_chrome_trace",
]
