"""A slow-query log thresholded on *virtual* seconds.

Wall time is meaningless for query cost in this reproduction (models are
simulated), so "slow" means expensive on the
:class:`~repro.clock.SimulationClock` — exactly the quantity the paper's
Fig. 6 / Table 4 report.  Sessions observe every finished query; entries
above the threshold are kept in a bounded ring and exported as
``slow_query`` events through the tracer's sink.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SlowQueryEntry:
    """One query that exceeded the virtual-seconds threshold."""

    query_text: str
    virtual_seconds: float
    threshold: float
    trace_id: str | None = None
    client_id: str | None = None
    #: Per-category virtual breakdown (category value -> seconds).
    breakdown: dict = field(default_factory=dict)
    rows_returned: int = 0
    #: The top self-time operators of the offending query: dicts of
    #: ``operator`` / ``self_virtual_s`` / ``self_wall_ms`` / ``rows``,
    #: ordered by self virtual seconds descending.  Empty when the query
    #: did not run instrumented (per-operator actuals need the
    #: instrumented engine; see :mod:`repro.executor.instrument`).
    top_operators: tuple = ()
    #: The query's :mod:`~repro.obs.flight` record id and dominant-stage
    #: attribution (``queueing | contention | inference | store-io |
    #: compute``) — the wall-time "why" next to the virtual-time "what".
    #: None when the query ran without flight recording.
    flight_id: str | None = None
    dominant_stage: str | None = None
    #: Lineage ids of every materialized view the query probed (hit or
    #: miss) — joins a slow query to the exact views it touched in the
    #: :mod:`~repro.obs.lineage` ledger.
    views: tuple = ()

    def to_event(self) -> dict:
        return {
            "type": "slow_query",
            "query": self.query_text,
            "virtual_s": round(self.virtual_seconds, 9),
            "threshold_s": self.threshold,
            "trace_id": self.trace_id,
            "client_id": self.client_id,
            "virtual_breakdown": {k: round(v, 9)
                                  for k, v in self.breakdown.items()},
            "rows_returned": self.rows_returned,
            "top_operators": [dict(op) for op in self.top_operators],
            "flight_id": self.flight_id,
            "dominant_stage": self.dominant_stage,
            "views": list(self.views),
        }


class SlowQueryLog:
    """Bounded, thread-safe log of queries slower than ``threshold``
    virtual seconds.  ``threshold=None`` disables observation."""

    def __init__(self, threshold: float | None,
                 capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold = threshold
        self._entries: deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.observed = 0

    def observe(self, query_text: str, virtual_seconds: float, *,
                breakdown: dict | None = None,
                trace_id: str | None = None,
                client_id: str | None = None,
                rows_returned: int = 0,
                top_operators=(),
                flight_id: str | None = None,
                dominant_stage: str | None = None,
                views=()
                ) -> SlowQueryEntry | None:
        """Record the query if it crossed the threshold.

        Returns the entry when the query was slow, else None.
        """
        with self._lock:
            self.observed += 1
        if self.threshold is None or virtual_seconds < self.threshold:
            return None
        entry = SlowQueryEntry(
            query_text=query_text,
            virtual_seconds=virtual_seconds,
            threshold=self.threshold,
            trace_id=trace_id,
            client_id=client_id,
            breakdown=dict(breakdown or {}),
            rows_returned=rows_returned,
            top_operators=tuple(top_operators),
            flight_id=flight_id,
            dominant_stage=dominant_stage,
            views=tuple(views),
        )
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> list[SlowQueryEntry]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
