"""Reuse-algorithm baselines re-implemented within EVA (section 5.1)."""

from repro.baselines.hashstash import RecyclerEntry, RecyclerGraph

__all__ = ["RecyclerGraph", "RecyclerEntry"]
