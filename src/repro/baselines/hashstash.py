"""HashStash baseline: plan-operator-level result recycling.

HashStash (Dursun et al., re-implemented per section 5.1) keeps a *recycler
graph*: one node per operator of each executed plan, holding that operator's
materialized output.  Reuse works by sub-tree matching without requiring
identical predicates: for an incoming query, all recycler nodes with the
same operator sub-tree signature are matched, the union of their
materialized results is deduplicated, and the query's own predicates are
applied on top.

Two structural consequences reproduce the paper's findings:

* only the detector's CROSS APPLY sub-tree ever matches — UDFs inside
  selection predicates are not operators, so CarType/ColorDet results are
  never reused (hence the low hit percentage in Table 2);
* every matched node's results are read and deduplicated in full, which is
  more expensive than EVA's keyed view probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class RecyclerEntry:
    """Materialized output of one operator from one executed plan."""

    signature: str
    #: key (e.g. frame id) -> output rows produced for that key.
    results: dict[Hashable, tuple] = field(default_factory=dict)

    @property
    def num_keys(self) -> int:
        return len(self.results)

    @property
    def num_rows(self) -> int:
        return sum(len(rows) for rows in self.results.values())


class RecyclerGraph:
    """All recycler entries of a session, grouped by operator signature."""

    def __init__(self) -> None:
        self._entries: dict[str, list[RecyclerEntry]] = {}

    def matched(self, signature: str) -> list[RecyclerEntry]:
        """Entries whose operator sub-tree matches ``signature``."""
        return list(self._entries.get(signature, ()))

    def add(self, entry: RecyclerEntry) -> None:
        self._entries.setdefault(entry.signature, []).append(entry)

    def union_of_matched(self, signature: str
                         ) -> tuple[dict[Hashable, tuple], int]:
        """Deduplicated union of all matched results.

        Returns:
            ``(combined, rows_read)`` where ``rows_read`` counts every row
            read *before* deduplication — the cost HashStash pays.
        """
        combined: dict[Hashable, tuple] = {}
        rows_read = 0
        for entry in self.matched(signature):
            for key, rows in entry.results.items():
                rows_read += max(1, len(rows))
                if key not in combined:
                    combined[key] = rows
        return combined, rows_read

    def total_rows(self) -> int:
        return sum(e.num_rows for group in self._entries.values()
                   for e in group)

    def reset(self) -> None:
        self._entries.clear()
