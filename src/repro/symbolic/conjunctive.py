"""Conjunctives: one AND-term of a DNF predicate.

A conjunctive maps dimension names to constraints; dimensions absent from
the map are unconstrained.  Dimension names are column names (``id``,
``label``, ``area``) or UDF term keys prefixed ``udf:`` (e.g.
``udf:car_type(frame,bbox)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.symbolic.domains import Constraint


@dataclass(frozen=True)
class Conjunctive:
    """An immutable conjunction of per-dimension constraints."""

    constraints: Mapping[str, Constraint] = field(default_factory=dict)

    def __post_init__(self):
        # Drop universe constraints; freeze the mapping.
        cleaned = {dim: c for dim, c in self.constraints.items()
                   if not c.is_universe()}
        object.__setattr__(self, "constraints",
                           MappingProxyType(dict(sorted(cleaned.items()))))

    def __reduce__(self):
        # MappingProxyType is not picklable; rebuild through the
        # constructor from a plain dict (re-frozen in __post_init__).
        # Predicates cross process boundaries in the worker pool's
        # shard protocol, so this must round-trip exactly — and does:
        # construction is deterministic and sorted.
        return (Conjunctive, (dict(self.constraints),))

    # -- basic queries -----------------------------------------------------

    @property
    def dimensions(self) -> tuple[str, ...]:
        return tuple(self.constraints)

    def constraint(self, dim: str) -> Constraint | None:
        """Constraint on ``dim`` or None when unconstrained."""
        return self.constraints.get(dim)

    def is_empty(self) -> bool:
        return any(c.is_empty() for c in self.constraints.values())

    def is_universe(self) -> bool:
        return not self.constraints

    def atom_count(self) -> int:
        return sum(c.atom_count() for c in self.constraints.values())

    # -- algebra ------------------------------------------------------------

    def intersect(self, other: "Conjunctive") -> "Conjunctive":
        merged: dict[str, Constraint] = dict(self.constraints)
        for dim, constraint in other.constraints.items():
            existing = merged.get(dim)
            merged[dim] = (constraint if existing is None
                           else existing.intersect(constraint))
        return Conjunctive(merged)

    def with_constraint(self, dim: str, constraint: Constraint
                        ) -> "Conjunctive":
        merged = dict(self.constraints)
        if constraint.is_universe():
            merged.pop(dim, None)
        else:
            merged[dim] = constraint
        return Conjunctive(merged)

    def without_dimension(self, dim: str) -> "Conjunctive":
        merged = dict(self.constraints)
        merged.pop(dim, None)
        return Conjunctive(merged)

    def subset_on_dim(self, other: "Conjunctive", dim: str) -> bool:
        """Is self's constraint on ``dim`` a subset of other's?

        Missing constraints are the universe: universe is a subset only of
        universe, and everything is a subset of universe.
        """
        mine = self.constraints.get(dim)
        theirs = other.constraints.get(dim)
        if theirs is None:
            return True
        if mine is None:
            return theirs.is_universe()
        return mine.is_subset(theirs)

    def is_subset(self, other: "Conjunctive") -> bool:
        """Subset across all dimensions (the paper's case i test)."""
        dims = set(self.constraints) | set(other.constraints)
        return all(self.subset_on_dim(other, d) for d in dims)

    # -- evaluation & equality ----------------------------------------------------

    def satisfied_by(self, values: Mapping[str, object]) -> bool:
        """Evaluate against concrete per-dimension values.

        Missing values fail closed (SQL-ish NULL semantics).
        """
        for dim, constraint in self.constraints.items():
            if dim not in values:
                return False
            if not constraint.contains(values[dim]):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.constraints:
            return "Conj(TRUE)"
        inner = " & ".join(f"{d}:{c!r}" for d, c in self.constraints.items())
        return f"Conj({inner})"
