"""DNF predicates and conversion from expression ASTs (Algorithm 1, step 1).

``dnf_from_expression`` normalizes a predicate: negations are pushed onto
comparisons (De Morgan), AND distributes over OR, and each comparison
becomes a per-dimension constraint.  Only *axis-aligned* comparisons —
``<column-or-UDF-term> cp <literal>`` — are supported; anything else (join
predicates, column-to-column comparisons, arithmetic) raises
:class:`~repro.errors.UnsupportedPredicateError`, mirroring the paper's
stated limitation in section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import UnsupportedPredicateError
from repro.expressions.analysis import conjunction_of, term_key
from repro.expressions.expr import (
    And,
    Arithmetic,
    ColumnRef,
    CompOp,
    Comparison,
    Expression,
    FALSE,
    FunctionCall,
    Literal,
    Not,
    Or,
    TRUE,
)
from repro.symbolic.conjunctive import Conjunctive
from repro.symbolic.domains import (
    CategoricalConstraint,
    Constraint,
    NumericConstraint,
)

#: Prefix marking UDF-term dimensions, e.g. ``udf:car_type(frame,bbox)``.
UDF_DIM_PREFIX = "udf:"


@dataclass(frozen=True)
class DnfPredicate:
    """A disjunction of conjunctives, plus term templates for rendering.

    * no conjunctives        -> FALSE
    * one empty conjunctive  -> TRUE
    """

    conjunctives: tuple[Conjunctive, ...]
    #: dimension name -> the AST expression it denotes (for to_expression).
    terms: Mapping[str, Expression] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "terms", dict(self.terms))

    # -- constructors -----------------------------------------------------------

    @classmethod
    def false(cls) -> "DnfPredicate":
        return cls(())

    @classmethod
    def true(cls) -> "DnfPredicate":
        return cls((Conjunctive(),))

    # -- queries --------------------------------------------------------------

    def is_false(self) -> bool:
        return not self.conjunctives

    def is_true(self) -> bool:
        return any(c.is_universe() for c in self.conjunctives)

    def atom_count(self) -> int:
        """Total atomic formulas across conjunctives (Fig. 7's metric)."""
        return sum(c.atom_count() for c in self.conjunctives)

    def dimensions(self) -> set[str]:
        dims: set[str] = set()
        for conjunctive in self.conjunctives:
            dims.update(conjunctive.dimensions)
        return dims

    def satisfied_by(self, values: Mapping[str, object]) -> bool:
        return any(c.satisfied_by(values) for c in self.conjunctives)

    # -- rendering -----------------------------------------------------------

    def to_expression(self) -> Expression:
        if self.is_false():
            return FALSE
        if self.is_true():
            return TRUE
        disjuncts: list[Expression] = []
        for conjunctive in self.conjunctives:
            atoms: list[Expression] = []
            for dim, constraint in conjunctive.constraints.items():
                term = self.terms.get(dim, ColumnRef(_strip_udf_prefix(dim)))
                rendered = constraint.to_comparisons(term)
                if rendered is not None:
                    atoms.append(rendered)
            disjuncts.append(conjunction_of(atoms))
        if len(disjuncts) == 1:
            return disjuncts[0]
        return Or(tuple(disjuncts))

    # -- structure helpers ------------------------------------------------------

    def with_conjunctives(self, conjunctives: tuple[Conjunctive, ...]
                          ) -> "DnfPredicate":
        return DnfPredicate(conjunctives, self.terms)

    def merged_terms(self, other: "DnfPredicate") -> dict[str, Expression]:
        merged = dict(self.terms)
        merged.update(other.terms)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_false():
            return "Dnf(FALSE)"
        return "Dnf(" + " | ".join(repr(c) for c in self.conjunctives) + ")"


def _strip_udf_prefix(dim: str) -> str:
    return dim[len(UDF_DIM_PREFIX):] if dim.startswith(UDF_DIM_PREFIX) else dim


def dimension_of(term: Expression) -> str:
    """Dimension name for an atomic comparison's non-literal side."""
    if isinstance(term, ColumnRef):
        return term.name
    if isinstance(term, FunctionCall):
        return UDF_DIM_PREFIX + term_key(term)
    raise UnsupportedPredicateError(
        f"not an axis-aligned term: {term.to_sql()}")


def dnf_from_expression(expr: Expression | None) -> DnfPredicate:
    """Convert a predicate AST into DNF over dimensions."""
    if expr is None:
        return DnfPredicate.true()
    normalized = _push_not(expr, negate=False)
    return _to_dnf(normalized)


def _push_not(expr: Expression, negate: bool) -> Expression:
    """Push negations down to comparisons; result has no Not nodes."""
    if isinstance(expr, Not):
        return _push_not(expr.operand, not negate)
    if isinstance(expr, And):
        operands = tuple(_push_not(o, negate) for o in expr.operands)
        return Or(operands) if negate else And(operands)
    if isinstance(expr, Or):
        operands = tuple(_push_not(o, negate) for o in expr.operands)
        return And(operands) if negate else Or(operands)
    if isinstance(expr, Comparison):
        if negate:
            return Comparison(expr.left, expr.op.negate(), expr.right)
        return expr
    if isinstance(expr, Literal) and isinstance(expr.value, bool):
        return Literal(expr.value != negate)
    if isinstance(expr, (ColumnRef, FunctionCall)):
        # Bare boolean term, e.g. a frame-filter UDF used as a predicate:
        # canonicalize to `term = True` / `term = False`.
        return Comparison(expr, CompOp.EQ, Literal(not negate))
    raise UnsupportedPredicateError(
        f"cannot normalize predicate node {expr!r}")


def _to_dnf(expr: Expression) -> DnfPredicate:
    if isinstance(expr, Literal):
        if expr.value is True:
            return DnfPredicate.true()
        if expr.value is False:
            return DnfPredicate.false()
        raise UnsupportedPredicateError(
            f"non-boolean literal predicate {expr.value!r}")
    if isinstance(expr, Comparison):
        return _atomic_dnf(expr)
    if isinstance(expr, Or):
        conjunctives: list[Conjunctive] = []
        terms: dict[str, Expression] = {}
        for operand in expr.operands:
            part = _to_dnf(operand)
            conjunctives.extend(part.conjunctives)
            terms.update(part.terms)
        alive = tuple(c for c in conjunctives if not c.is_empty())
        return DnfPredicate(alive, terms)
    if isinstance(expr, And):
        result = DnfPredicate.true()
        for operand in expr.operands:
            part = _to_dnf(operand)
            result = _cross_product(result, part)
        return result
    raise UnsupportedPredicateError(f"cannot convert {expr!r} to DNF")


def _cross_product(left: DnfPredicate, right: DnfPredicate) -> DnfPredicate:
    conjunctives: list[Conjunctive] = []
    for lc in left.conjunctives:
        for rc in right.conjunctives:
            merged = lc.intersect(rc)
            if not merged.is_empty():
                conjunctives.append(merged)
    return DnfPredicate(tuple(conjunctives), left.merged_terms(right))


def _atomic_dnf(comparison: Comparison) -> DnfPredicate:
    left, op, right = comparison.left, comparison.op, comparison.right
    if _is_arithmetic_comparison(left, right):
        return _affine_dnf(comparison)
    if isinstance(left, Literal) and not isinstance(right, Literal):
        left, right = right, left
        op = op.flip()
    if not isinstance(right, Literal):
        raise UnsupportedPredicateError(
            f"non-axis-aligned comparison: {comparison.to_sql()} "
            "(join predicates are future work, paper section 6)")
    dim = dimension_of(left)
    constraint = _constraint_for(op, right.value, comparison)
    conjunctive = Conjunctive({dim: constraint})
    if conjunctive.is_empty():
        return DnfPredicate((), {dim: left})
    return DnfPredicate((conjunctive,), {dim: left})


def _is_arithmetic_comparison(left: Expression, right: Expression) -> bool:
    return isinstance(left, Arithmetic) or isinstance(right, Arithmetic)


def _affine_dnf(comparison: Comparison) -> DnfPredicate:
    """Solve an affine comparison down to an axis-aligned constraint.

    Both sides are linearized into ``a * term + b``; the comparison
    ``a1*t + b1 cp a2*t + b2`` becomes ``t cp' (b2 - b1) / (a1 - a2)``,
    flipping the operator when the combined coefficient is negative.
    """
    left_lin = _linearize(comparison.left)
    right_lin = _linearize(comparison.right)
    a1, b1, term1 = left_lin
    a2, b2, term2 = right_lin
    if term1 is not None and term2 is not None and term1 != term2:
        raise UnsupportedPredicateError(
            f"comparison over two distinct terms: {comparison.to_sql()}")
    term = term1 if term1 is not None else term2
    coeff = a1 - a2
    offset = b2 - b1
    op = comparison.op
    if term is None or coeff == 0:
        # Constant truth value.
        truthy = op.apply(b1, b2)
        return DnfPredicate.true() if truthy else DnfPredicate.false()
    if coeff < 0:
        op = op.flip()
    dim = dimension_of(term)
    constraint = _constraint_for(op, offset / coeff, comparison)
    conjunctive = Conjunctive({dim: constraint})
    if conjunctive.is_empty():
        return DnfPredicate((), {dim: term})
    return DnfPredicate((conjunctive,), {dim: term})


def _linearize(expr: Expression) -> tuple[float, float, Expression | None]:
    """``expr`` as (coefficient, offset, term); term None for constants."""
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise UnsupportedPredicateError(
                f"non-numeric literal in arithmetic: {expr.to_sql()}")
        return 0.0, float(value), None
    if isinstance(expr, (ColumnRef, FunctionCall)):
        return 1.0, 0.0, expr
    if isinstance(expr, Arithmetic):
        a1, b1, t1 = _linearize(expr.left)
        a2, b2, t2 = _linearize(expr.right)
        if t1 is not None and t2 is not None and t1 != t2:
            raise UnsupportedPredicateError(
                f"arithmetic over two terms: {expr.to_sql()}")
        term = t1 if t1 is not None else t2
        if expr.op == "+":
            return a1 + a2, b1 + b2, term
        if expr.op == "-":
            return a1 - a2, b1 - b2, term
        if expr.op == "*":
            if t1 is not None and t2 is not None:
                raise UnsupportedPredicateError(
                    f"non-affine product: {expr.to_sql()}")
            if t2 is None:
                return a1 * b2, b1 * b2, t1
            return a2 * b1, b2 * b1, t2
        # Division: only by a non-zero constant stays affine.
        if t2 is not None:
            raise UnsupportedPredicateError(
                f"division by a term: {expr.to_sql()}")
        if b2 == 0:
            raise UnsupportedPredicateError(
                f"division by zero: {expr.to_sql()}")
        return a1 / b2, b1 / b2, t1
    raise UnsupportedPredicateError(
        f"cannot linearize {expr.to_sql()}")


def _constraint_for(op, value, comparison: Comparison) -> Constraint:
    if isinstance(value, bool):
        return CategoricalConstraint.from_comparison(op, value)
    if isinstance(value, (int, float)):
        return NumericConstraint.from_comparison(op, value)
    if isinstance(value, str):
        return CategoricalConstraint.from_comparison(op, value)
    raise UnsupportedPredicateError(
        f"unsupported literal type in {comparison.to_sql()}")
