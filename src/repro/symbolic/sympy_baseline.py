"""The sympy ``simplify`` baseline of Fig. 7.

The paper compares EVA's reduction algorithm against SymPy's off-the-shelf
boolean simplification (pattern matching + Quine-McCluskey).  That approach
treats each relational atom as an opaque proposition, so it cannot exploit
interactions between inequalities (``x < 5`` implies ``x < 10``) — exactly
the failure mode Fig. 7 demonstrates on polyadic predicates.

This module reproduces the baseline: an expression AST is translated into a
sympy boolean formula over relational atoms and fed to
``sympy.logic.boolalg.simplify_logic``; the atom count of the result is the
Fig. 7 metric.
"""

from __future__ import annotations

import sympy
from sympy.logic.boolalg import simplify_logic

from repro.errors import UnsupportedPredicateError
from repro.expressions.expr import (
    And,
    ColumnRef,
    CompOp,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Not,
    Or,
)
from repro.expressions.analysis import term_key


class SympySimplifyBaseline:
    """Boolean simplification with relational atoms treated as opaque."""

    #: ``simplify_logic`` is double-exponential past this many distinct
    #: atoms; beyond it we keep the formula as-is (the baseline "gives up",
    #: which matches the unbounded growth the paper observed).
    MAX_ATOMS_FOR_SIMPLIFY = 12

    def __init__(self) -> None:
        self._atom_cache: dict[tuple, sympy.Symbol] = {}

    def simplify(self, expr: Expression) -> sympy.Basic:
        return self.simplify_formula(self._translate(expr))

    def simplify_formula(self, formula: sympy.Basic) -> sympy.Basic:
        """Simplify an already-translated boolean formula (capped)."""
        if len(formula.atoms(sympy.Symbol)) > self.MAX_ATOMS_FOR_SIMPLIFY:
            return formula
        return simplify_logic(formula)

    def atom_count(self, formula: sympy.Basic) -> int:
        """Number of atomic propositions in a simplified formula."""
        if formula in (sympy.true, sympy.false):
            return 0 if formula == sympy.true else 1
        if isinstance(formula, sympy.Symbol):
            return 1
        if isinstance(formula, sympy.Not):
            return self.atom_count(formula.args[0])
        return sum(self.atom_count(arg) for arg in formula.args)

    # -- translation -----------------------------------------------------------

    def _translate(self, expr: Expression) -> sympy.Basic:
        if isinstance(expr, And):
            return sympy.And(*[self._translate(o) for o in expr.operands])
        if isinstance(expr, Or):
            return sympy.Or(*[self._translate(o) for o in expr.operands])
        if isinstance(expr, Not):
            return sympy.Not(self._translate(expr.operand))
        if isinstance(expr, Comparison):
            return self._atom(expr)
        if isinstance(expr, Literal) and isinstance(expr.value, bool):
            return sympy.true if expr.value else sympy.false
        raise UnsupportedPredicateError(
            f"baseline cannot translate {expr!r}")

    def _atom(self, comparison: Comparison) -> sympy.Basic:
        left, op, right = comparison.left, comparison.op, comparison.right
        if isinstance(left, Literal) and not isinstance(right, Literal):
            left, right = right, left
            op = op.flip()
        if not isinstance(right, Literal):
            raise UnsupportedPredicateError(
                f"baseline cannot translate {comparison.to_sql()}")
        term = self._term_name(left)
        # Negated relations reuse the positive atom under a NOT so that
        # Quine-McCluskey can at least cancel ``p`` with ``NOT p``.
        canonical = {
            CompOp.GE: (CompOp.LT, True),
            CompOp.GT: (CompOp.LE, True),
            CompOp.NE: (CompOp.EQ, True),
        }
        op2, negated = canonical.get(op, (op, False))
        key = (term, op2.value, repr(right.value))
        symbol = self._atom_cache.get(key)
        if symbol is None:
            symbol = sympy.Symbol(f"a{len(self._atom_cache)}")
            self._atom_cache[key] = symbol
        return sympy.Not(symbol) if negated else symbol

    @staticmethod
    def _term_name(term: Expression) -> str:
        if isinstance(term, ColumnRef):
            return term.name
        if isinstance(term, FunctionCall):
            return term_key(term)
        raise UnsupportedPredicateError(
            f"baseline cannot name term {term!r}")
