"""Algorithm 1: symbolic predicate reduction.

The input predicate is already in DNF (step 1) with every conjunctive
internally reduced (per-dimension constraint intersection happens at
construction time, step 2).  This module implements step 3: repeatedly pop
pairs of conjunctives and attempt ``ReduceUnionConjunctives`` until no pair
can be reduced or a time budget expires.

``ReduceUnionConjunctives`` implements the paper's N-1-dimension rule: when
conjunctive ``c2`` is a subset of ``c1`` in at least N-1 of the N dimensions
of ``c1 OR c2``, the union is reducible:

* subset in **all** dimensions  -> drop ``c2``                     (case i)
* subset in all but ``d``, equal elsewhere -> merge along ``d``    (case ii)
* subset in all but ``d``, strict elsewhere -> carve the overlap
  out of ``c2`` along ``d`` so the conjunctives become disjoint    (case iii)

The remaining-dimension unions and differences are delegated to the
computer algebra system (sympy set arithmetic inside the constraints).
"""

from __future__ import annotations

import time

from repro.symbolic.conjunctive import Conjunctive
from repro.symbolic.dnf import DnfPredicate

#: Default wall-clock budget for the cross-conjunctive reduction loop.
DEFAULT_TIME_BUDGET = 0.5


def reduce_predicate(dnf: DnfPredicate,
                     time_budget: float = DEFAULT_TIME_BUDGET
                     ) -> DnfPredicate:
    """Simplify ``dnf``: fewer conjunctives and atoms, same semantics."""
    conjunctives = [c for c in dnf.conjunctives if not c.is_empty()]
    if any(c.is_universe() for c in conjunctives):
        return DnfPredicate((Conjunctive(),), dnf.terms)
    deadline = time.monotonic() + time_budget
    changed = True
    while changed and time.monotonic() < deadline:
        changed = False
        for i in range(len(conjunctives)):
            for j in range(i + 1, len(conjunctives)):
                replacement = reduce_union_conjunctives(
                    conjunctives[i], conjunctives[j])
                if replacement is None:
                    continue
                # Replace the pair and restart the scan.
                rest = [c for k, c in enumerate(conjunctives)
                        if k not in (i, j)]
                conjunctives = rest + [c for c in replacement
                                       if not c.is_empty()]
                changed = True
                break
            if changed:
                break
    return DnfPredicate(tuple(conjunctives), dnf.terms)


def reduce_union_conjunctives(c1: Conjunctive, c2: Conjunctive
                              ) -> list[Conjunctive] | None:
    """Try to reduce ``c1 OR c2``; None when no reduction applies."""
    for first, second in ((c1, c2), (c2, c1)):
        replacement = _reduce_directed(first, second)
        if replacement is not None:
            return replacement
    return None


def _reduce_directed(c1: Conjunctive, c2: Conjunctive
                     ) -> list[Conjunctive] | None:
    """Reduce assuming ``c2`` may be (mostly) inside ``c1``."""
    dims = sorted(set(c1.dimensions) | set(c2.dimensions))
    outside = [d for d in dims if not c2.subset_on_dim(c1, d)]
    if not outside:
        return [c1]  # case i: c2 subsumed entirely
    if len(outside) > 1:
        return None  # no N-1 dimension relationship this direction
    dim = outside[0]
    others_equal = all(
        d == dim or c1.subset_on_dim(c2, d) for d in dims)
    # ``dim`` being outside implies c1 constrains it (an unconstrained c1
    # dimension is a superset of anything); c2 may be unconstrained there.
    constraint1 = c1.constraint(dim)
    if constraint1 is None:
        return None  # defensive: nothing to merge against
    constraint2 = c2.constraint(dim)
    if others_equal:
        # Case ii: identical on every other dimension; concatenate along
        # ``dim`` using the CAS set union.
        if constraint2 is None:
            return [c2]  # c2 covers the whole dimension: c1 is subsumed
        merged = constraint1.union(constraint2)
        candidate = c1.with_constraint(dim, merged)
        if candidate.atom_count() <= c1.atom_count() + c2.atom_count():
            return [candidate]
        return None
    # Case iii: c2 strictly inside c1 on the other dimensions; carve the
    # overlap out of c2 along ``dim`` so the disjuncts become disjoint.
    carved = (constraint1.complement() if constraint2 is None
              else constraint2.subtract(constraint1))
    if carved.is_empty():
        return [c1]
    if constraint2 is not None and carved == constraint2:
        return None  # already disjoint; nothing to do
    candidate = c2.with_constraint(dim, carved)
    if candidate.atom_count() <= c2.atom_count() + constraint1.atom_count():
        return [c1, candidate]
    return None
