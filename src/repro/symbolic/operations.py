"""Derived predicates: INTER, DIFF, UNION, and negation (section 3.2).

For UDF invocations X (historical, predicate ``p1``) and Y (incoming,
predicate ``p2``) with the same signature:

* ``intersection(p1, p2)`` = p1 AND p2   — tuples whose results are reusable;
* ``difference(p1, p2)``   = (NOT p1) AND p2 — tuples Y must still compute;
* ``union(p1, p2)``        = p1 OR p2    — tuples materialized afterwards.

All results are reduced with Algorithm 1 before being returned.
"""

from __future__ import annotations

from repro.symbolic.conjunctive import Conjunctive
from repro.symbolic.dnf import DnfPredicate
from repro.symbolic.reduce import DEFAULT_TIME_BUDGET, reduce_predicate


def intersection(p1: DnfPredicate, p2: DnfPredicate,
                 time_budget: float = DEFAULT_TIME_BUDGET) -> DnfPredicate:
    """``p1 AND p2`` in reduced DNF."""
    conjunctives = []
    for c1 in p1.conjunctives:
        for c2 in p2.conjunctives:
            merged = c1.intersect(c2)
            if not merged.is_empty():
                conjunctives.append(merged)
    raw = DnfPredicate(tuple(conjunctives), p1.merged_terms(p2))
    return reduce_predicate(raw, time_budget)


def union(p1: DnfPredicate, p2: DnfPredicate,
          time_budget: float = DEFAULT_TIME_BUDGET) -> DnfPredicate:
    """``p1 OR p2`` in reduced DNF."""
    raw = DnfPredicate(p1.conjunctives + p2.conjunctives,
                       p1.merged_terms(p2))
    return reduce_predicate(raw, time_budget)


def negation(p: DnfPredicate,
             time_budget: float = DEFAULT_TIME_BUDGET) -> DnfPredicate:
    """``NOT p`` in reduced DNF.

    The negation of a DNF is a CNF whose clauses are the dimension-wise
    complements of each conjunctive; distributing it back to DNF is
    exponential in the worst case, which is why the result is immediately
    reduced (and why the paper bounds symbolic analysis with a time budget).
    """
    result = DnfPredicate.true()
    for conjunctive in p.conjunctives:
        clause = _negate_conjunctive(conjunctive, p)
        result = intersection(result, clause, time_budget)
        if result.is_false():
            break
    return result


def difference(p1: DnfPredicate, p2: DnfPredicate,
               time_budget: float = DEFAULT_TIME_BUDGET) -> DnfPredicate:
    """``(NOT p1) AND p2``: the tuples only ``p2`` covers."""
    if p1.is_false():
        return reduce_predicate(p2, time_budget)
    return intersection(negation(p1, time_budget), p2, time_budget)


def _negate_conjunctive(conjunctive: Conjunctive,
                        parent: DnfPredicate) -> DnfPredicate:
    """NOT of one conjunctive: OR over dims of the complemented constraint."""
    if conjunctive.is_universe():
        return DnfPredicate.false()
    disjuncts = []
    for dim, constraint in conjunctive.constraints.items():
        complemented = constraint.complement()
        if complemented.is_empty():
            continue
        disjuncts.append(Conjunctive({dim: complemented}))
    return DnfPredicate(tuple(disjuncts), parent.terms)
