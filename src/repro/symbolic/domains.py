"""Per-dimension constraint domains.

A *constraint* restricts one dimension (a column or a UDF term).  Numeric
dimensions use sympy real sets — intervals, finite point sets, and their
unions — which is exactly the "inequality solver" capability of a computer
algebra system the paper leverages (section 5.4).  Categorical dimensions
(labels, classifier outputs) use finite value sets with an optional
complement flag, since their universe is open-ended.

Every constraint supports the algebra Algorithm 1 needs — intersection,
union, complement, subset tests — plus an *atom count*: the number of
atomic comparison formulas required to express it, the metric Fig. 7 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy
from sympy import Interval, FiniteSet, S, Union as SymUnion

from repro.errors import UnsupportedPredicateError
from repro.expressions.expr import CompOp, Comparison, Expression, Literal, Or


def _rationalize(value):
    """Exact rational for a numeric literal.

    ``sympy.nsimplify(..., rational=True)`` runs a PSLQ constant search —
    tens of milliseconds per float — but query literals are decimal text,
    so ``Rational(str(v))`` recovers the same exact rational directly
    (Python's shortest-repr floats round-trip the typed decimal).
    Anything exotic falls back to nsimplify.
    """
    if isinstance(value, bool):
        return sympy.Integer(int(value))
    if isinstance(value, int):
        return sympy.Integer(value)
    if isinstance(value, float):
        try:
            return sympy.Rational(str(value))
        except (ValueError, TypeError):
            return sympy.nsimplify(value, rational=True)
    return sympy.nsimplify(value, rational=True)


class Constraint:
    """Base class; see :class:`NumericConstraint` and
    :class:`CategoricalConstraint`."""

    def intersect(self, other: "Constraint") -> "Constraint":
        raise NotImplementedError

    def union(self, other: "Constraint") -> "Constraint":
        raise NotImplementedError

    def complement(self) -> "Constraint":
        raise NotImplementedError

    def subtract(self, other: "Constraint") -> "Constraint":
        return self.intersect(other.complement())

    def is_empty(self) -> bool:
        raise NotImplementedError

    def is_universe(self) -> bool:
        raise NotImplementedError

    def is_subset(self, other: "Constraint") -> bool:
        """Conservative subset test (False when undecidable)."""
        raise NotImplementedError

    def atom_count(self) -> int:
        raise NotImplementedError

    def contains(self, value) -> bool:
        """Does a concrete value satisfy the constraint?"""
        raise NotImplementedError

    def to_comparisons(self, term: Expression) -> Expression | None:
        """Render back to an AST predicate over ``term``; None = TRUE."""
        raise NotImplementedError


@dataclass(frozen=True)
class NumericConstraint(Constraint):
    """A set of reals, held as a canonical sympy set."""

    sset: sympy.Set

    # -- constructors ---------------------------------------------------------

    @classmethod
    def universe(cls) -> "NumericConstraint":
        return cls(S.Reals)

    @classmethod
    def empty(cls) -> "NumericConstraint":
        return cls(S.EmptySet)

    @classmethod
    def from_comparison(cls, op: CompOp, value) -> "NumericConstraint":
        value = _rationalize(value)
        if op is CompOp.LT:
            return cls(Interval.open(-sympy.oo, value))
        if op is CompOp.LE:
            return cls(Interval(-sympy.oo, value))
        if op is CompOp.GT:
            return cls(Interval.open(value, sympy.oo))
        if op is CompOp.GE:
            return cls(Interval(value, sympy.oo))
        if op is CompOp.EQ:
            return cls(FiniteSet(value))
        if op is CompOp.NE:
            return cls(SymUnion(Interval.open(-sympy.oo, value),
                                Interval.open(value, sympy.oo)))
        raise UnsupportedPredicateError(f"unsupported operator {op}")

    @classmethod
    def interval(cls, lo, hi, left_open: bool = False,
                 right_open: bool = False) -> "NumericConstraint":
        return cls(Interval(_rationalize(lo), _rationalize(hi),
                            left_open, right_open))

    # -- algebra ----------------------------------------------------------------

    def intersect(self, other: Constraint) -> "NumericConstraint":
        other = self._coerce(other)
        return NumericConstraint(self.sset.intersect(other.sset))

    def union(self, other: Constraint) -> "NumericConstraint":
        other = self._coerce(other)
        return NumericConstraint(SymUnion(self.sset, other.sset))

    def complement(self) -> "NumericConstraint":
        return NumericConstraint(S.Reals - self.sset)

    def is_empty(self) -> bool:
        return self.sset is S.EmptySet or self.sset.is_empty is True

    def is_universe(self) -> bool:
        return self.sset == S.Reals

    def is_subset(self, other: Constraint) -> bool:
        other = self._coerce(other)
        result = self.sset.is_subset(other.sset)
        return bool(result) if result is not None else False

    def contains(self, value) -> bool:
        try:
            return bool(self.sset.contains(_rationalize(value)))
        except (TypeError, ValueError):
            return False

    # -- rendering ----------------------------------------------------------------

    def atom_count(self) -> int:
        return _set_atom_count(self.sset)

    def to_comparisons(self, term: Expression) -> Expression | None:
        if self.is_universe():
            return None
        pieces = _set_pieces(self.sset)
        disjuncts: list[Expression] = []
        for piece in pieces:
            expr = _piece_to_expression(piece, term)
            if expr is not None:
                disjuncts.append(expr)
        if not disjuncts:
            from repro.expressions.expr import FALSE
            return FALSE
        if len(disjuncts) == 1:
            return disjuncts[0]
        return Or(tuple(disjuncts))

    @staticmethod
    def _coerce(other: Constraint) -> "NumericConstraint":
        if not isinstance(other, NumericConstraint):
            raise UnsupportedPredicateError(
                "mixed numeric/categorical constraints on one dimension")
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Num({self.sset})"


@dataclass(frozen=True)
class CategoricalConstraint(Constraint):
    """A finite set of values, or the complement of one.

    ``complemented=False`` means "value in ``values``";
    ``complemented=True`` means "value not in ``values``".  The categorical
    universe is open (any string), so complements stay symbolic.
    """

    values: frozenset
    complemented: bool = False

    @classmethod
    def universe(cls) -> "CategoricalConstraint":
        return cls(frozenset(), complemented=True)

    @classmethod
    def empty(cls) -> "CategoricalConstraint":
        return cls(frozenset(), complemented=False)

    @classmethod
    def from_comparison(cls, op: CompOp, value) -> "CategoricalConstraint":
        if op is CompOp.EQ:
            return cls(frozenset([value]))
        if op is CompOp.NE:
            return cls(frozenset([value]), complemented=True)
        raise UnsupportedPredicateError(
            f"ordering comparison {op.value!r} on a categorical value")

    # -- algebra (complement-aware set arithmetic) -----------------------------

    def intersect(self, other: Constraint) -> "CategoricalConstraint":
        other = self._coerce(other)
        if not self.complemented and not other.complemented:
            return CategoricalConstraint(self.values & other.values)
        if not self.complemented and other.complemented:
            return CategoricalConstraint(self.values - other.values)
        if self.complemented and not other.complemented:
            return CategoricalConstraint(other.values - self.values)
        return CategoricalConstraint(self.values | other.values,
                                     complemented=True)

    def union(self, other: Constraint) -> "CategoricalConstraint":
        other = self._coerce(other)
        if not self.complemented and not other.complemented:
            return CategoricalConstraint(self.values | other.values)
        if not self.complemented and other.complemented:
            return CategoricalConstraint(other.values - self.values,
                                         complemented=True)
        if self.complemented and not other.complemented:
            return CategoricalConstraint(self.values - other.values,
                                         complemented=True)
        return CategoricalConstraint(self.values & other.values,
                                     complemented=True)

    def complement(self) -> "CategoricalConstraint":
        return CategoricalConstraint(self.values, not self.complemented)

    def is_empty(self) -> bool:
        return not self.complemented and not self.values

    def is_universe(self) -> bool:
        return self.complemented and not self.values

    def is_subset(self, other: Constraint) -> bool:
        other = self._coerce(other)
        if not self.complemented and not other.complemented:
            return self.values <= other.values
        if not self.complemented and other.complemented:
            return not (self.values & other.values)
        if self.complemented and not other.complemented:
            # An infinite co-finite set fits in a finite set only if empty.
            return False
        return other.values <= self.values

    def contains(self, value) -> bool:
        inside = value in self.values
        return not inside if self.complemented else inside

    # -- rendering -----------------------------------------------------------------

    def atom_count(self) -> int:
        return len(self.values)

    def to_comparisons(self, term: Expression) -> Expression | None:
        from repro.expressions.analysis import conjunction_of

        if self.is_universe():
            return None
        op = CompOp.NE if self.complemented else CompOp.EQ
        atoms = [Comparison(term, op, Literal(v))
                 for v in sorted(self.values, key=repr)]
        if not atoms:
            from repro.expressions.expr import FALSE
            return FALSE  # empty inclusion set: unsatisfiable
        if self.complemented:
            return conjunction_of(atoms)
        return atoms[0] if len(atoms) == 1 else Or(tuple(atoms))

    @staticmethod
    def _coerce(other: Constraint) -> "CategoricalConstraint":
        if not isinstance(other, CategoricalConstraint):
            raise UnsupportedPredicateError(
                "mixed numeric/categorical constraints on one dimension")
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prefix = "NOT " if self.complemented else ""
        return f"Cat({prefix}{set(self.values) or '{}'})"


# -- sympy set helpers ------------------------------------------------------------


def _set_pieces(sset: sympy.Set) -> list[sympy.Set]:
    """Decompose a canonical real set into disjoint intervals/points."""
    if isinstance(sset, SymUnion):
        pieces: list[sympy.Set] = []
        for arg in sset.args:
            pieces.extend(_set_pieces(arg))
        return pieces
    if isinstance(sset, FiniteSet):
        return [FiniteSet(v) for v in sset.args]
    if sset is S.EmptySet:
        return []
    return [sset]


def _set_atom_count(sset: sympy.Set) -> int:
    """Atomic comparison formulas needed to express ``sset``.

    A two-sided interval costs 2 atoms, a half-line 1, a point 1; the
    special shape (-oo, v) U (v, oo) is a single ``!=`` atom.
    """
    if sset == S.Reals:
        return 0
    if sset is S.EmptySet:
        return 1  # the formula FALSE
    if isinstance(sset, FiniteSet):
        return len(sset.args)
    if isinstance(sset, Interval):
        atoms = 0
        if sset.start != -sympy.oo:
            atoms += 1
        if sset.end != sympy.oo:
            atoms += 1
        return max(atoms, 1)
    if isinstance(sset, SymUnion):
        point = _not_equal_point(sset)
        if point is not None:
            return 1
        return sum(_set_atom_count(arg) for arg in sset.args)
    if isinstance(sset, sympy.Complement):
        universe, removed = sset.args
        if universe == S.Reals and isinstance(removed, FiniteSet):
            return len(removed.args)
    # Unknown shape: count leaf sets conservatively.
    return max(1, len(sset.args))


def _not_equal_point(sset: SymUnion):
    """If ``sset`` is (-oo, v) U (v, oo), return v, else None."""
    if len(sset.args) != 2:
        return None
    left, right = sorted(sset.args, key=lambda s: str(s))
    if not (isinstance(left, Interval) and isinstance(right, Interval)):
        return None
    candidates = [(left, right), (right, left)]
    for lo, hi in candidates:
        if (lo.start == -sympy.oo and hi.end == sympy.oo
                and lo.end == hi.start and lo.right_open and hi.left_open):
            return lo.end
    return None


def _piece_to_expression(piece: sympy.Set, term: Expression
                         ) -> Expression | None:
    from repro.expressions.analysis import conjunction_of

    if isinstance(piece, FiniteSet):
        values = [_to_python_number(v) for v in piece.args]
        atoms = [Comparison(term, CompOp.EQ, Literal(v)) for v in values]
        return atoms[0] if len(atoms) == 1 else Or(tuple(atoms))
    if isinstance(piece, Interval):
        atoms: list[Expression] = []
        if piece.start != -sympy.oo:
            op = CompOp.GT if piece.left_open else CompOp.GE
            atoms.append(Comparison(term, op,
                                    Literal(_to_python_number(piece.start))))
        if piece.end != sympy.oo:
            op = CompOp.LT if piece.right_open else CompOp.LE
            atoms.append(Comparison(term, op,
                                    Literal(_to_python_number(piece.end))))
        if not atoms:
            return None
        return conjunction_of(atoms)
    raise UnsupportedPredicateError(
        f"cannot render sympy set {piece} back to a predicate")


def _to_python_number(value: sympy.Expr):
    if value.is_Integer:
        return int(value)
    return float(value)
