"""Symbolic predicate analysis (section 4.1 of the paper).

Predicates are normalized into disjunctive normal form over *dimensions*
(columns and UDF terms).  Numeric dimensions carry sympy interval sets;
categorical dimensions carry finite value sets with complements.  On top of
this representation the engine implements the paper's Algorithm 1
(predicate reduction), the INTER/DIFF/UNION derived predicates, and
histogram-based selectivity estimation.
"""

from repro.symbolic.domains import (
    CategoricalConstraint,
    Constraint,
    NumericConstraint,
)
from repro.symbolic.conjunctive import Conjunctive
from repro.symbolic.dnf import DnfPredicate, dnf_from_expression
from repro.symbolic.reduce import reduce_predicate
from repro.symbolic.operations import (
    difference,
    intersection,
    negation,
    union,
)
from repro.symbolic.selectivity import SelectivityEstimator
from repro.symbolic.engine import SymbolicEngine

__all__ = [
    "Constraint",
    "NumericConstraint",
    "CategoricalConstraint",
    "Conjunctive",
    "DnfPredicate",
    "dnf_from_expression",
    "reduce_predicate",
    "intersection",
    "difference",
    "union",
    "negation",
    "SelectivityEstimator",
    "SymbolicEngine",
]
