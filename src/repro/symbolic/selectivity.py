"""Selectivity estimation over DNF predicates.

Per-dimension masses come from the catalog's histogram/frequency statistics;
conjunctive selectivity multiplies dimension masses (the independence
assumption the paper and the predicate-ordering literature share, Theorem
4.1 footnote); the disjunction is combined with inclusion-exclusion.
"""

from __future__ import annotations

from typing import Callable

import sympy
from sympy import FiniteSet, Interval, S, Union as SymUnion

from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.symbolic.conjunctive import Conjunctive
from repro.symbolic.dnf import DnfPredicate
from repro.symbolic.domains import (
    CategoricalConstraint,
    Constraint,
    NumericConstraint,
)

#: Inclusion-exclusion is exponential in the number of conjunctives; past
#: this many we fall back to the (capped) union bound.
_MAX_EXACT_DISJUNCTS = 10

StatsResolver = Callable[[str], ColumnStatistics | None]


class SelectivityEstimator:
    """Estimates the fraction of rows a DNF predicate selects."""

    def __init__(self, resolver: StatsResolver,
                 default_selectivity: float | None = None):
        self._resolver = resolver
        self._default = (TableStatistics.DEFAULT_SELECTIVITY
                         if default_selectivity is None
                         else default_selectivity)

    @classmethod
    def for_table(cls, stats: TableStatistics) -> "SelectivityEstimator":
        return cls(stats.get)

    # -- public API ----------------------------------------------------------

    def selectivity(self, predicate: DnfPredicate) -> float:
        """Estimated selectivity in [0, 1]."""
        if predicate.is_false():
            return 0.0
        if predicate.is_true():
            return 1.0
        conjunctives = list(predicate.conjunctives)
        if len(conjunctives) <= _MAX_EXACT_DISJUNCTS:
            return self._inclusion_exclusion(conjunctives)
        return min(1.0, sum(self.conjunctive_selectivity(c)
                            for c in conjunctives))

    def conjunctive_selectivity(self, conjunctive: Conjunctive) -> float:
        product = 1.0
        for dim, constraint in conjunctive.constraints.items():
            product *= self.constraint_mass(dim, constraint)
            if product == 0.0:
                return 0.0
        return product

    def constraint_mass(self, dim: str, constraint: Constraint) -> float:
        """Fraction of rows satisfying one dimension's constraint."""
        if constraint.is_universe():
            return 1.0
        if constraint.is_empty():
            return 0.0
        stats = self._resolver(dim)
        if stats is None:
            return self._default
        if isinstance(constraint, NumericConstraint):
            return _clamp(_numeric_mass(stats, constraint.sset))
        if isinstance(constraint, CategoricalConstraint):
            return _clamp(stats.categorical_mass(
                constraint.values, constraint.complemented))
        return self._default

    # -- internals -----------------------------------------------------------

    def _inclusion_exclusion(self, conjunctives: list[Conjunctive]) -> float:
        total = 0.0
        n = len(conjunctives)
        # Iterate over non-empty subsets via bitmasks.
        for mask in range(1, 1 << n):
            subset = [conjunctives[i] for i in range(n) if mask & (1 << i)]
            combined = subset[0]
            for other in subset[1:]:
                combined = combined.intersect(other)
                if combined.is_empty():
                    break
            if combined.is_empty():
                continue
            sign = -1.0 if (bin(mask).count("1") % 2 == 0) else 1.0
            total += sign * self.conjunctive_selectivity(combined)
        return _clamp(total)


def _numeric_mass(stats: ColumnStatistics, sset: sympy.Set) -> float:
    if sset is S.EmptySet:
        return 0.0
    if sset == S.Reals:
        return 1.0
    if isinstance(sset, FiniteSet):
        return sum(stats.numeric_mass(float(v), float(v))
                   for v in sset.args)
    if isinstance(sset, Interval):
        lo = float("-inf") if sset.start == -sympy.oo else float(sset.start)
        hi = float("inf") if sset.end == sympy.oo else float(sset.end)
        return stats.numeric_mass(lo, hi, bool(sset.left_open),
                                  bool(sset.right_open))
    if isinstance(sset, SymUnion):
        # Canonical sympy unions are disjoint; masses add.
        return sum(_numeric_mass(stats, arg) for arg in sset.args)
    if isinstance(sset, sympy.Complement):
        universe, removed = sset.args
        return (_numeric_mass(stats, universe)
                - _numeric_mass(stats, removed))
    # Unknown set shape: uninformative.
    return TableStatistics.DEFAULT_SELECTIVITY


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, value))
