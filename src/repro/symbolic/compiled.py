"""Compiled membership tests for DNF predicates.

Sympy set ``contains`` calls are far too slow for per-row checks inside the
execution engine, so predicates that operators must evaluate per tuple are
compiled once into plain-python closures over float interval bounds and
frozensets.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import sympy
from sympy import FiniteSet, Interval, Union as SymUnion, S

from repro.symbolic.conjunctive import Conjunctive
from repro.symbolic.dnf import DnfPredicate
from repro.symbolic.domains import (
    CategoricalConstraint,
    Constraint,
    NumericConstraint,
)

MembershipFn = Callable[[Mapping[str, object]], bool]


def compile_dnf(dnf: DnfPredicate) -> MembershipFn:
    """Compile a DNF predicate into a fast row-membership closure.

    The closure receives a mapping of dimension name -> concrete value and
    fails closed on missing dimensions (mirroring
    :meth:`Conjunctive.satisfied_by`).
    """
    if dnf.is_false():
        return lambda values: False
    if dnf.is_true():
        return lambda values: True
    compiled = [_compile_conjunctive(c) for c in dnf.conjunctives]

    def check(values: Mapping[str, object]) -> bool:
        return any(conj(values) for conj in compiled)

    return check


def _compile_conjunctive(conjunctive: Conjunctive) -> MembershipFn:
    checks = [(dim, _compile_constraint(constraint))
              for dim, constraint in conjunctive.constraints.items()]

    def check(values: Mapping[str, object]) -> bool:
        for dim, test in checks:
            if dim not in values or not test(values[dim]):
                return False
        return True

    return check


def _compile_constraint(constraint: Constraint) -> Callable[[object], bool]:
    if isinstance(constraint, CategoricalConstraint):
        members = constraint.values
        if constraint.complemented:
            return lambda v: v not in members
        return lambda v: v in members
    if isinstance(constraint, NumericConstraint):
        pieces = _numeric_pieces(constraint.sset)

        def check(value: object) -> bool:
            if not isinstance(value, (int, float)):
                return False
            v = float(value)
            return any(lo_cmp(v) and hi_cmp(v) for lo_cmp, hi_cmp in pieces)

        return check
    raise TypeError(f"cannot compile constraint {constraint!r}")


def _numeric_pieces(sset: sympy.Set):
    """Flatten a canonical real set into (low-check, high-check) pairs."""
    pieces = []
    for part in _iter_parts(sset):
        if isinstance(part, FiniteSet):
            for point in part.args:
                p = float(point)
                pieces.append((_eq_check(p), _always))
        elif isinstance(part, Interval):
            lo = (-math.inf if part.start == -sympy.oo
                  else float(part.start))
            hi = math.inf if part.end == sympy.oo else float(part.end)
            lo_check = _lower_check(lo, part.left_open)
            hi_check = _upper_check(hi, part.right_open)
            pieces.append((lo_check, hi_check))
        elif part == S.Reals:
            pieces.append((_always, _always))
        elif part is S.EmptySet:
            continue
        else:
            raise TypeError(f"cannot compile sympy set {part}")
    return pieces


def _iter_parts(sset: sympy.Set):
    if isinstance(sset, SymUnion):
        for arg in sset.args:
            yield from _iter_parts(arg)
    else:
        yield sset


def _always(_v: float) -> bool:
    return True


def _eq_check(point: float) -> Callable[[float], bool]:
    return lambda v: v == point


def _lower_check(lo: float, is_open: bool) -> Callable[[float], bool]:
    if lo == -math.inf:
        return _always
    if is_open:
        return lambda v: v > lo
    return lambda v: v >= lo


def _upper_check(hi: float, is_open: bool) -> Callable[[float], bool]:
    if hi == math.inf:
        return _always
    if is_open:
        return lambda v: v < hi
    return lambda v: v <= hi
