"""The SymbolicEngine facade the optimizer talks to (Fig. 1).

Wraps DNF conversion, Algorithm 1 reduction, the INTER/DIFF/UNION derived
predicates, and selectivity estimation behind one object with a shared time
budget.

The engine also carries a **reduction memo**: an LRU cache over the
expensive symbolic operations (``reduce`` / ``intersection`` /
``difference``), keyed by the canonicalized DNF forms of the operands.
Exploratory sessions re-derive the same reductions constantly — every
query recomputes ``INTER(p_u, q)`` / ``DIFF(p_u, q)`` against a ``p_u``
that only grows, so consecutive queries over overlapping predicates hit
identical (operation, operands) pairs.  The memo lives on the engine
(session / server lifetime — one optimization pass's
:class:`~repro.optimizer.opt_context.OptimizationContext` is too
short-lived to see cross-query repeats, and on the server one engine is
shared by every client, so one client's reductions are every client's).
It is thread-safe and bounded (``EvaConfig.symbolic_memo_size``, LRU);
hit/miss/eviction counters surface per optimization pass in the reuse
audit trail and in the session metrics.

Correctness: cached values are keyed by the *complete* canonical
structure of the operands (per-conjunctive, per-dimension constraint
contents, in disjunct order), and dimension names canonically determine
the term expressions they render as (columns render as themselves; UDF
dims embed the :func:`~repro.expressions.analysis.term_key`).  Results
are re-wrapped with the caller's own term mapping on every hit, so a
memoized result is indistinguishable from a fresh computation.
Memoization can only *stabilize* outcomes: ``reduce_predicate`` runs
under a real-time budget, so a cache hit returns the already-reduced
form instead of re-racing the clock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.expressions.expr import Expression
from repro.symbolic.dnf import DnfPredicate, dnf_from_expression
from repro.symbolic.domains import (
    CategoricalConstraint,
    Constraint,
    NumericConstraint,
)
from repro.symbolic.operations import (
    difference,
    intersection,
    negation,
    union,
)
from repro.symbolic.reduce import DEFAULT_TIME_BUDGET, reduce_predicate
from repro.symbolic.selectivity import SelectivityEstimator, StatsResolver

#: Default bound on the reduction memo (entries, LRU; 0 disables).
DEFAULT_MEMO_SIZE = 4096


def _constraint_key(constraint: Constraint) -> Hashable:
    if isinstance(constraint, NumericConstraint):
        return ("num", constraint.sset)
    if isinstance(constraint, CategoricalConstraint):
        return ("cat", constraint.values, constraint.complemented)
    raise TypeError(f"unmemoizable constraint {type(constraint).__name__}")


def predicate_key(predicate: DnfPredicate) -> Hashable:
    """Canonical hashable form of a DNF predicate.

    A tuple of per-conjunctive keys in disjunct order; each conjunctive
    key is its ``(dimension, constraint-content)`` pairs in the
    conjunctive's own (dimension-sorted) order.  Two predicates with
    equal keys denote the same symbolic set and render over the same
    terms, so every memoized operation is a pure function of its keys.
    """
    return tuple(
        tuple((dim, _constraint_key(constraint))
              for dim, constraint in conjunctive.constraints.items())
        for conjunctive in predicate.conjunctives)


@dataclass(frozen=True)
class MemoStats:
    """Counters of one engine's reduction memo (monotone except size)."""

    hits: int
    misses: int
    evictions: int
    size: int

    def delta(self, earlier: "MemoStats") -> "MemoStats":
        """Counter deltas since ``earlier`` (size stays point-in-time)."""
        return MemoStats(hits=self.hits - earlier.hits,
                         misses=self.misses - earlier.misses,
                         evictions=self.evictions - earlier.evictions,
                         size=self.size)


class SymbolicEngine:
    """Symbolic predicate analysis with a configurable time budget.

    Args:
        time_budget: real-seconds budget per Algorithm 1 reduction.
        memo_size: LRU bound of the cross-query reduction memo
            (``0`` disables memoization entirely).
    """

    def __init__(self, time_budget: float = DEFAULT_TIME_BUDGET,
                 memo_size: int = DEFAULT_MEMO_SIZE):
        self.time_budget = time_budget
        self.memo_size = memo_size
        self._memo: OrderedDict[Hashable, DnfPredicate] = OrderedDict()
        self._memo_lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- conversion & reduction -------------------------------------------

    def analyze(self, expr: Expression | None) -> DnfPredicate:
        """Expression -> reduced DNF."""
        return self.reduce(dnf_from_expression(expr))

    def reduce(self, predicate: DnfPredicate) -> DnfPredicate:
        return self._memoized(
            lambda: ("reduce", predicate_key(predicate)),
            lambda: reduce_predicate(predicate, self.time_budget),
            predicate.terms)

    # -- derived predicates ------------------------------------------------

    def intersection(self, p1: DnfPredicate, p2: DnfPredicate
                     ) -> DnfPredicate:
        return self._memoized(
            lambda: ("inter", predicate_key(p1), predicate_key(p2)),
            lambda: intersection(p1, p2, self.time_budget),
            p1.merged_terms(p2))

    def difference(self, p1: DnfPredicate, p2: DnfPredicate
                   ) -> DnfPredicate:
        return self._memoized(
            lambda: ("diff", predicate_key(p1), predicate_key(p2)),
            lambda: difference(p1, p2, self.time_budget),
            p1.merged_terms(p2))

    def union(self, p1: DnfPredicate, p2: DnfPredicate) -> DnfPredicate:
        return union(p1, p2, self.time_budget)

    def negation(self, p: DnfPredicate) -> DnfPredicate:
        return negation(p, self.time_budget)

    # -- memo ------------------------------------------------------------------

    def _memoized(self, make_key: Callable[[], Hashable],
                  compute: Callable[[], DnfPredicate],
                  terms: Mapping[str, Expression]) -> DnfPredicate:
        """LRU-memoized ``compute()``, re-termed for this caller.

        The value is computed outside the lock (sympy reductions can be
        slow); two racing threads may both compute the same entry — the
        results are identical by construction and the second store is a
        no-op overwrite.
        """
        if not self.memo_size:
            return compute()
        try:
            key = make_key()
        except TypeError:  # pragma: no cover - future constraint kinds
            return compute()
        with self._memo_lock:
            cached = self._memo.get(key)
            if cached is not None:
                self._memo.move_to_end(key)
                self._hits += 1
                return DnfPredicate(cached.conjunctives, terms)
            self._misses += 1
        value = compute()
        with self._memo_lock:
            self._memo[key] = value
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
                self._evictions += 1
        return value

    def memo_stats(self) -> MemoStats:
        """Point-in-time memo counters (thread-safe snapshot)."""
        with self._memo_lock:
            return MemoStats(hits=self._hits, misses=self._misses,
                             evictions=self._evictions,
                             size=len(self._memo))

    def clear_memo(self) -> None:
        with self._memo_lock:
            self._memo.clear()

    # -- estimation -----------------------------------------------------------

    def estimator(self, resolver: StatsResolver) -> SelectivityEstimator:
        return SelectivityEstimator(resolver)

    def selectivity(self, predicate: DnfPredicate,
                    resolver: StatsResolver) -> float:
        return SelectivityEstimator(resolver).selectivity(predicate)
