"""The SymbolicEngine facade the optimizer talks to (Fig. 1).

Wraps DNF conversion, Algorithm 1 reduction, the INTER/DIFF/UNION derived
predicates, and selectivity estimation behind one object with a shared time
budget.
"""

from __future__ import annotations

from repro.expressions.expr import Expression
from repro.symbolic.dnf import DnfPredicate, dnf_from_expression
from repro.symbolic.operations import (
    difference,
    intersection,
    negation,
    union,
)
from repro.symbolic.reduce import DEFAULT_TIME_BUDGET, reduce_predicate
from repro.symbolic.selectivity import SelectivityEstimator, StatsResolver


class SymbolicEngine:
    """Symbolic predicate analysis with a configurable time budget."""

    def __init__(self, time_budget: float = DEFAULT_TIME_BUDGET):
        self.time_budget = time_budget

    # -- conversion & reduction -------------------------------------------

    def analyze(self, expr: Expression | None) -> DnfPredicate:
        """Expression -> reduced DNF."""
        return reduce_predicate(dnf_from_expression(expr), self.time_budget)

    def reduce(self, predicate: DnfPredicate) -> DnfPredicate:
        return reduce_predicate(predicate, self.time_budget)

    # -- derived predicates ------------------------------------------------

    def intersection(self, p1: DnfPredicate, p2: DnfPredicate
                     ) -> DnfPredicate:
        return intersection(p1, p2, self.time_budget)

    def difference(self, p1: DnfPredicate, p2: DnfPredicate
                   ) -> DnfPredicate:
        return difference(p1, p2, self.time_budget)

    def union(self, p1: DnfPredicate, p2: DnfPredicate) -> DnfPredicate:
        return union(p1, p2, self.time_budget)

    def negation(self, p: DnfPredicate) -> DnfPredicate:
        return negation(p, self.time_budget)

    # -- estimation -----------------------------------------------------------

    def estimator(self, resolver: StatsResolver) -> SelectivityEstimator:
        return SelectivityEstimator(resolver)

    def selectivity(self, predicate: DnfPredicate,
                    resolver: StatsResolver) -> float:
        return SelectivityEstimator(resolver).selectivity(predicate)
