"""Reproduction of *EVA: A Symbolic Approach to Accelerating Exploratory
Video Analytics with Materialized Views* (SIGMOD 2022).

Public API::

    import repro

    session = repro.connect()                       # an EVA VDBMS instance
    session.register_video(repro.video.ua_detrac()) # synthetic UA-DETRAC
    result = session.execute("SELECT ... CROSS APPLY ... WHERE ...;")

Multi-user serving (shared materialized views across concurrent
clients) lives in :mod:`repro.server`::

    from repro.server import EvaServer

    server = EvaServer(max_workers=4)
    server.register_video(repro.video.ua_detrac("short"))
    with server.start():
        client = server.connect("alice")
        client.execute("SELECT ... CROSS APPLY ... WHERE ...;")

See :mod:`repro.session` for the session API, :mod:`repro.config` for
reuse-policy configuration, and :mod:`repro.vbench` for the VBENCH
benchmark used throughout the paper's evaluation.
"""

from repro import video
from repro.config import (
    EvaConfig,
    ModelSelectionMode,
    RankingMode,
    ReusePolicy,
)
from repro.errors import EvaError
from repro.session import EvaSession, SessionState, connect
from repro.types import Accuracy, BoundingBox, Detection, QueryResult

__version__ = "0.1.0"

__all__ = [
    "connect",
    "EvaSession",
    "SessionState",
    "EvaConfig",
    "ReusePolicy",
    "RankingMode",
    "ModelSelectionMode",
    "EvaError",
    "QueryResult",
    "Accuracy",
    "BoundingBox",
    "Detection",
    "video",
    "__version__",
]
