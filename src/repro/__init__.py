"""Reproduction of *EVA: A Symbolic Approach to Accelerating Exploratory
Video Analytics with Materialized Views* (SIGMOD 2022).

Public API::

    import repro

    session = repro.connect()                       # an EVA VDBMS instance
    session.register_video(repro.video.ua_detrac()) # synthetic UA-DETRAC
    result = session.execute("SELECT ... CROSS APPLY ... WHERE ...;")

See :mod:`repro.session` for the session API, :mod:`repro.config` for
reuse-policy configuration, and :mod:`repro.vbench` for the VBENCH
benchmark used throughout the paper's evaluation.
"""

from repro import video
from repro.config import (
    EvaConfig,
    ModelSelectionMode,
    RankingMode,
    ReusePolicy,
)
from repro.errors import EvaError
from repro.session import EvaSession, connect
from repro.types import Accuracy, BoundingBox, Detection, QueryResult

__version__ = "0.1.0"

__all__ = [
    "connect",
    "EvaSession",
    "EvaConfig",
    "ReusePolicy",
    "RankingMode",
    "ModelSelectionMode",
    "EvaError",
    "QueryResult",
    "Accuracy",
    "BoundingBox",
    "Detection",
    "video",
    "__version__",
]
