"""Durable, partitioned view-store backend with tiered eviction.

:class:`DurableViewStore` subclasses the in-memory ``ViewStore`` and acts
as its own backend/listener: every view creation, drop, and put flows
into an append-only log, so a restarted process recovers the full reuse
state (ROADMAP open item 1 — reuse state must outlive the server).

Durability model
----------------
* ``control.log`` (a WAL) orders view creates, drop tombstones, and UDF
  aggregated-predicate records.  It is the source of truth for which
  (view, generation) pairs are live; the manifest is advisory.
* Each partition — one (view, generation, frame-range bucket) — owns an
  independent ``wal/<pid>.wal`` of put records plus an optional
  ``snapshots/<pid>.npz``.  Recovery loads the snapshot then replays the
  WAL suffix, partition-by-partition in a thread pool.
* Drops log the tombstone (fsynced) *before* deleting files, so a crash
  mid-drop replays as "dropped" rather than resurrecting a half-deleted
  view.  Generation numbers make files of a dropped-then-recreated view
  distinguishable from the live ones.

Tiering
-------
Hot views are resident ``MaterializedView`` objects; warm views exist
only as snapshot+WAL files and are promoted (reloaded) when probed.
When the hot tier exceeds its byte budget, the view with the *lowest*
eviction score — estimated re-materialization cost per stored byte,
``num_keys x per-tuple cost / serialized bytes`` (the Eq. 3 numerator
over the footprint) — is demoted first: it is the cheapest state to
regenerate should it be needed again.  Per-tuple costs come from the
profiler's observed values via a pluggable ``cost_resolver``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.obs.flight import current_flight
from repro.storage.view_store import (MaterializedView, ViewStore,
                                      _from_jsonable, _jsonable)
from repro.store.layout import (PartitionState, RecoveryReport, StoreLayout,
                                bucket_of, parse_partition_id, partition_id,
                                view_crc)
from repro.store.wal import WalWriter, repair_wal, scan_wal

#: Fallback per-tuple re-materialization cost (virtual seconds) when no
#: observed or believed cost is available for a view's model.
DEFAULT_PER_TUPLE_COST = 0.05


@dataclass
class _ViewMeta:
    """Durability bookkeeping for one live (view, generation)."""

    name: str
    generation: int
    key_columns: list[str]
    output_columns: list[str]
    tier: str = "hot"
    partitions: dict[int, PartitionState] = field(default_factory=dict)
    #: Keys represented on disk (snapshot keys; scoring for warm views).
    durable_keys: int = 0
    last_access: int = 0


@dataclass(frozen=True)
class StoreSnapshot:
    """Point-in-time store health for metrics/CLI exposition."""

    path: str
    hot_views: int
    warm_views: int
    hot_bytes: int
    warm_bytes: int
    wal_bytes: int
    snapshot_files: int
    snapshot_age_seconds: float | None
    counters: dict[str, int]
    recovery: dict | None


class DurableViewStore(ViewStore):
    """A ``ViewStore`` whose contents survive process restarts."""

    is_durable = True

    def __init__(self, path, *, partition_frames: int = 2048,
                 fsync_every: int = 32, snapshot_interval: int = 4096,
                 hot_bytes: int = 0, warm_bytes: int = 0,
                 recovery_parallelism: int = 4):
        super().__init__()
        self.layout = StoreLayout(path)
        self.layout.ensure_directories()
        self.partition_frames = max(1, int(partition_frames))
        self.fsync_every = max(1, int(fsync_every))
        self.snapshot_interval = max(1, int(snapshot_interval))
        #: Byte budgets; 0 disables enforcement for that tier.
        self.hot_budget = max(0, int(hot_bytes))
        self.warm_budget = max(0, int(warm_bytes))
        self.recovery_parallelism = max(1, int(recovery_parallelism))
        #: Resolves a model/UDF name to its per-tuple cost (virtual
        #: seconds) for eviction scoring; wired by the owning session or
        #: server once a profiler exists.  None falls back to defaults.
        self.cost_resolver = None
        #: Called as ``listener(name, action=..., reason=..., score=...,
        #: nbytes=...)`` after every tiering decision (``demote`` /
        #: ``evict_drop``); wired by the owning session or server to
        #: emit ``store-eviction`` reuse-decision audit records.
        self.eviction_listener = None
        #: lineage_id -> latest persisted ledger export record (the
        #: ``op: "lineage"`` control-log upserts; see repro.obs.lineage).
        self._lineage_records: dict[str, dict] = {}
        self.counters: dict[str, int] = {
            "wal_records": 0, "snapshots": 0, "promotions": 0,
            "demotions": 0, "evicted_dropped": 0, "tombstones": 0,
        }
        self._meta: dict[str, _ViewMeta] = {}
        self._wal_writers: dict[str, WalWriter] = {}
        self._udf_records: dict[str, dict] = {}
        #: Highest generation ever assigned per view name (tombstoned
        #: generations included) — creates allocate the next one.
        self._gen_seen: dict[str, int] = {}
        #: Guards all durable state: control log, WAL writers, metas,
        #: manifest and audit writes.  Always acquired *before* the base
        #: store's map lock (see ``create_or_get``); re-entrant because
        #: listener callbacks can fire under it.
        self._io_lock = threading.RLock()
        self._access_clock = 0
        self._audit_seq = 0
        self._audit_handle = None
        self._closed = False
        self._last_snapshot_at: float | None = None
        self.recovery_report = self._recover()
        self._control = WalWriter(self.layout.control_log_path,
                                  sync_every=1)
        self.backend = self
        self._write_manifest()

    # -- ViewStore interface overrides ------------------------------------------

    def create_or_get(self, name, key_columns, output_columns):
        with self._io_lock:
            if self._closed:
                raise StorageError(f"store {self.layout.root} is closed")
            self._promote_locked(name)
            view = super().create_or_get(name, key_columns, output_columns)
        self._touch(name)
        self._maybe_evict(exclude=name)
        return view

    def get(self, name):
        view = super().get(name)
        if view is None:
            with self._io_lock:
                view = self._promote_locked(name)
            if view is not None:
                self._maybe_evict(exclude=name)
        if view is not None:
            self._touch(name)
        return view

    def __contains__(self, name):
        return super().__contains__(name) or name in self._meta

    def names(self):
        with self._io_lock:
            with self._lock:
                return sorted(set(self._views) | set(self._meta))

    def view_bytes(self, names) -> dict[str, int]:
        """Per-view sizes without promoting warm views (hot=resident
        estimate, warm=on-disk partition files)."""
        sizes = super().view_bytes(names)
        with self._io_lock:
            for name in names:
                if name in sizes:
                    continue
                meta = self._meta.get(name)
                if meta is not None and meta.tier == "warm":
                    sizes[name] = self._warm_file_bytes(meta)
        return sizes

    def total_serialized_bytes(self) -> int:
        """Hot-tier resident estimate plus warm-tier on-disk bytes."""
        with self._io_lock:
            total = super().total_serialized_bytes()
            for meta in self._meta.values():
                if meta.tier == "warm":
                    total += self._warm_file_bytes(meta)
        return total

    def drop(self, name: str, *, reason: str = "drop") -> int:
        with self._io_lock:
            # resident path; logs tombstone
            freed = super().drop(name, reason=reason)
            if freed == 0:
                meta = self._meta.get(name)
                if meta is not None:  # warm view: files only
                    freed = self._warm_file_bytes(meta)
                    ledger = self.ledger
                    if ledger is not None:
                        ledger.on_drop(name, reason=reason)
                    self.view_dropped(name)
        return freed

    def drop_all(self) -> int:
        with self._io_lock:
            return sum(self.drop(name) for name in self.names())

    # -- backend hooks (called by the base ViewStore) ---------------------------

    def view_created(self, view: MaterializedView) -> None:
        with self._io_lock:
            meta = self._meta.get(view.name)
            if meta is None:
                generation = self._gen_seen.get(view.name, 0) + 1
                self._gen_seen[view.name] = generation
                meta = _ViewMeta(view.name, generation,
                                 list(view.key_columns),
                                 list(view.output_columns))
                self._meta[view.name] = meta
                self._control.append({
                    "op": "create", "view": view.name, "gen": generation,
                    "key_columns": meta.key_columns,
                    "output_columns": meta.output_columns,
                })
                self._control.flush()
                self._write_manifest()
            meta.tier = "hot"
            view.listener = self

    def view_dropped(self, name: str) -> None:
        with self._io_lock:
            meta = self._meta.pop(name, None)
            if meta is None:
                return
            # Tombstone first (fsynced): a crash below this line must
            # replay as "dropped", never as a half-deleted view.
            self._control.append({"op": "drop", "view": name,
                                  "gen": meta.generation})
            self._control.flush()
            self.counters["tombstones"] += 1
            self._remove_partition_files(meta)
            self._audit("drop", view=name, reason="drop")
            # The ledger marked the record dropped/evicted before this
            # hook ran; persist that terminal status so recovery agrees.
            self._persist_lineage_status(name)
            self._write_manifest()

    def view_put(self, view: MaterializedView, key, stored) -> None:
        self._log_puts(view, [(key, stored)])

    def view_put_many(self, view: MaterializedView, items) -> None:
        self._log_puts(view, items)

    # -- UDF history durability -------------------------------------------------

    def log_udf_history(self, udf_name: str, sources: list[str],
                        per_tuple_cost: float, predicate_sql: str) -> None:
        """Persist one signature's aggregated predicate (latest wins)."""
        record = {"op": "udf", "udf": udf_name, "sources": list(sources),
                  "cost": per_tuple_cost, "predicate": predicate_sql}
        key = "@".join([udf_name.lower(), *sources])
        with self._io_lock:
            if self._closed or self._udf_records.get(key) == record:
                return
            self._udf_records[key] = record
            self._control.append(record)

    def udf_history_records(self) -> list[dict]:
        with self._io_lock:
            return [dict(r) for r in self._udf_records.values()]

    # -- lineage durability -----------------------------------------------------

    def log_lineage(self, records) -> None:
        """Persist ledger export records (upsert; latest wins on replay).

        The session appends each query's touched records here, so a
        restarted store rebuilds the exact provenance ledger of the
        uninterrupted run (``repro lineage`` restart equality).
        """
        with self._io_lock:
            if self._closed:
                return
            wrote = False
            for payload in records:
                lineage_id = payload.get("lineage_id")
                if lineage_id is None or \
                        self._lineage_records.get(lineage_id) == payload:
                    continue
                self._lineage_records[lineage_id] = payload
                self._control.append({"op": "lineage",
                                      "record": payload})
                wrote = True
            if wrote:
                self._control.flush()

    def lineage_records(self) -> list[dict]:
        with self._io_lock:
            return [dict(r) for r in self._lineage_records.values()]

    @property
    def recovered_lineage(self) -> list[dict]:
        """Persisted ledger records, for :meth:`ViewLedger.restore`."""
        with self._io_lock:
            return [self._lineage_records[k]
                    for k in sorted(self._lineage_records)]

    def _persist_lineage_status(self, name: str) -> None:
        """Re-log the view's current-generation ledger record."""
        ledger = self.ledger
        if ledger is None:
            return
        payload = ledger.export_current(name)
        if payload is not None:
            self.log_lineage([payload])

    def _notify_eviction(self, name: str, *, action: str, reason: str,
                         score: float, nbytes: int) -> None:
        listener = self.eviction_listener
        if listener is None:
            return
        try:
            listener(name, action=action, reason=reason, score=score,
                     nbytes=nbytes)
        except Exception:
            # Observability must never fail the write path that
            # triggered the eviction.
            pass

    # -- lifecycle --------------------------------------------------------------

    def flush(self) -> None:
        """Fsync every log so all acknowledged puts are crash-durable."""
        with self._io_lock:
            if self._closed:
                return
            self._control.flush()
            for writer in self._wal_writers.values():
                writer.flush()

    def snapshot(self) -> int:
        """Snapshot every dirty partition; returns partitions written."""
        written = 0
        with self._io_lock:
            if self._closed:
                return 0
            with self._lock:
                resident = dict(self._views)
            for name, view in resident.items():
                meta = self._meta.get(name)
                if meta is None:
                    continue
                for part in self._partitions_of(view, meta):
                    if part.records_since_snapshot > 0 or (
                            part.snapshot_keys == 0 and view.num_keys):
                        self._snapshot_partition(view, meta, part)
                        written += 1
            self._compact_control_log()
            self._write_manifest()
        return written

    def close(self) -> None:
        """Snapshot, flush, and release every file handle (idempotent)."""
        with self._io_lock:
            if self._closed:
                return
            self.snapshot()
            self._control.close()
            for writer in self._wal_writers.values():
                writer.close()
            self._wal_writers.clear()
            if self._audit_handle is not None:
                self._audit_handle.close()
                self._audit_handle = None
            self._closed = True

    def store_snapshot(self) -> StoreSnapshot:
        """Health counters for Prometheus / ``repro store stats``."""
        with self._io_lock:
            hot = [m for m in self._meta.values() if m.tier == "hot"]
            warm = [m for m in self._meta.values() if m.tier == "warm"]
            with self._lock:
                hot_bytes = sum(v.serialized_bytes()
                                for v in self._views.values())
            warm_bytes = sum(self._warm_file_bytes(m) for m in warm)
            wal_bytes = sum(w.size for w in self._wal_writers.values())
            if not self._closed:
                wal_bytes += self._control.size
            snapshot_files = len(list(self.layout.snapshot_dir.glob("*.npz")))
            age = None
            if self._last_snapshot_at is not None:
                age = time.perf_counter() - self._last_snapshot_at
            report = self.recovery_report
            return StoreSnapshot(
                path=str(self.layout.root), hot_views=len(hot),
                warm_views=len(warm), hot_bytes=hot_bytes,
                warm_bytes=warm_bytes, wal_bytes=wal_bytes,
                snapshot_files=snapshot_files, snapshot_age_seconds=age,
                counters=dict(self.counters),
                recovery=report.as_dict() if report else None)

    # -- write path -------------------------------------------------------------

    def _log_puts(self, view: MaterializedView, items) -> None:
        with self._io_lock:
            if self._closed:
                return
            meta = self._meta.get(view.name)
            if meta is None:
                return  # dropped concurrently; nothing durable to do
            by_bucket: dict[int, list] = {}
            for key, stored in items:
                bucket = bucket_of(key[0], self.partition_frames)
                by_bucket.setdefault(bucket, []).append(
                    [[_jsonable(part) for part in key],
                     [{col: _jsonable(val) for col, val in row.items()}
                      for row in stored]])
            to_snapshot = []
            for bucket, entries in sorted(by_bucket.items()):
                part = self._ensure_partition(meta, bucket)
                writer = self._ensure_writer(part)
                writer.append({"op": "puts", "view": view.name,
                               "gen": meta.generation, "entries": entries})
                part.records_since_snapshot += 1
                self.counters["wal_records"] += 1
                if part.records_since_snapshot >= self.snapshot_interval:
                    to_snapshot.append(part)
            for part in to_snapshot:
                self._snapshot_partition(view, meta, part)
            if to_snapshot:
                self._write_manifest()
        self._touch(view.name)
        self._maybe_evict(exclude=view.name)

    def _ensure_partition(self, meta: _ViewMeta,
                          bucket: int) -> PartitionState:
        part = meta.partitions.get(bucket)
        if part is None:
            pid = partition_id(meta.name, meta.generation, bucket)
            part = PartitionState(pid, meta.name, meta.generation, bucket)
            meta.partitions[bucket] = part
        return part

    def _ensure_writer(self, part: PartitionState) -> WalWriter:
        writer = self._wal_writers.get(part.pid)
        if writer is None:
            writer = WalWriter(part.wal_path(self.layout.root),
                               sync_every=self.fsync_every)
            self._wal_writers[part.pid] = writer
        return writer

    def _partitions_of(self, view: MaterializedView,
                       meta: _ViewMeta) -> list[PartitionState]:
        """All partitions the view's current keys span (plus existing)."""
        for key in list(view.keys()):
            self._ensure_partition(
                meta, bucket_of(key[0], self.partition_frames))
        return list(meta.partitions.values())

    # -- snapshots --------------------------------------------------------------

    def _snapshot_partition(self, view: MaterializedView, meta: _ViewMeta,
                            part: PartitionState) -> None:
        flight = current_flight()
        started = time.perf_counter() if flight is not None else 0.0
        entries = [(key, rows) for key, rows in view.items()
                   if bucket_of(key[0], self.partition_frames)
                   == part.bucket]
        shard = MaterializedView(view.name, view.key_columns,
                                 view.output_columns)
        shard.put_many(entries)
        payload = shard.serialize()
        target = part.snapshot_path(self.layout.root)
        tmp = target.with_suffix(".npz.tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, target)
        part.snapshot_keys = len(entries)
        part.records_since_snapshot = 0
        # The WAL's records are folded into the snapshot — truncate it
        # (opening a writer if none is live, e.g. right after recovery).
        self._ensure_writer(part).reset()
        self.counters["snapshots"] += 1
        self._last_snapshot_at = time.perf_counter()
        if flight is not None:
            flight.add_store_io("snapshot", time.perf_counter() - started)
        meta.durable_keys = sum(p.snapshot_keys
                                for p in meta.partitions.values())

    def _compact_control_log(self) -> None:
        """Rewrite control.log to live creates + latest UDF records."""
        records = []
        for name in sorted(self._meta):
            meta = self._meta[name]
            records.append({"op": "create", "view": name,
                            "gen": meta.generation,
                            "key_columns": meta.key_columns,
                            "output_columns": meta.output_columns})
        records.extend(self._udf_records[k]
                       for k in sorted(self._udf_records))
        # Lineage records survive compaction even for dropped views —
        # wasted-materialization history is the ledger's whole point.
        records.extend({"op": "lineage", "record": self._lineage_records[k]}
                       for k in sorted(self._lineage_records))
        path = self.layout.control_log_path
        tmp = path.with_suffix(".log.tmp")
        rewriter = WalWriter(tmp, sync_every=len(records) + 1)
        for record in records:
            rewriter.append(record)
        rewriter.close()
        self._control.close()
        os.replace(tmp, path)
        self._control = WalWriter(path, sync_every=1)

    # -- tiering ----------------------------------------------------------------

    def _touch(self, name: str) -> None:
        meta = self._meta.get(name)
        if meta is not None:
            self._access_clock += 1
            meta.last_access = self._access_clock

    def _promote_locked(self, name: str) -> MaterializedView | None:
        """Reload a warm view into the hot tier (caller holds _io_lock)."""
        with self._lock:
            view = self._views.get(name)
        if view is not None:
            return view
        meta = self._meta.get(name)
        if meta is None or meta.tier != "warm":
            return None
        flight = current_flight()
        started = time.perf_counter() if flight is not None else 0.0
        view = self._load_view(meta)
        view.listener = self
        meta.tier = "hot"
        with self._lock:
            self._views[name] = view
        if flight is not None:
            flight.add_store_io("promotion",
                                time.perf_counter() - started)
        self.counters["promotions"] += 1
        self._audit("promote", view=name, bytes=view.serialized_bytes())
        self._write_manifest()
        return view

    def _maybe_evict(self, exclude: str | None = None) -> None:
        if self.hot_budget <= 0 and self.warm_budget <= 0:
            return
        with self._io_lock:
            if self._closed:
                return
            if self.hot_budget > 0:
                self._shrink_hot_tier(exclude)
            if self.warm_budget > 0:
                self._shrink_warm_tier(exclude)

    def _shrink_hot_tier(self, exclude: str | None) -> None:
        while True:
            with self._lock:
                resident = dict(self._views)
            total = sum(v.serialized_bytes() for v in resident.values())
            if total <= self.hot_budget:
                return
            candidates = []
            for name, view in resident.items():
                if name == exclude or name not in self._meta:
                    continue
                meta = self._meta[name]
                nbytes = view.serialized_bytes()
                score = self._eviction_score(name, view.num_keys, nbytes)
                candidates.append((score, meta.last_access, name, view,
                                   nbytes))
            if not candidates:
                return
            score, _, name, view, nbytes = min(
                candidates, key=lambda c: (c[0], c[1]))
            self._demote(name, view, score=score, nbytes=nbytes)

    def _shrink_warm_tier(self, exclude: str | None) -> None:
        while True:
            warm = [(name, meta) for name, meta in self._meta.items()
                    if meta.tier == "warm" and name != exclude]
            total = sum(self._warm_file_bytes(m) for _, m in warm)
            if total <= self.warm_budget or not warm:
                return
            scored = [(self._eviction_score(
                name, meta.durable_keys, self._warm_file_bytes(meta)),
                meta.last_access, name) for name, meta in warm]
            score, _, name = min(scored, key=lambda c: (c[0], c[1]))
            nbytes = self._warm_file_bytes(self._meta[name])
            ledger = self.ledger
            if ledger is not None:
                # Mark evicted *before* view_dropped persists the
                # record's terminal status.
                ledger.on_drop(name, reason="evicted")
            self.view_dropped(name)
            self.counters["evicted_dropped"] += 1
            self._audit("evict_drop", view=name, reason="warm_budget",
                        bytes=nbytes, score=score)
            self._notify_eviction(name, action="evict_drop",
                                  reason="warm_budget", score=score,
                                  nbytes=nbytes)

    def _demote(self, name: str, view: MaterializedView, *,
                score: float, nbytes: int) -> None:
        """Hot -> warm: snapshot everything, then release the memory.

        The listener stays attached: a straggling handle that still
        holds the demoted object keeps WAL-ing its puts, so they are
        replayed into the view at its next promotion.
        """
        meta = self._meta[name]
        for part in self._partitions_of(view, meta):
            self._snapshot_partition(view, meta, part)
        with self._lock:
            self._views.pop(name, None)
        meta.tier = "warm"
        self.counters["demotions"] += 1
        self._audit("demote", view=name, reason="hot_budget",
                    bytes=nbytes, score=score)
        self._notify_eviction(name, action="demote",
                              reason="hot_budget", score=score,
                              nbytes=nbytes)
        self._write_manifest()

    def _eviction_score(self, name: str, num_keys: int,
                        nbytes: int) -> float:
        """Re-materialization cost per stored byte (evict the minimum).

        ``num_keys x per-tuple cost`` is Eq. 3's reuse saving for the
        view's materialized tuples; dividing by the serialized footprint
        ranks views by how much recompute work each byte of budget is
        protecting.  Cheap-to-recompute bulky views go first.
        """
        model = name.removeprefix("mv::").split("@")[0]
        cost = None
        if self.cost_resolver is not None:
            cost = self.cost_resolver(model)
        if cost is None or cost <= 0:
            cost = DEFAULT_PER_TUPLE_COST
        return (num_keys * cost) / max(1, nbytes)

    def _remove_partition_files(self, meta: _ViewMeta) -> None:
        for part in meta.partitions.values():
            writer = self._wal_writers.pop(part.pid, None)
            if writer is not None:
                writer.close()
            for path in (part.wal_path(self.layout.root),
                         part.snapshot_path(self.layout.root)):
                try:
                    path.unlink()
                except OSError:
                    pass

    def _warm_file_bytes(self, meta: _ViewMeta) -> int:
        total = 0
        for part in meta.partitions.values():
            for path in (part.snapshot_path(self.layout.root),
                         part.wal_path(self.layout.root)):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    # -- recovery ---------------------------------------------------------------

    def _recover(self) -> RecoveryReport:
        report = RecoveryReport()
        start = time.perf_counter()
        scan = scan_wal(self.layout.control_log_path)
        if scan.torn:
            repair_wal(self.layout.control_log_path, scan)
            report.torn_tails_repaired += 1
            report.problems.append(f"control.log: {scan.error}")
        live: dict[str, dict] = {}
        for record in scan.records:
            op = record.get("op")
            if op == "create":
                live[record["view"]] = record
                self._gen_seen[record["view"]] = max(
                    self._gen_seen.get(record["view"], 0), record["gen"])
            elif op == "drop":
                current = live.get(record["view"])
                if current is not None and current["gen"] <= record["gen"]:
                    live.pop(record["view"], None)
            elif op == "udf":
                key = "@".join([record["udf"].lower(), *record["sources"]])
                self._udf_records[key] = record
            elif op == "lineage":
                payload = record.get("record") or {}
                lineage_id = payload.get("lineage_id")
                if lineage_id:
                    self._lineage_records[lineage_id] = payload
        # A record still marked live whose (view, generation) did not
        # survive replay belongs to a drop that crashed before the
        # status upsert landed — settle it as dropped.
        for payload in self._lineage_records.values():
            if payload.get("status") != "live":
                continue
            current = live.get(payload.get("view"))
            live_id = (f"{payload.get('view')}#g{current['gen']}"
                       if current is not None else None)
            if payload.get("lineage_id") != live_id:
                payload["status"] = "dropped"
        manifest = self.layout.read_manifest()
        self._build_metas(live, manifest)
        report.stale_files_removed = self._sweep_stale_files()
        self._replay_hot_views(report)
        report.views_recovered = len(self._meta)
        report.warm_views = sum(1 for m in self._meta.values()
                                if m.tier == "warm")
        report.udf_histories = len(self._udf_records)
        report.wall_seconds = time.perf_counter() - start
        if self._meta or report.problems:
            self._audit("recovery", **report.as_dict())
        return report

    def _build_metas(self, live: dict[str, dict], manifest: dict) -> None:
        partition_infos = dict(manifest["partitions"])
        for pid in self.layout.scan_partition_files():
            partition_infos.setdefault(pid, {"id": pid})
        crc_to_name = {view_crc(name): name for name in live}
        for name, record in live.items():
            declared = manifest["views"].get(name, {})
            meta = _ViewMeta(name, record["gen"],
                             list(record["key_columns"]),
                             list(record["output_columns"]),
                             tier=declared.get("tier", "hot"))
            self._meta[name] = meta
        for pid, info in partition_infos.items():
            parsed = parse_partition_id(pid)
            if parsed is None:
                continue
            crc, generation, bucket = parsed
            name = crc_to_name.get(crc)
            if name is None or self._meta[name].generation != generation:
                continue  # stale generation; swept below
            part = PartitionState(pid, name, generation, bucket,
                                  snapshot_keys=int(
                                      info.get("snapshot_keys", 0)))
            self._meta[name].partitions[bucket] = part
        for meta in self._meta.values():
            meta.durable_keys = sum(p.snapshot_keys
                                    for p in meta.partitions.values())

    def _sweep_stale_files(self) -> int:
        """Delete partition files whose (view, generation) is not live —
        leftovers of a drop that crashed after its tombstone fsynced."""
        live_pids = {part.pid for meta in self._meta.values()
                     for part in meta.partitions.values()}
        removed = 0
        for pid, files in self.layout.scan_partition_files().items():
            if pid in live_pids:
                continue
            for path in files.values():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def _replay_hot_views(self, report: RecoveryReport) -> None:
        views = {name: MaterializedView(meta.name, meta.key_columns,
                                        meta.output_columns)
                 for name, meta in self._meta.items()
                 if meta.tier == "hot"}
        tasks = [(views[name], self._meta[name], part)
                 for name in views
                 for part in self._meta[name].partitions.values()]
        if tasks:
            with ThreadPoolExecutor(
                    max_workers=min(self.recovery_parallelism,
                                    len(tasks))) as pool:
                results = list(pool.map(
                    lambda t: self._replay_partition(*t), tasks))
            for records, keys, torn, problem in results:
                report.partitions_replayed += 1
                report.records_replayed += records
                report.keys_recovered += keys
                report.torn_tails_repaired += int(torn)
                if problem:
                    report.problems.append(problem)
        for name, view in views.items():
            view.listener = self
            with self._lock:
                self._views[name] = view
            self._touch(name)

    def _replay_partition(self, view: MaterializedView, meta: _ViewMeta,
                          part: PartitionState
                          ) -> tuple[int, int, bool, str | None]:
        """Snapshot load + WAL replay for one partition (pool worker).

        Touches only this partition's files and the (lock-guarded) view,
        so partitions replay concurrently without shared state.
        """
        keys_added = 0
        snapshot_path = part.snapshot_path(self.layout.root)
        problem = None
        if snapshot_path.exists():
            try:
                shard = MaterializedView.deserialize(
                    meta.name, meta.key_columns, meta.output_columns,
                    snapshot_path.read_bytes())
                keys_added += sum(view.put_many(shard.items()))
                part.snapshot_keys = shard.num_keys
            except Exception as exc:  # corrupt snapshot: WAL still replays
                problem = f"{part.pid}: unreadable snapshot ({exc})"
        scan = scan_wal(part.wal_path(self.layout.root))
        torn = scan.torn
        if torn:
            repair_wal(part.wal_path(self.layout.root), scan)
            problem = problem or f"{part.pid}: {scan.error}"
        applied = 0
        for record in scan.records:
            if (record.get("op") != "puts"
                    or record.get("gen") != meta.generation):
                continue
            keys_added += sum(view.put_many(
                (tuple(_from_jsonable(p) for p in raw_key),
                 tuple({col: _from_jsonable(val)
                        for col, val in row.items()} for row in raw_rows))
                for raw_key, raw_rows in record["entries"]))
            applied += 1
        return applied, keys_added, torn, problem

    def _load_view(self, meta: _ViewMeta) -> MaterializedView:
        """Warm -> resident: snapshot + WAL replay of every partition."""
        for pid, writer in list(self._wal_writers.items()):
            if any(part.pid == pid for part in meta.partitions.values()):
                writer.flush()
        view = MaterializedView(meta.name, meta.key_columns,
                                meta.output_columns)
        for part in meta.partitions.values():
            self._replay_partition(view, meta, part)
        return view

    # -- manifest / audit -------------------------------------------------------

    def _write_manifest(self) -> None:
        views = [{"name": meta.name, "generation": meta.generation,
                  "key_columns": meta.key_columns,
                  "output_columns": meta.output_columns,
                  "tier": meta.tier}
                 for meta in self._meta.values()]
        partitions = [{"id": part.pid, "view": part.view,
                       "generation": part.generation,
                       "bucket": part.bucket,
                       "snapshot_keys": part.snapshot_keys}
                      for meta in self._meta.values()
                      for part in meta.partitions.values()]
        self.layout.write_manifest(partition_frames=self.partition_frames,
                                   views=views, partitions=partitions)

    def _audit(self, event: str, **fields) -> None:
        if self._audit_handle is None:
            self._audit_handle = open(self.layout.audit_path, "a",
                                      encoding="utf-8")
        self._audit_seq += 1
        record = {"type": "store_audit", "seq": self._audit_seq,
                  "event": event, **fields}
        self._audit_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._audit_handle.flush()
