"""Glue between the durable store and the session/server components.

Views alone do not restore reuse: the optimizer plans reuse from the
UDFMANAGER's aggregated predicates (``p_u``), so a restarted process also
needs every signature's predicate history.  :class:`PersistentUdfManager`
writes each post-union predicate through the store's control log, and
:func:`restore_udf_histories` replays them into a fresh manager — the
same SQL round-trip ``save_reuse_state``/``load_reuse_state`` uses.
"""

from __future__ import annotations

from repro.config import EvaConfig
from repro.errors import StorageError
from repro.optimizer.udf_manager import UdfManager, UdfSignature
from repro.store.durable import DEFAULT_PER_TUPLE_COST, DurableViewStore


def open_view_store(config: EvaConfig) -> DurableViewStore:
    """Open (and recover) the durable store configured on ``config``."""
    if not config.store_path:
        raise StorageError(
            "store_mode='durable' requires EvaConfig.store_path")
    return DurableViewStore(
        config.store_path,
        partition_frames=config.store_partition_frames,
        fsync_every=config.store_fsync_every,
        snapshot_interval=config.store_snapshot_interval,
        hot_bytes=config.store_hot_bytes,
        warm_bytes=config.store_warm_bytes,
        recovery_parallelism=config.store_recovery_parallelism)


class PersistentUdfManager(UdfManager):
    """A UDFMANAGER whose aggregated predicates survive restarts."""

    def __init__(self, engine, store: DurableViewStore):
        super().__init__(engine)
        self._store = store

    def record_execution(self, signature, guard, per_tuple_cost=0.0):
        super().record_execution(signature, guard, per_tuple_cost)
        entry = self.history(signature)
        if not entry.aggregated_predicate.conjunctives:
            return  # still FALSE: nothing materialized to reuse yet
        try:
            sql = entry.aggregated_predicate.to_expression().to_sql()
        except Exception:
            return  # predicate durability is best-effort; views still log
        self._store.log_udf_history(
            signature.udf_name, list(signature.sources),
            entry.per_tuple_cost, sql)


def restore_udf_histories(store: DurableViewStore, manager: UdfManager,
                          symbolic) -> int:
    """Replay persisted predicate records into ``manager``.

    Predicates are re-analyzed against *this* session's symbolic engine
    (they were logged as SQL precisely so they are engine-independent).
    Returns the number of histories restored.
    """
    from repro.parser.parser import parse_predicate

    restored = 0
    for record in store.udf_history_records():
        signature = UdfSignature(record["udf"], tuple(record["sources"]))
        try:
            predicate = symbolic.analyze(parse_predicate(
                record["predicate"]))
        except Exception:
            continue  # an unparsable record only costs re-computation
        manager.record_execution(signature, predicate,
                                 record.get("cost", 0.0))
        restored += 1
    return restored


def make_cost_resolver(profiler, catalog):
    """Per-tuple cost lookup for eviction scoring.

    Preference order per model name: the profiler's *observed* cost
    (PR 4 ``ProfileStore``), then the catalog/zoo believed cost, then the
    store default.  Returned callable is cheap enough for the eviction
    loop (one snapshot dict lookup + one catalog probe).
    """

    def resolve(model_name: str) -> float | None:
        profile = profiler.snapshot().models.get(model_name)
        if profile is not None:
            observed = profile.observed_per_tuple_cost
            if observed:
                return observed
        try:
            model = catalog.zoo.get(model_name)
        except Exception:
            return None
        return getattr(model, "per_tuple_cost", None)

    resolve.default = DEFAULT_PER_TUPLE_COST
    return resolve
