"""Durable view-store subsystem: WAL + snapshots, partitioned recovery,
and cost-aware tiered eviction behind the ``ViewStore`` interface.

See ``docs/storage.md`` for the on-disk format and the eviction policy's
mapping onto the paper's Eq. 3 cost model.
"""

from repro.store.durable import (DEFAULT_PER_TUPLE_COST, DurableViewStore,
                                 StoreSnapshot)
from repro.store.health import (StoreCheckReport, check_store, render_check,
                                render_stats, store_stats)
from repro.store.integration import (PersistentUdfManager, make_cost_resolver,
                                     open_view_store, restore_udf_histories)
from repro.store.layout import RecoveryReport, StoreLayout
from repro.store.wal import WalScan, WalWriter, repair_wal, scan_wal

__all__ = [
    "DEFAULT_PER_TUPLE_COST",
    "DurableViewStore",
    "PersistentUdfManager",
    "RecoveryReport",
    "StoreCheckReport",
    "StoreLayout",
    "StoreSnapshot",
    "WalScan",
    "WalWriter",
    "check_store",
    "make_cost_resolver",
    "open_view_store",
    "render_check",
    "render_stats",
    "repair_wal",
    "restore_udf_histories",
    "scan_wal",
    "store_stats",
]
