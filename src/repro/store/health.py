"""Passive integrity checks and stats over a store directory.

Everything here is read-only (no repairs, no writer handles), so
``repro store check`` and ``repro store stats`` are safe to run against
a store another process has open — useful for postmortems where opening
a :class:`DurableViewStore` (which repairs torn tails in place) would
destroy the evidence being inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StoreCorruptionError
from repro.store.layout import (StoreLayout, parse_partition_id, view_crc)
from repro.store.wal import scan_wal


@dataclass
class StoreCheckReport:
    """Findings of one :func:`check_store` pass."""

    root: str
    views: int = 0
    partitions: int = 0
    wal_records: int = 0
    snapshot_bytes: int = 0
    wal_bytes: int = 0
    udf_histories: int = 0
    #: Recoverable oddities (torn tails, stale files): recovery handles
    #: these silently; ``check`` surfaces them without touching disk.
    warnings: list[str] = field(default_factory=list)
    #: Integrity violations recovery cannot repair.
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def check_store(path) -> StoreCheckReport:
    """Validate a store directory without modifying it."""
    layout = StoreLayout(path)
    report = StoreCheckReport(root=str(layout.root))
    if not layout.root.is_dir():
        report.errors.append(f"{layout.root} is not a directory")
        return report
    if not layout.control_log_path.exists():
        report.errors.append("control.log missing")
        return report
    try:
        control = scan_wal(layout.control_log_path)
    except StoreCorruptionError as exc:
        report.errors.append(str(exc))
        return report
    if control.torn:
        report.warnings.append(
            f"control.log torn tail ({control.error}, "
            f"{control.total_bytes - control.valid_bytes} bytes)")
    live: dict[str, dict] = {}
    for record in control.records:
        op = record.get("op")
        if op == "create":
            live[record["view"]] = record
        elif op == "drop":
            current = live.get(record["view"])
            if current is not None and current["gen"] <= record["gen"]:
                live.pop(record["view"], None)
        elif op == "udf":
            report.udf_histories += 1
    report.views = len(live)
    crc_to_view = {view_crc(name): rec for name, rec in live.items()}

    manifest = layout.read_manifest()
    if manifest["meta"] is None and layout.manifest_path.exists():
        report.errors.append("manifest.jsonl unreadable")
    for name in manifest["views"]:
        if name not in live:
            report.warnings.append(
                f"manifest lists view {name!r} absent from control.log")
    for name in live:
        if manifest["views"] and name not in manifest["views"]:
            report.warnings.append(
                f"view {name!r} missing from manifest (crash before "
                f"rewrite; recovery rebuilds it)")

    seen_partitions = set()
    for pid, files in layout.scan_partition_files().items():
        parsed = parse_partition_id(pid)
        if parsed is None:
            report.warnings.append(f"unrecognized partition file {pid}")
            continue
        crc, generation, _bucket = parsed
        owner = crc_to_view.get(crc)
        if owner is None or owner["gen"] != generation:
            report.warnings.append(
                f"stale partition {pid} (dropped generation)")
            continue
        seen_partitions.add(pid)
        report.partitions += 1
        wal_path = files.get("wal")
        if wal_path is not None:
            try:
                scan = scan_wal(wal_path)
            except StoreCorruptionError as exc:
                report.errors.append(str(exc))
                continue
            report.wal_records += len(scan.records)
            report.wal_bytes += scan.total_bytes
            if scan.torn:
                report.warnings.append(
                    f"{pid}: torn WAL tail ({scan.error})")
        snapshot_path = files.get("snapshot")
        if snapshot_path is not None:
            report.snapshot_bytes += snapshot_path.stat().st_size
    for pid in manifest["partitions"]:
        if pid not in seen_partitions and crc_matches_live(
                pid, crc_to_view):
            report.warnings.append(
                f"manifest partition {pid} has no files on disk")
    return report


def crc_matches_live(pid: str, crc_to_view: dict[str, dict]) -> bool:
    parsed = parse_partition_id(pid)
    if parsed is None:
        return False
    crc, generation, _ = parsed
    owner = crc_to_view.get(crc)
    return owner is not None and owner["gen"] == generation


def store_stats(path) -> dict:
    """Flat stats dict for ``repro store stats`` (read-only)."""
    layout = StoreLayout(path)
    report = check_store(path)
    manifest = layout.read_manifest()
    tiers = {"hot": 0, "warm": 0}
    for record in manifest["views"].values():
        tier = record.get("tier", "hot")
        tiers[tier] = tiers.get(tier, 0) + 1
    audit_events = 0
    if layout.audit_path.exists():
        with open(layout.audit_path, encoding="utf-8") as handle:
            audit_events = sum(1 for line in handle if line.strip())
    return {
        "path": report.root,
        "ok": report.ok,
        "views": report.views,
        "hot_views": tiers.get("hot", 0),
        "warm_views": tiers.get("warm", 0),
        "partitions": report.partitions,
        "wal_records": report.wal_records,
        "wal_bytes": report.wal_bytes,
        "snapshot_bytes": report.snapshot_bytes,
        "udf_histories": report.udf_histories,
        "audit_events": audit_events,
        "warnings": report.warnings,
        "errors": report.errors,
    }


def render_check(report: StoreCheckReport) -> str:
    lines = [f"store: {report.root}",
             f"  views: {report.views}  partitions: {report.partitions}",
             f"  wal records: {report.wal_records} "
             f"({report.wal_bytes} bytes)",
             f"  snapshots: {report.snapshot_bytes} bytes",
             f"  udf histories: {report.udf_histories}"]
    for warning in report.warnings:
        lines.append(f"  WARN: {warning}")
    for error in report.errors:
        lines.append(f"  ERROR: {error}")
    lines.append("OK" if report.ok else "CORRUPT")
    return "\n".join(lines)


def render_stats(stats: dict) -> str:
    lines = [f"store: {stats['path']}"]
    for key in ("views", "hot_views", "warm_views", "partitions",
                "wal_records", "wal_bytes", "snapshot_bytes",
                "udf_histories", "audit_events"):
        lines.append(f"  {key.replace('_', ' ')}: {stats[key]}")
    for warning in stats["warnings"]:
        lines.append(f"  WARN: {warning}")
    for error in stats["errors"]:
        lines.append(f"  ERROR: {error}")
    lines.append("status: " + ("ok" if stats["ok"] else "corrupt"))
    return "\n".join(lines)


__all__ = ["StoreCheckReport", "check_store", "store_stats",
           "render_check", "render_stats"]
