"""On-disk layout of a durable view store.

::

    <store>/
      manifest.jsonl     # store_meta + one record per view and partition
      control.log        # WAL of create / drop / udf-history records
      audit.jsonl        # append-only eviction / recovery audit trail
      wal/<pid>.wal      # per-partition put WALs
      snapshots/<pid>.npz

A *partition* is one (view, generation, frame-range bucket): bucket =
``first_key_component // partition_frames``.  Every partition owns an
independent WAL segment and snapshot file, so recovery replays them in
parallel and a snapshot never rewrites more than one bucket's worth of
entries.  Partition ids embed the CRC of the view name plus the view's
generation — files from a dropped generation are recognizably stale even
if a crash interrupted their deletion.

The manifest is advisory (tier placement, file names for `store check`);
the control log is the source of truth for which views/generations are
live.  It is rewritten atomically (tmp + ``os.replace``) on structural
changes, never appended.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path

STORE_FORMAT = "eva-store-v1"
MANIFEST_NAME = "manifest.jsonl"
CONTROL_LOG_NAME = "control.log"
AUDIT_NAME = "audit.jsonl"
WAL_DIR = "wal"
SNAPSHOT_DIR = "snapshots"

_PARTITION_ID = re.compile(r"^(?P<crc>[0-9a-f]{8})-g(?P<gen>\d+)"
                           r"-b(?P<bucket>\d+)$")


def view_crc(name: str) -> str:
    return f"{zlib.crc32(name.encode('utf-8')) & 0xFFFFFFFF:08x}"


def bucket_of(first_component, partition_frames: int) -> int:
    """Frame-range bucket of a key.  First key components are frame ids
    (ints) for every view the executor builds; anything else lands in a
    stable catch-all bucket so the partition function is total."""
    if isinstance(first_component, bool) or not isinstance(
            first_component, int):
        return 0
    return max(0, int(first_component)) // max(1, partition_frames)


def partition_id(name: str, generation: int, bucket: int) -> str:
    return f"{view_crc(name)}-g{generation}-b{bucket}"


def parse_partition_id(pid: str) -> tuple[str, int, int] | None:
    """(view-name-crc, generation, bucket), or None if not a partition id."""
    match = _PARTITION_ID.match(pid)
    if match is None:
        return None
    return (match.group("crc"), int(match.group("gen")),
            int(match.group("bucket")))


@dataclass
class PartitionState:
    """Bookkeeping for one partition's pair of files."""

    pid: str
    view: str
    generation: int
    bucket: int
    #: Number of keys captured by the current snapshot file (0 = none).
    snapshot_keys: int = 0
    #: WAL records appended since the last snapshot (snapshot trigger).
    records_since_snapshot: int = 0

    def wal_path(self, root: Path) -> Path:
        return root / WAL_DIR / f"{self.pid}.wal"

    def snapshot_path(self, root: Path) -> Path:
        return root / SNAPSHOT_DIR / f"{self.pid}.npz"


@dataclass
class StoreLayout:
    """Path arithmetic + manifest I/O for one store directory."""

    root: Path

    def __post_init__(self):
        self.root = Path(self.root)

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def control_log_path(self) -> Path:
        return self.root / CONTROL_LOG_NAME

    @property
    def audit_path(self) -> Path:
        return self.root / AUDIT_NAME

    @property
    def wal_dir(self) -> Path:
        return self.root / WAL_DIR

    @property
    def snapshot_dir(self) -> Path:
        return self.root / SNAPSHOT_DIR

    def ensure_directories(self) -> None:
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)

    def scan_partition_files(self) -> dict[str, dict]:
        """Partition ids present on disk, from the wal/ and snapshots/
        directories themselves — the fallback when a crash predates the
        manifest rewrite that would have listed them."""
        found: dict[str, dict] = {}
        for path in sorted(self.wal_dir.glob("*.wal")):
            parsed = parse_partition_id(path.stem)
            if parsed is not None:
                found.setdefault(path.stem, {})["wal"] = path
        for path in sorted(self.snapshot_dir.glob("*.npz")):
            parsed = parse_partition_id(path.stem)
            if parsed is not None:
                found.setdefault(path.stem, {})["snapshot"] = path
        return found

    # -- manifest ---------------------------------------------------------------

    def write_manifest(self, *, partition_frames: int,
                       views: list[dict], partitions: list[dict]) -> None:
        """Atomically replace the manifest (tmp file + ``os.replace``)."""
        lines = [json.dumps({"type": "store_meta", "format": STORE_FORMAT,
                             "partition_frames": partition_frames},
                            sort_keys=True)]
        lines += [json.dumps({"type": "view", **v}, sort_keys=True)
                  for v in sorted(views, key=lambda v: v["name"])]
        lines += [json.dumps({"type": "partition", **p}, sort_keys=True)
                  for p in sorted(partitions, key=lambda p: p["id"])]
        tmp = self.manifest_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> dict:
        """Parsed manifest: {"meta": ..., "views": {...}, "partitions":
        {...}}; empty maps when the manifest is absent/unreadable (it is
        advisory — recovery rebuilds from the control log)."""
        result = {"meta": None, "views": {}, "partitions": {}}
        try:
            text = self.manifest_path.read_text("utf-8")
        except OSError:
            return result
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = record.get("type")
            if kind == "store_meta":
                result["meta"] = record
            elif kind == "view" and "name" in record:
                result["views"][record["name"]] = record
            elif kind == "partition" and "id" in record:
                result["partitions"][record["id"]] = record
        return result


@dataclass
class RecoveryReport:
    """What the startup pass found and repaired."""

    views_recovered: int = 0
    warm_views: int = 0
    partitions_replayed: int = 0
    records_replayed: int = 0
    keys_recovered: int = 0
    torn_tails_repaired: int = 0
    stale_files_removed: int = 0
    udf_histories: int = 0
    wall_seconds: float = 0.0
    problems: list[str] = field(default_factory=list)
    #: Whether a tracer span was already emitted for this recovery (the
    #: first session bound to the store reports it).
    span_emitted: bool = False

    def as_dict(self) -> dict:
        return {
            "views_recovered": self.views_recovered,
            "warm_views": self.warm_views,
            "partitions_replayed": self.partitions_replayed,
            "records_replayed": self.records_replayed,
            "keys_recovered": self.keys_recovered,
            "torn_tails_repaired": self.torn_tails_repaired,
            "stale_files_removed": self.stale_files_removed,
            "udf_histories": self.udf_histories,
            "wall_seconds": round(self.wall_seconds, 6),
            "problems": list(self.problems),
        }
