"""Append-only write-ahead log: framed, checksummed JSON records.

File layout::

    8 bytes   magic header  b"EVAWAL1\\n"
    records   4-byte big-endian payload length
              4-byte big-endian CRC32 of the payload
              N-byte UTF-8 JSON payload

Writers batch fsyncs (group commit every ``sync_every`` records); readers
stop at the first frame that fails its length or checksum test and report
the byte offset of the last *valid* record so recovery can truncate the
torn tail in place.  JSON payloads keep the format debuggable with
nothing but ``dd`` and a hex viewer — throughput is bounded by UDF
inference, not log encoding, so a binary format would buy nothing.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StoreCorruptionError
from repro.obs.flight import current_flight

MAGIC = b"EVAWAL1\n"
_FRAME = struct.Struct(">II")
#: A length field above this is treated as corruption, not a record: the
#: largest legitimate record (a put_many batch for one partition) stays
#: well under it.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_record(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    return _FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


class WalWriter:
    """Appender with group-commit fsync.

    A record is durable once :meth:`flush` (or the ``sync_every``-th
    append since the last sync) has run; a crash loses at most the
    un-synced suffix, which the reader's torn-tail repair discards
    cleanly.  Not thread-safe — callers serialize through their own lock.
    """

    def __init__(self, path, *, sync_every: int = 32):
        self.path = Path(path)
        self.sync_every = max(1, int(sync_every))
        self._pending = 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "ab")
        if fresh:
            self._handle.write(MAGIC)
            self._sync()
        self.size = self._handle.tell()

    def append(self, payload: dict) -> int:
        """Write one record; returns its size in bytes on disk."""
        flight = current_flight()
        started = time.perf_counter() if flight is not None else 0.0
        frame = encode_record(payload)
        self._handle.write(frame)
        if flight is not None:
            flight.add_store_io("wal_append",
                                time.perf_counter() - started)
        self.size += len(frame)
        self._pending += 1
        if self._pending >= self.sync_every:
            self._sync()
        return len(frame)

    def flush(self) -> None:
        """Force everything appended so far to stable storage."""
        if self._pending:
            self._sync()
        else:
            self._handle.flush()

    def reset(self) -> None:
        """Discard all records (post-snapshot truncation), keep the file."""
        self._handle.close()
        self._handle = open(self.path, "wb")
        self._handle.write(MAGIC)
        self._sync()
        self.size = len(MAGIC)

    def close(self) -> None:
        if self._handle.closed:
            return
        self.flush()
        self._handle.close()

    def _sync(self) -> None:
        flight = current_flight()
        started = time.perf_counter() if flight is not None else 0.0
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending = 0
        if flight is not None:
            flight.add_store_io("fsync", time.perf_counter() - started)


@dataclass
class WalScan:
    """Result of reading a WAL file front to back."""

    records: list[dict] = field(default_factory=list)
    #: Offset just past the last record that decoded cleanly — the
    #: truncation point for torn-tail repair.
    valid_bytes: int = 0
    total_bytes: int = 0
    #: Human-readable reason scanning stopped early, or None if the file
    #: was clean to the end.
    error: str | None = None

    @property
    def torn(self) -> bool:
        return self.valid_bytes < self.total_bytes


def scan_wal(path) -> WalScan:
    """Decode every intact record; never raises on a torn/corrupt tail.

    A missing file scans as empty (a crash can die between creating a
    partition's writer and its first sync).  A bad *header* is different:
    that file was never a WAL, and silently treating it as empty would
    destroy someone's data on repair — so it raises.
    """
    path = Path(path)
    if not path.exists():
        return WalScan()
    data = path.read_bytes()
    scan = WalScan(total_bytes=len(data))
    if len(data) < len(MAGIC):
        scan.error = "truncated header"
        return scan
    if data[:len(MAGIC)] != MAGIC:
        raise StoreCorruptionError(f"{path} is not a WAL file (bad magic)")
    offset = len(MAGIC)
    scan.valid_bytes = offset
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            scan.error = "torn frame header"
            break
        length, checksum = _FRAME.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            scan.error = f"implausible record length {length}"
            break
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            scan.error = "torn record body"
            break
        body = data[start:end]
        if zlib.crc32(body) & 0xFFFFFFFF != checksum:
            scan.error = "checksum mismatch"
            break
        try:
            scan.records.append(json.loads(body.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            scan.error = "undecodable payload"
            break
        offset = end
        scan.valid_bytes = offset
    return scan


def repair_wal(path, scan: WalScan) -> bool:
    """Truncate ``path`` to the scan's valid prefix; True if it cut."""
    if not scan.torn:
        return False
    with open(path, "r+b") as handle:
        # valid_bytes is 0 for a torn *header* (file reverts to empty and
        # the next writer re-stamps the magic) and >= len(MAGIC) otherwise.
        handle.truncate(scan.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return True
