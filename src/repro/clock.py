"""Virtual time accounting for the simulated substrate.

The paper measures wall-clock time on a GPU server.  This reproduction runs
simulated models, so every physical operator instead *charges* a
:class:`SimulationClock` with the calibrated per-tuple costs from the paper
(Tables 3-5).  All reported "times" in benchmarks are virtual seconds on this
clock; the arithmetic (count x per-tuple cost) is exactly what the paper's
wall-clock numbers decompose into, so speedup shapes carry over.

Cost categories mirror the paper's time-breakdown figures (Fig. 6, Table 4).
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class CostCategory(enum.Enum):
    """Where virtual time is spent; matches Fig. 6 / Table 4 buckets."""

    UDF = "udf"
    READ_VIDEO = "read_video"
    READ_VIEW = "read_view"
    MATERIALIZE = "materialize"
    OPTIMIZE = "optimize"
    JOIN = "join"
    HASH = "hash"
    APPLY = "apply"
    OTHER = "other"


@dataclass
class SimulationClock:
    """Accumulates virtual seconds per :class:`CostCategory`.

    The clock is hierarchical-friendly: callers snapshot it before a query
    and diff after to obtain a per-query breakdown.

    Charging is **thread-safe**: under the multi-client server, worker
    threads share sessions via :class:`~repro.session.SessionState` and
    may charge one clock concurrently; an unguarded ``+=`` on the totals
    dict would silently lose virtual time under interleaving.
    """

    _totals: dict[CostCategory, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def charge(self, category: CostCategory, seconds: float) -> None:
        """Add ``seconds`` of virtual time to ``category``.

        Raises:
            ValueError: if ``seconds`` is negative.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        with self._lock:
            self._totals[category] += seconds

    @contextmanager
    def measure(self, category: CostCategory) -> Iterator[None]:
        """Charge *real* elapsed wall time of the block to ``category``.

        Used for work that is genuinely performed in this reproduction
        (e.g. the optimizer's symbolic analysis), where real seconds are the
        honest cost.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge(category, time.perf_counter() - start)

    def total(self, category: CostCategory | None = None) -> float:
        """Total virtual seconds, overall or for one category."""
        with self._lock:
            if category is not None:
                return self._totals.get(category, 0.0)
            return sum(self._totals.values())

    def snapshot(self) -> "ClockSnapshot":
        """Freeze the current totals for later diffing."""
        with self._lock:
            return ClockSnapshot(dict(self._totals))

    def snapshot_delta(self, since: "ClockSnapshot"
                       ) -> dict[CostCategory, float]:
        """Per-category virtual time charged since ``since``.

        Convenience over ``since.delta(self)`` that reads naturally at
        call sites (tracing, per-query accounting):
        ``clock.snapshot_delta(before)``.
        """
        return since.delta(self)

    def breakdown(self) -> dict[CostCategory, float]:
        """A copy of the per-category totals."""
        with self._lock:
            return dict(self._totals)

    def reset(self) -> None:
        with self._lock:
            self._totals.clear()


@dataclass(frozen=True)
class ClockSnapshot:
    """An immutable point-in-time copy of a clock's totals."""

    totals: dict[CostCategory, float]

    def delta(self, clock: SimulationClock) -> dict[CostCategory, float]:
        """Per-category time elapsed on ``clock`` since this snapshot."""
        out: dict[CostCategory, float] = {}
        for category, value in clock.breakdown().items():
            diff = value - self.totals.get(category, 0.0)
            if diff > 0:
                out[category] = diff
        return out

    def delta_total(self, clock: SimulationClock) -> float:
        return sum(self.delta(clock).values())
