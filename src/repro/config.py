"""Session configuration: reuse policy and optimizer modes.

The evaluation compares several system configurations; each is a value of
these enums so benchmarks can switch behavior without code changes:

* :class:`ReusePolicy` — EVA's semantic reuse, the HashStash and FunCache
  baselines, or no reuse at all (section 5.1).
* :class:`RankingMode` — canonical (Eq. 2) vs materialization-aware (Eq. 4)
  predicate reordering (Fig. 9).
* :class:`ModelSelectionMode` — Algorithm 2's greedy set cover vs the
  MIN-COST baseline that always picks the cheapest adequate model (Fig. 10).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

from repro.costs import CostConstants


def _fusion_default() -> bool:
    """Default for :attr:`EvaConfig.kernel_fusion`.

    CI's fused-execution job flips fusion globally through the
    ``REPRO_KERNEL_FUSION`` environment variable (``0``/``false``/``off``
    disable, anything else enables) without touching call sites.
    """
    value = os.environ.get("REPRO_KERNEL_FUSION")
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "off", "no", "")


class ReusePolicy(enum.Enum):
    NONE = "none"
    EVA = "eva"
    HASHSTASH = "hashstash"
    FUNCACHE = "funcache"


class RankingMode(enum.Enum):
    CANONICAL = "canonical"
    MATERIALIZATION_AWARE = "materialization-aware"


class ModelSelectionMode(enum.Enum):
    SET_COVER = "set-cover"
    MIN_COST = "min-cost"


class PredicateOrdering(enum.Enum):
    """How Rule I orders UDF-based predicates.

    RANK sorts by the ranking function (optimal by Theorem 4.1 under
    predicate independence).  EXHAUSTIVE explores all orders in a
    Cascades-style memo and keeps the cost-based winner.
    """

    RANK = "rank"
    EXHAUSTIVE = "exhaustive"


@dataclass
class EvaConfig:
    """Everything a session needs to know about how to run queries."""

    reuse_policy: ReusePolicy = ReusePolicy.EVA
    ranking: RankingMode | None = None
    model_selection: ModelSelectionMode = ModelSelectionMode.SET_COVER
    predicate_ordering: PredicateOrdering = PredicateOrdering.RANK
    #: Wall-clock budget for symbolic reduction (Algorithm 1's TimeOut).
    symbolic_time_budget: float = 0.5
    #: Virtual-cost calibration.
    costs: CostConstants = field(default_factory=CostConstants)
    #: Rows per execution batch.
    batch_rows: int = 512
    #: Cache optimized plans per query text, invalidated whenever the
    #: UdfManager's reuse state changes.  Exploratory analysts re-run
    #: queries; a repeat skips parsing-to-plan work entirely.
    enable_plan_cache: bool = True
    #: Maximum entries in the per-session plan cache (LRU eviction).  An
    #: unbounded cache keyed by raw SQL is a slow leak under ad-hoc
    #: exploratory workloads where nearly every statement is distinct.
    plan_cache_size: int = 128
    #: Whole-plan kernel fusion (vectorized mode only): compile each
    #: plan's streaming suffix (scan → filter → project → APPLY prologue)
    #: into one generated function per batch instead of N operator calls.
    #: Results, view contents and virtual clocks are identical either way
    #: (the fused differential suite asserts this); fusion only changes
    #: real seconds.  Defaults on; ``REPRO_KERNEL_FUSION=0`` in the
    #: environment flips the default for A/B runs and CI.
    kernel_fusion: bool = field(default_factory=_fusion_default)
    #: Maximum entries in the process-wide plan→kernel cache (LRU).
    #: Keyed structurally (scan ranges stripped) so morsels and repeat
    #: queries share compiled plans; invalidated by cost-calibration
    #: catalog rebuilds.
    kernel_cache_size: int = 64
    #: Slow-query log threshold in *virtual* seconds: queries whose
    #: virtual time meets it land in the session's
    #: :class:`~repro.obs.slowlog.SlowQueryLog`.  ``None`` disables.
    slow_query_threshold: float | None = None
    #: Fuzzy bounding-box reuse (the paper's section 6 future work): on an
    #: exact view miss, a patch classifier may reuse the stored result of a
    #: spatially close box in the same frame.  Results become approximate.
    fuzzy_reuse: bool = False
    #: Minimum IoU between the query box and a stored box for fuzzy reuse.
    fuzzy_iou_threshold: float = 0.80
    #: Execution engine mode: ``"vectorized"`` runs compiled column-at-a-time
    #: batch kernels, bulk view probes and batched model invocation;
    #: ``"row"`` keeps the legacy row-at-a-time interpreter.  Both modes
    #: produce identical result batches, view contents and virtual-cost
    #: totals (the differential suite asserts this); vectorized is simply
    #: faster in *real* seconds.
    execution_mode: str = "vectorized"
    #: Cost-model calibration from observed telemetry
    #: (:mod:`repro.obs.calibration`): ``"off"`` never compares,
    #: ``"report"`` detects drift after each query and exposes it
    #: (``session.last_drift_report``, ``repro profile``, Prometheus)
    #: without touching the planner, ``"apply"`` additionally re-fits the
    #: catalog's believed per-tuple UDF costs to the observed ones so
    #: Eq. 3/4 ranking and Algorithm 2 model selection run on measured
    #: rather than assumed constants (audited as ``cost-calibration``
    #: records).
    cost_calibration: str = "off"
    #: Drift flagging threshold: a model drifts when
    #: observed/modeled cost >= threshold or <= 1/threshold.
    drift_ratio_threshold: float = 1.5
    #: Minimum *executed* (non-reused) invocations before a model's
    #: observed cost is trusted for drift detection / calibration.
    calibration_min_invocations: int = 32
    #: Morsel-driven intra-query parallelism: number of worker threads
    #: driving the streaming suffix of the plan (scan / filter / project /
    #: APPLY) over disjoint frame-range morsels.  ``0`` and ``1`` keep the
    #: current serial path.  Results, view contents and per-query virtual
    #: clock charges are identical to serial mode (the parallel
    #: differential suite asserts this); only real seconds change.
    parallelism: int = 0
    #: Rows per morsel handed to a parallel worker.  Rounded up to a
    #: multiple of ``batch_rows`` so serial batches are exactly the
    #: concatenation of morsel batches (charge parity).  ``0`` picks
    #: ``4 * batch_rows``.
    morsel_rows: int = 0
    #: Cross-query inference micro-batching (server deployments): maximum
    #: number of tuples coalesced into one ``predict_batch`` call across
    #: concurrent clients targeting the same physical model.  Must
    #: comfortably exceed ``batch_rows`` — a single client's miss
    #: sub-batch can be a full scan batch, and chunking never splits a
    #: request, so a budget below ``2 * batch_rows`` can never merge two
    #: full sub-batches.  The default fits four.
    micro_batch_max_size: int = 2048
    #: How long (milliseconds) a leader waits for other clients' miss
    #: sub-batches to coalesce before dispatching what it has.
    micro_batch_timeout_ms: float = 2.0
    #: Maximum entries in the FunCache baseline's function cache (LRU
    #: eviction, ``funcache_evictions`` counter).  ``0`` disables the cap;
    #: an unbounded cache is a slow leak across long exploratory sessions.
    funcache_max_entries: int = 65536
    #: Maximum memoized Algorithm 1 reduction results
    #: (``INTER``/``DIFF``/``REDUCE`` keyed by canonical DNF forms) kept by
    #: the symbolic engine.  ``0`` disables memoization entirely.
    symbolic_memo_size: int = 4096
    #: View-store durability (``repro.store``, see docs/storage.md).
    #: ``"memory"`` keeps today's in-process store with zero behavior
    #: change; ``"durable"`` persists views, drop tombstones and UDF
    #: aggregated predicates under ``store_path`` so a restarted
    #: session/server resumes at its pre-restart hit-rate.
    store_mode: str = "memory"
    #: Directory backing the durable store (required when durable).
    store_path: str | None = None
    #: Hot-tier (resident views) byte budget; exceeding it demotes the
    #: cheapest-recompute-per-byte view to the warm tier.  0 = unbounded.
    store_hot_bytes: int = 0
    #: Warm-tier (on-disk demoted views) byte budget; exceeding it drops
    #: the cheapest-recompute-per-byte warm view.  0 = unbounded.
    store_warm_bytes: int = 0
    #: WAL group-commit interval: fsync after this many appended records.
    store_fsync_every: int = 32
    #: Snapshot a partition after this many WAL records, folding its log
    #: into an npz snapshot and truncating the WAL.
    store_snapshot_interval: int = 4096
    #: Frames per partition bucket: a view's keys are segmented into
    #: independent (view, generation, frame-range) WAL+snapshot pairs.
    store_partition_frames: int = 2048
    #: Threads replaying partitions at recovery.
    store_recovery_parallelism: int = 4
    #: Latency SLO targets in *wall* seconds of total latency (admission
    #: wait + execution), consumed by the flight recorder's
    #: :class:`~repro.obs.slo.SloTracker`: half the queries should finish
    #: within ``slo_latency_p50`` and 99% within ``slo_latency_p99``.
    #: A query over the p99 target counts as an SLO violation and gets a
    #: dominant-stage attribution (queueing | contention | inference |
    #: store-io | compute).  ``None`` disables the respective objective;
    #: latency quantiles are tracked regardless.
    slo_latency_p50: float | None = None
    slo_latency_p99: float | None = None
    #: Multi-process worker pool (``repro.server.pool``): number of
    #: worker *processes* the :class:`~repro.server.pool.PoolServer`
    #: spawns, each running a full session stack over its slice of the
    #: sharded view store.  ``1`` still runs the pool machinery (useful
    #: for differential testing); plain single-process serving is
    #: :class:`~repro.server.EvaServer`.  ``workers > 1`` requires a
    #: durable store (``store_mode="durable"`` + ``store_path``): each
    #: shard persists under its own partition directory, which is the
    #: shared medium that makes worker crash/respawn lossless.
    workers: int = 1
    #: Number of view-store shards consistent-hashed over the workers.
    #: Views, UDF histories, and inference dispatch for a given
    #: (model, video) signature all land on the shard of that
    #: signature's key, so the owning worker serves probes, appends,
    #: predicate unions, and coalesced model calls for it.  Must be
    #: >= ``workers`` (each worker owns >= 1 shard).
    shards: int = 8
    #: Per-worker admission queue depth (queue-based load leveling):
    #: each worker process admits at most ``worker threads +
    #: worker_queue_depth`` queries; beyond that the worker pushes back
    #: with :class:`~repro.errors.ServerOverloadedError` and the
    #: front-end's circuit breaker starts counting.
    worker_queue_depth: int = 16
    #: Circuit breaker: consecutive overload rejections (per client
    #: class) before the breaker opens and the front-end fails fast
    #: without touching the workers.  ``0`` disables the breaker.
    breaker_threshold: int = 8
    #: How long (seconds) an open breaker stays open before letting a
    #: half-open probe through.
    breaker_cooldown_s: float = 1.0
    #: Maintain the per-view lineage / reuse-provenance ledger
    #: (:mod:`repro.obs.lineage`): creation provenance, Eq. 3 net-benefit
    #: accounting, derivation edges, and the ``repro lineage`` surfaces.
    #: Pure observation — results, view contents, and virtual clocks are
    #: bit-identical with the ledger on or off (the differential guard in
    #: ``tests/test_lineage.py`` enforces this); disable to shave the
    #: per-probe accounting off hot paths.
    view_ledger: bool = True

    def __post_init__(self):
        if self.execution_mode not in ("vectorized", "row"):
            raise ValueError(
                f"execution_mode must be 'vectorized' or 'row', "
                f"got {self.execution_mode!r}")
        if self.cost_calibration not in ("off", "report", "apply"):
            raise ValueError(
                f"cost_calibration must be 'off', 'report' or 'apply', "
                f"got {self.cost_calibration!r}")
        if self.drift_ratio_threshold < 1.0:
            raise ValueError(
                f"drift_ratio_threshold must be >= 1.0, "
                f"got {self.drift_ratio_threshold!r}")
        if self.calibration_min_invocations < 1:
            raise ValueError(
                f"calibration_min_invocations must be >= 1, "
                f"got {self.calibration_min_invocations!r}")
        if self.parallelism < 0:
            raise ValueError(
                f"parallelism must be >= 0, got {self.parallelism!r}")
        if self.kernel_cache_size < 1:
            raise ValueError(
                f"kernel_cache_size must be >= 1, "
                f"got {self.kernel_cache_size!r}")
        if self.morsel_rows < 0:
            raise ValueError(
                f"morsel_rows must be >= 0, got {self.morsel_rows!r}")
        if self.micro_batch_max_size < 1:
            raise ValueError(
                f"micro_batch_max_size must be >= 1, "
                f"got {self.micro_batch_max_size!r}")
        if self.micro_batch_timeout_ms < 0:
            raise ValueError(
                f"micro_batch_timeout_ms must be >= 0, "
                f"got {self.micro_batch_timeout_ms!r}")
        if self.funcache_max_entries < 0:
            raise ValueError(
                f"funcache_max_entries must be >= 0, "
                f"got {self.funcache_max_entries!r}")
        if self.symbolic_memo_size < 0:
            raise ValueError(
                f"symbolic_memo_size must be >= 0, "
                f"got {self.symbolic_memo_size!r}")
        if self.store_mode not in ("memory", "durable"):
            raise ValueError(
                f"store_mode must be 'memory' or 'durable', "
                f"got {self.store_mode!r}")
        if self.store_mode == "durable" and not self.store_path:
            raise ValueError(
                "store_mode='durable' requires store_path")
        for name in ("store_hot_bytes", "store_warm_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)!r}")
        for name in ("store_fsync_every", "store_snapshot_interval",
                     "store_partition_frames",
                     "store_recovery_parallelism"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}")
        for name in ("slo_latency_p50", "slo_latency_p99"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"{name} must be positive when set, got {value!r}")
        if self.slo_latency_p50 is not None \
                and self.slo_latency_p99 is not None \
                and self.slo_latency_p50 > self.slo_latency_p99:
            raise ValueError(
                f"slo_latency_p50 ({self.slo_latency_p50!r}) must not "
                f"exceed slo_latency_p99 ({self.slo_latency_p99!r})")
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers!r}")
        if self.shards < 1:
            raise ValueError(
                f"shards must be >= 1, got {self.shards!r}")
        if self.shards < self.workers:
            raise ValueError(
                f"shards ({self.shards!r}) must be >= workers "
                f"({self.workers!r}): every worker process owns at "
                f"least one view-store shard")
        if self.worker_queue_depth < 0:
            raise ValueError(
                f"worker_queue_depth must be >= 0, "
                f"got {self.worker_queue_depth!r}")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0 (0 disables the "
                f"breaker), got {self.breaker_threshold!r}")
        if self.breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be positive, "
                f"got {self.breaker_cooldown_s!r}")
        if self.workers > 1 and self.store_mode != "durable":
            raise ValueError(
                f"workers={self.workers!r} requires "
                f"store_mode='durable' with a store_path: worker "
                f"processes share state through per-shard durable "
                f"partition directories, and store_mode="
                f"{self.store_mode!r} gives them no shared path "
                f"(crash recovery and cross-process view reuse would "
                f"silently lose views)")
        if self.ranking is None:
            # Materialization-aware ranking is EVA's contribution; the
            # baselines use the canonical ranking function.
            self.ranking = (RankingMode.MATERIALIZATION_AWARE
                            if self.reuse_policy is ReusePolicy.EVA
                            else RankingMode.CANONICAL)

    @property
    def uses_views(self) -> bool:
        """Do plans consult materialized views (EVA and HashStash)?"""
        return self.reuse_policy in (ReusePolicy.EVA, ReusePolicy.HASHSTASH)

    @property
    def effective_morsel_rows(self) -> int:
        """Morsel size rounded *up* to a multiple of ``batch_rows``.

        Alignment guarantees that the batches a morsel produces are
        exactly the batches the serial scan would have produced over the
        same frame range, so per-batch virtual charges match serially.
        """
        rows = self.morsel_rows or 4 * self.batch_rows
        remainder = rows % self.batch_rows
        if remainder:
            rows += self.batch_rows - remainder
        return rows
