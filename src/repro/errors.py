"""Exception hierarchy for the EVA reproduction.

Every error raised by the library derives from :class:`EvaError`, so client
code can catch a single base class.  Subsystems raise the most specific
subclass that applies.
"""

from __future__ import annotations


class EvaError(Exception):
    """Base class for all errors raised by this library."""


class ParserError(EvaError):
    """The EVAQL parser could not understand the input query.

    Attributes:
        position: character offset in the query text where parsing failed,
            or ``None`` when the failure is not tied to a location.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindingError(EvaError):
    """A name in the query (table, column, or UDF) could not be resolved."""


class CatalogError(EvaError):
    """Catalog inconsistency: duplicate or missing catalog entries."""


class StorageError(EvaError):
    """The storage engine could not read or write data."""


class StoreCorruptionError(StorageError):
    """The durable view store's on-disk state failed an integrity check
    that recovery cannot repair (bad file header, unreadable manifest)."""


class OptimizerError(EvaError):
    """The optimizer could not produce a physical plan."""


class ExecutorError(EvaError):
    """A physical operator failed while executing a plan."""


class UnsupportedPredicateError(EvaError):
    """The symbolic engine does not support this predicate form.

    Mirrors the paper's stated limitation (section 6): join predicates and
    other non-axis-aligned expressions are not symbolically analyzable.
    """


class UdfError(EvaError):
    """A user-defined function failed or was mis-declared."""


class ServerError(EvaError):
    """Base class for errors raised by the multi-client query server."""


class ServerClosedError(ServerError):
    """The server is shut down (or shutting down) and rejects new work."""


class ServerOverloadedError(ServerError):
    """Admission control rejected a query because the queue is full.

    Attributes:
        retry_after: suggested client back-off in seconds, estimated from
            the current queue depth and recent query latency.
    """

    def __init__(self, message: str, retry_after: float = 0.1):
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(ServerOverloadedError):
    """The pool's circuit breaker is open for this client class.

    Raised *without* dispatching to a worker: after
    ``breaker_threshold`` consecutive overload rejections the breaker
    fails fast for ``breaker_cooldown_s`` (then half-opens on one probe
    query), shedding load instead of hammering saturated workers.
    Subclasses :class:`ServerOverloadedError` so retry loops written
    against the single-process server back off identically.
    """


class WorkerCrashedError(ServerError):
    """A pool worker process died while serving this query.

    The pool respawns the worker and replays its shard partitions from
    their WALs; the query itself is *not* transparently retried (it may
    have had side effects), so the client decides whether to resubmit.
    """


class QueryCancelledError(ServerError):
    """The query was cancelled before or during execution."""


class QueryTimeoutError(QueryCancelledError):
    """The query exceeded its deadline and was cancelled cooperatively."""
