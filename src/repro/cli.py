"""Command-line interface: an EVAQL shell, script runner, and bench driver.

Usage::

    python -m repro shell  --dataset ua_detrac:short
    python -m repro run queries.sql --dataset jackson --policy none
    python -m repro bench --workload high --frames 2000
    python -m repro serve-demo --clients 6 --workers 4

The shell reads statements terminated by ``;`` (multi-line input is fine),
prints result tables, and reports the virtual execution time and reuse hit
rate after each query.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.config import EvaConfig, ReusePolicy
from repro.errors import EvaError
from repro.session import EvaSession
from repro.types import QueryResult, VideoMetadata
from repro.vbench.reporting import format_table
from repro.video.datasets import jackson, ua_detrac
from repro.video.synthetic import SyntheticVideo

#: Rows printed per result before truncation in the shell.
MAX_ROWS_SHOWN = 20


def make_video(spec: str) -> SyntheticVideo:
    """Parse a ``--dataset`` spec into a synthetic video.

    Accepted forms: ``ua_detrac[:short|medium|long]``, ``jackson``, and
    ``synthetic:<frames>[:<vehicles_per_frame>]``.
    """
    parts = spec.split(":")
    kind = parts[0].lower()
    if kind == "ua_detrac":
        size = parts[1] if len(parts) > 1 else "medium"
        return ua_detrac(size)
    if kind == "jackson":
        return jackson()
    if kind == "synthetic":
        if len(parts) < 2:
            raise ValueError("synthetic dataset needs a frame count, "
                             "e.g. synthetic:2000")
        frames = int(parts[1])
        density = float(parts[2]) if len(parts) > 2 else 8.3
        return SyntheticVideo(
            VideoMetadata(name="synthetic", num_frames=frames, width=960,
                          height=540, fps=25.0,
                          vehicles_per_frame=density),
            seed=7)
    raise ValueError(f"unknown dataset spec {spec!r}")


def make_session(policy_name: str, dataset: str,
                 execution_mode: str = "vectorized",
                 parallelism: int = 0,
                 store_path: str | None = None) -> EvaSession:
    policy = ReusePolicy(policy_name.lower())
    session = EvaSession(config=EvaConfig(
        reuse_policy=policy, execution_mode=execution_mode,
        parallelism=parallelism,
        store_mode="durable" if store_path else "memory",
        store_path=store_path))
    session.register_video(make_video(dataset))
    return session


def render_result(result: QueryResult, out: IO[str],
                  max_rows: int = MAX_ROWS_SHOWN) -> None:
    if not result.columns:
        print("(no output)", file=out)
        return
    shown = result.rows[:max_rows]
    print(format_table(result.columns,
                       [[_short(v) for v in row] for row in shown]),
          file=out)
    if len(result.rows) > max_rows:
        print(f"... {len(result.rows) - max_rows} more rows", file=out)


def _short(value) -> str:
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


def execute_and_render(session: EvaSession, statement: str,
                       out: IO[str]) -> None:
    try:
        result = session.execute(statement)
    except EvaError as error:
        print(f"error: {error}", file=out)
        return
    render_result(result, out)
    metrics = session.last_query_metrics()
    if metrics is not None and metrics.query_text == statement:
        print(f"-- {len(result)} rows, {metrics.total_time:.2f}s virtual, "
              f"session hit rate {session.hit_percentage():.1f}%",
              file=out)


def split_statements(sql: str) -> list[str]:
    """Split ``;``-separated statements in one string (quote-aware)."""
    statements: list[str] = []
    buffer: list[str] = []
    in_string = False
    for char in sql:
        if char == "'":
            in_string = not in_string
        if char == ";" and not in_string:
            statement = "".join(buffer).strip()
            if statement:
                statements.append(statement + ";")
            buffer = []
        else:
            buffer.append(char)
    residual = "".join(buffer).strip()
    if residual:
        statements.append(residual + ";")
    return statements


def read_statements(stream: IO[str]):
    """Yield ';'-terminated statements from a character stream."""
    buffer: list[str] = []
    for line in stream:
        stripped = line.strip()
        if not buffer and (not stripped or stripped.startswith("--")):
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            yield "".join(buffer).strip()
            buffer = []
    residual = "".join(buffer).strip()
    if residual:
        yield residual


def run_shell(session: EvaSession, stdin: IO[str], stdout: IO[str]) -> int:
    print("EVA reproduction shell - statements end with ';' "
          "(ctrl-D to exit)", file=stdout)
    print(f"table(s): {', '.join(session.storage.table_names())}",
          file=stdout)
    for statement in read_statements(stdin):
        execute_and_render(session, statement, stdout)
    return 0


def run_script(session: EvaSession, path: str, stdout: IO[str]) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        for statement in read_statements(handle):
            print(f"> {statement}", file=stdout)
            execute_and_render(session, statement, stdout)
    return 0


def run_bench(policy_name: str, workload: str, frames: int,
              stdout: IO[str], artifacts: str | None = None,
              execution_mode: str = "vectorized",
              parallelism: int = 0,
              store_path: str | None = None) -> int:
    from repro.vbench.queries import vbench_high, vbench_low
    from repro.vbench.workload import run_workload, workload_session

    video = SyntheticVideo(
        VideoMetadata(name="bench", num_frames=frames, width=960,
                      height=540, fps=25.0, vehicles_per_frame=8.3),
        seed=7)
    queries = (vbench_high if workload == "high" else vbench_low)(
        "bench", frames)
    config = EvaConfig(reuse_policy=ReusePolicy(policy_name),
                       execution_mode=execution_mode,
                       parallelism=parallelism,
                       store_mode="durable" if store_path else "memory",
                       store_path=store_path)
    session = workload_session(video, config)
    result = run_workload(video, queries, session=session,
                          artifacts_dir=artifacts)
    session.close()  # snapshot + flush a durable store; no-op otherwise
    rows = [[f"Q{i + 1}", round(m.total_time, 1), m.rows_returned]
            for i, m in enumerate(result.query_metrics)]
    rows.append(["total", round(result.total_time, 1), ""])
    print(format_table(["query", "time (s, virtual)", "rows"], rows,
                       title=f"VBENCH-{workload.upper()} under "
                             f"{policy_name}"),
          file=stdout)
    print(f"hit rate {result.hit_percentage:.1f}%, view storage "
          f"{result.storage_bytes / 1024:.0f} KiB", file=stdout)
    if artifacts is not None:
        print(f"artifacts: trace.jsonl, metrics.json, metrics.prom in "
              f"{artifacts}", file=stdout)
    return 0


def run_trace(policy_name: str, dataset: str, sql: str,
              jsonl: str | None, stdout: IO[str],
              execution_mode: str = "vectorized",
              chrome_trace: str | None = None,
              parallelism: int = 0) -> int:
    """``repro trace``: run statements and print the span tree(s).

    Multiple ``;``-separated statements run on one session, so the second
    statement's trace shows the reuse the first one materialized; the
    per-statement reuse-decision audit records are printed after each
    tree, and the trace's virtual total is reconciled against the
    simulation clock.
    """
    from repro.obs.sinks import CompositeSink, InMemorySink, JsonlFileSink

    session = make_session(policy_name, dataset,
                           execution_mode=execution_mode,
                           parallelism=parallelism)
    tracer = session.tracer
    tracer.capture_operators = True
    memory = InMemorySink()
    sink = None
    if jsonl is not None:
        sink = JsonlFileSink(jsonl, truncate=True)
        tracer.sink = CompositeSink([memory, sink])
    else:
        tracer.sink = memory
    statements = split_statements(sql)
    if not statements:
        print("error: no statements to trace", file=stdout)
        return 2
    exit_code = 0
    for statement in statements:
        before = session.clock.snapshot()
        try:
            result = session.execute(statement)
        except EvaError as error:
            print(f"error: {error}", file=stdout)
            exit_code = 1
            continue
        trace_id = tracer.last_trace_id
        print(f"-- trace {trace_id}: {len(result)} rows", file=stdout)
        print(tracer.render(trace_id), file=stdout)
        _print_audit(memory, trace_id, stdout)
        spans = tracer.spans(trace_id)
        roots = [s for s in spans if s.parent_id is None]
        span_virtual = sum(s.virtual_seconds for s in roots)
        clock_virtual = sum(
            session.clock.snapshot_delta(before).values())
        print(f"-- virtual time: spans {span_virtual:.3f}s, "
              f"clock {clock_virtual:.3f}s "
              f"(delta {abs(span_virtual - clock_virtual):.6f}s)",
              file=stdout)
    if sink is not None:
        sink.close()
        print(f"-- {sink.events_written} events written to {jsonl}",
              file=stdout)
    if chrome_trace is not None:
        from repro.obs.chrome import write_chrome_trace

        count = write_chrome_trace(chrome_trace, tracer.spans())
        print(f"-- {count} chrome-trace events written to {chrome_trace} "
              f"(synthetic deterministic timeline; open in "
              f"chrome://tracing or Perfetto)", file=stdout)
    return exit_code


def run_profile(policy_name: str, workload: str, frames: int,
                calibration: str, top: int, jsonl: str | None,
                stdout: IO[str],
                execution_mode: str = "vectorized") -> int:
    """``repro profile``: run a VBENCH workload under the continuous
    profiler and print the rollups.

    Output: the top-N operator self-time table and per-model table
    (:func:`repro.obs.profiler.render_profile`), the cost-model drift
    table (believed Eq. 3 per-tuple costs vs costs observed from the
    charged virtual time), and — with ``--calibration apply`` — the
    calibration diff plus any ranking / model-selection decisions the
    re-fitted constants changed (also emitted as ``cost-calibration``
    audit records on the trace sink).
    """
    from repro.obs.calibration import detect_drift, modeled_model_costs
    from repro.obs.profiler import render_profile
    from repro.vbench.queries import vbench_high, vbench_low

    config = EvaConfig(reuse_policy=ReusePolicy(policy_name),
                       execution_mode=execution_mode,
                       cost_calibration=calibration)
    session = EvaSession(config=config)
    video = SyntheticVideo(
        VideoMetadata(name="bench", num_frames=frames, width=960,
                      height=540, fps=25.0, vehicles_per_frame=8.3),
        seed=7)
    session.register_video(video)
    # Operator rollups need per-operator actuals -> instrumented engine.
    session.tracer.capture_operators = True
    queries = (vbench_high if workload == "high" else vbench_low)(
        "bench", frames)
    for sql in queries:
        try:
            session.execute(sql)
        except EvaError as error:
            print(f"error: {error}", file=stdout)
            return 1
    snapshot = session.profiler.snapshot()
    print(render_profile(snapshot, top=top), file=stdout)
    report = session.last_drift_report
    if report is None:
        # --calibration off never runs the in-session pass; compute the
        # drift report from the final profile for display.
        report = detect_drift(
            snapshot, modeled_model_costs(session.catalog),
            ratio_threshold=config.drift_ratio_threshold,
            min_invocations=config.calibration_min_invocations)
    print(report.render(), file=stdout)
    for record in session.calibration_events:
        changes = ", ".join(
            f"{c['model']}: {c['old_cost']:.6f} -> {c['new_cost']:.6f}"
            for c in record.chosen)
        print(f"calibration[{record.trace_id}]: {changes}", file=stdout)
        for entry in record.candidates:
            probe = entry.get("probe")
            if probe and entry.get("changed"):
                print(f"  decision changed: {probe} "
                      f"({entry.get('before') or entry.get('changes')}"
                      f" -> {entry.get('after', '')})", file=stdout)
    if not session.calibration_events and calibration == "apply":
        print("calibration: no drift beyond threshold; constants "
              "unchanged", file=stdout)
    if jsonl is not None:
        count = session.profiler.save_jsonl(jsonl)
        print(f"-- {count} profile events written to {jsonl}",
              file=stdout)
    return 0


def _print_audit(memory, trace_id: str | None, out: IO[str]) -> None:
    records = [e for e in memory.events("reuse_decision")
               if e.get("trace_id") == trace_id]
    for record in records:
        reused = "reused" if record["reused"] else "no reuse"
        line = (f"   audit[{record['kind']}] {record['signature']}: "
                f"{reused}")
        if record.get("missing_fraction") is not None:
            line += f", missing={record['missing_fraction']:.2f}"
        if record.get("difference"):
            line += f", diff={record['difference']}"
        print(line, file=out)


def run_metrics_dump(dataset: str, clients: int, workers: int,
                     stdout: IO[str]) -> int:
    """``repro metrics-dump``: demo workload -> Prometheus exposition.

    Spins up an :class:`~repro.server.EvaServer`, runs the overlapping
    demo workload from ``clients`` clients, and prints the merged
    Prometheus text exposition (per-UDF #TI/#DI/hit rates, virtual-time
    categories, admission/backpressure counters).
    """
    from repro.server import EvaServer

    video = make_video(dataset)
    queries = demo_queries(video.name, video.num_frames)
    server = EvaServer(max_workers=workers)
    server.register_video(video)
    with server.start():
        handles = [server.connect() for _ in range(clients)]
        for offset, handle in enumerate(handles):
            for i in range(len(queries)):
                handle.execute(queries[(i + offset) % len(queries)])
        text = server.prometheus_text()
    print(text, file=stdout, end="")
    return 0


def demo_queries(table: str, frames: int) -> list[str]:
    """A small overlapping exploratory workload (serve-demo clients)."""
    half = frames // 2
    quarter = frames // 4
    return [
        f"SELECT id, label FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE id < {half} AND label = 'car';",
        f"SELECT id, label FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE id >= {quarter} AND id < {3 * quarter} "
        f"AND label = 'car';",
        f"SELECT id FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE label = 'bus' AND id < {half};",
        f"SELECT id, label FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE id < {quarter} AND label = 'car' "
        f"AND CarType(frame, bbox) = 'Nissan';",
    ]


def run_serve_demo(dataset: str, clients: int, workers: int,
                   rounds: int, queue: int, stdout: IO[str], *,
                   pool: int = 0, shards: int | None = None,
                   store_path: str | None = None) -> int:
    """Smoke the multi-client server: N clients, overlapping queries.

    Each client runs the demo workload (rotated so clients start on
    different queries) from its own thread; rejected submissions back
    off by the server's suggested ``retry_after`` and retry.  Prints the
    server stats snapshot, whose off-diagonal hit attribution is the
    cross-client reuse the shared view store buys.  With ``--pool N``
    the same workload runs against a multi-process
    :class:`~repro.server.PoolServer` (N spawned workers, ``--workers``
    threads each, sharded durable view store) and the printed snapshot
    is the fleet-wide merge.
    """
    import shutil
    import tempfile
    import threading
    import time as _time

    from repro.errors import ServerOverloadedError
    from repro.server import EvaServer, PoolServer

    video = make_video(dataset)
    queries = demo_queries(video.name, video.num_frames)
    scratch_store = None
    if pool > 0:
        if store_path is None:
            store_path = tempfile.mkdtemp(prefix="eva-serve-pool-")
            scratch_store = store_path
        config = EvaConfig(workers=pool, shards=shards or 2 * pool,
                           worker_queue_depth=queue,
                           store_mode="durable", store_path=store_path)
        server = PoolServer(config, worker_threads=workers)
    else:
        server = EvaServer(max_workers=workers, max_queue=queue)
    errors: list[str] = []

    def run_client(handle) -> None:
        offset = int(handle.client_id.rsplit("-", 1)[-1])
        for round_no in range(rounds):
            for i in range(len(queries)):
                sql = queries[(i + offset + round_no) % len(queries)]
                while True:
                    try:
                        handle.execute(sql)
                        break
                    except ServerOverloadedError as error:
                        _time.sleep(error.retry_after)
                    except EvaError as error:  # pragma: no cover
                        errors.append(f"{handle.client_id}: {error}")
                        return

    try:
        with server.start():
            server.register_video(video)
            handles = [server.connect(f"demo-{i}")
                       for i in range(clients)]
            threads = [threading.Thread(target=run_client, args=(h,),
                                        name=h.client_id)
                       for h in handles]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = server.stats()
            aggregate = server.aggregate_metrics()
    finally:
        if scratch_store is not None:
            shutil.rmtree(scratch_store, ignore_errors=True)
    for line in errors:
        print(f"error: {line}", file=stdout)
    print(snapshot.format(), file=stdout)
    print(f"speedup upper bound (Eq. 7, all clients): "
          f"{aggregate.speedup_upper_bound():.2f}x", file=stdout)
    return 1 if errors else 0


def run_store(command: str, path: str, stdout: IO[str],
              schema: str | None = None) -> int:
    """``repro store check|stats``: read-only store inspection.

    ``check`` exits non-zero on unrepairable corruption; warnings (torn
    tails, stale partition files) are printed but do not fail, because
    recovery handles them.  ``--schema`` additionally validates the
    store manifest line-by-line against a JSON schema using the
    dependency-free :mod:`repro.obs.schema` validator.
    """
    from repro.store import check_store, render_check, render_stats, \
        store_stats
    from repro.store.layout import StoreLayout

    if command == "check":
        report = check_store(path)
        print(render_check(report), file=stdout)
        exit_code = 0 if report.ok else 1
        if schema is not None and report.ok:
            from repro.obs.schema import (SchemaError, load_schema,
                                          validate_jsonl)

            manifest = StoreLayout(path).manifest_path
            try:
                count = validate_jsonl(manifest, load_schema(schema))
                print(f"manifest: {count} records conform to {schema}",
                      file=stdout)
            except SchemaError as error:
                print(f"manifest schema violation: {error}", file=stdout)
                exit_code = 1
        return exit_code
    stats = store_stats(path)
    print(render_stats(stats), file=stdout)
    return 0 if stats["ok"] else 1


def run_flight(policy_name: str, dataset: str, sql: str,
               stdout: IO[str], *, stage: str | None = None,
               jsonl: str | None = None,
               execution_mode: str = "vectorized",
               parallelism: int = 0,
               store_path: str | None = None,
               slo_p50: float | None = None,
               slo_p99: float | None = None) -> int:
    """``repro flight``: run statements and dump their flight records.

    Every SELECT yields one wide per-query record (stage breakdown,
    lock waits, batcher/store-io/morsel telemetry, Eq. 3/4 costs);
    ``--stage`` filters by dominant stage, ``--jsonl`` exports the raw
    records, and ``--slo-p50/--slo-p99`` arm the violation column.
    """
    from repro.obs.flight import STORE_IO_KINDS
    from repro.obs.sinks import InMemorySink
    from repro.obs.slo import STAGES

    if stage is not None and stage not in STAGES:
        print(f"error: unknown stage {stage!r} (choose from "
              f"{', '.join(STAGES)})", file=stdout)
        return 2
    policy = ReusePolicy(policy_name.lower())
    session = EvaSession(config=EvaConfig(
        reuse_policy=policy, execution_mode=execution_mode,
        parallelism=parallelism,
        store_mode="durable" if store_path else "memory",
        store_path=store_path,
        slo_latency_p50=slo_p50, slo_latency_p99=slo_p99))
    session.register_video(make_video(dataset))
    memory = InMemorySink()
    session.tracer.sink = memory
    statements = split_statements(sql)
    if not statements:
        print("error: no statements to record", file=stdout)
        return 2
    exit_code = 0
    try:
        for statement in statements:
            try:
                session.execute(statement)
            except EvaError as error:
                print(f"error: {error}", file=stdout)
                exit_code = 1
    finally:
        session.close()
    records = memory.events("flight")
    if stage is not None:
        records = [r for r in records if r["dominant_stage"] == stage]
    rows = []
    for record in records:
        stages = record["stages"]
        rows.append([
            record["flight_id"],
            record["query"][:32] + ("..." if len(record["query"]) > 32
                                    else ""),
            record["rows_returned"],
            f"{record['total_s'] * 1e3:.1f}",
            record["dominant_stage"],
            "yes" if record["over_slo"] else "",
            f"{stages['queueing'] * 1e3:.2f}",
            f"{stages['contention'] * 1e3:.2f}",
            f"{stages['inference'] * 1e3:.2f}",
            f"{stages['store-io'] * 1e3:.2f}",
            f"{stages['compute'] * 1e3:.2f}",
            "hit" if record["cache_hit"]
            else ("reuse" if record["reused"] else ""),
        ])
    print(format_table(
        ["flight", "query", "rows", "total ms", "dominant", "over-slo",
         "queue ms", "lock ms", "infer ms", "io ms", "compute ms",
         "reuse"],
        rows, title="flight records"), file=stdout)
    totals = {name: sum(r["stages"][name] for r in records)
              for name in STAGES}
    attributed = ", ".join(f"{name} {totals[name] * 1e3:.1f}ms"
                           for name in STAGES)
    print(f"-- {len(records)} records; attributed wall time: "
          f"{attributed}", file=stdout)
    io_totals = {kind: sum(r["store_io"][kind] for r in records)
                 for kind in STORE_IO_KINDS}
    if any(io_totals.values()):
        detail = ", ".join(f"{k} {v * 1e3:.1f}ms"
                           for k, v in io_totals.items() if v)
        print(f"-- store io: {detail}", file=stdout)
    if jsonl is not None:
        import json

        with open(jsonl, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"-- {len(records)} flight records written to {jsonl}",
              file=stdout)
    return exit_code


def run_lineage(policy_name: str, dataset: str, sql: str,
                stdout: IO[str], *, view: str | None = None,
                graph: str | None = None, jsonl: str | None = None,
                execution_mode: str = "vectorized",
                parallelism: int = 0,
                store_path: str | None = None) -> int:
    """``repro lineage``: run statements and report view provenance.

    Prints the ledger's per-view accounting (what each materialized
    view cost, who reads it, and what it saves — Eq. 3 virtual
    seconds), plus the wasted-materialization report.  ``--view`` drills
    into one view's creation provenance, reader attribution, and
    derivation edges; ``--graph dot|json`` exports the lineage DAG;
    ``--jsonl`` writes the restart-stable records
    (``tests/schemas/lineage.schema.json``).
    """
    import json

    policy = ReusePolicy(policy_name.lower())
    session = EvaSession(config=EvaConfig(
        reuse_policy=policy, execution_mode=execution_mode,
        parallelism=parallelism,
        store_mode="durable" if store_path else "memory",
        store_path=store_path))
    session.register_video(make_video(dataset))
    exit_code = 0
    try:
        for statement in split_statements(sql):
            try:
                session.execute(statement)
            except EvaError as error:
                print(f"error: {error}", file=stdout)
                exit_code = 1
        ledger = session.ledger
        if ledger is None:
            print("error: the view ledger is disabled "
                  "(config.view_ledger)", file=stdout)
            return 2
        if view is not None:
            record = ledger.export_current(view) \
                or ledger.export_record(view)
            if record is None:
                print(f"error: no lineage for view {view!r}",
                      file=stdout)
                return 2
            _print_lineage_record(record, stdout)
            return exit_code
        if graph is not None:
            if graph == "dot":
                print(ledger.to_dot(), file=stdout, end="")
            else:
                print(json.dumps(ledger.graph(), indent=2, sort_keys=True),
                      file=stdout)
            return exit_code
        ranked = ledger.ranking()
        rows = []
        for record in ranked:
            readers = record["readers"]
            rows.append([
                record["lineage_id"],
                record["status"],
                record["invocations_paid"],
                f"{record['materialize_vs']:.3f}",
                record["hits"],
                record["misses"],
                f"{record['saved_vs']:.3f}",
                f"{record['net_benefit']:+.3f}",
                len(readers),
                record["bytes"],
            ])
        print(format_table(
            ["view#gen", "status", "paid", "cost vs", "hits", "misses",
             "saved vs", "net vs", "readers", "bytes"],
            rows, title="view lineage (net benefit, Eq. 3 virtual "
                        "seconds)"), file=stdout)
        wasted = ledger.wasted()
        if wasted:
            print("-- wasted materializations (never re-read):",
                  file=stdout)
            for record in wasted:
                print(f"   {record['lineage_id']}: paid "
                      f"{record['invocations_paid']} invocations "
                      f"({record['materialize_vs']:.3f} virtual s), "
                      f"0 hits", file=stdout)
        else:
            print("-- no wasted materializations: every view was "
                  "re-read at least once", file=stdout)
        if jsonl is not None:
            records = ledger.export_records()
            with open(jsonl, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True)
                                 + "\n")
            print(f"-- {len(records)} lineage records written to "
                  f"{jsonl}", file=stdout)
    finally:
        session.close()
    return exit_code


def _print_lineage_record(record: dict, out: IO[str]) -> None:
    """The ``repro lineage --view`` drill-down."""
    created = record["created"]
    out.write(f"{record['lineage_id']}  [{record['status']}]\n")
    out.write(f"  model/video   {record['model']} @ {record['video']}\n")
    if record["frame_range"]:
        lo, hi = record["frame_range"]
        out.write(f"  frame range   [{lo}, {hi}]\n")
    out.write(f"  created by    query={created['query']!r}\n")
    out.write(f"                trace={created['trace_id']} "
              f"flight={created['flight_id']} "
              f"client={created['client_id']} seq={created['seq']}\n")
    out.write(f"  predicate     {created['predicate']}\n")
    out.write(f"  invested      {record['invocations_paid']} "
              f"invocations, {record['fresh_rows']} rows, "
              f"{record['materialize_vs']:.3f} virtual s, "
              f"{record['bytes']} bytes\n")
    out.write(f"  served        {record['hits']} hits / "
              f"{record['misses']} misses, "
              f"{record['rows_served']} rows, "
              f"saved {record['saved_vs']:.3f} virtual s\n")
    out.write(f"  net benefit   {record['net_benefit']:+.3f} virtual s\n")
    readers = record["readers"]
    if readers:
        attribution = ", ".join(f"{client} ({hits} hits)"
                                for client, hits in readers.items())
        out.write(f"  readers       {attribution}\n")
    else:
        out.write("  readers       none (wasted materialization)\n")
    if record["edges"]:
        out.write("  derived from\n")
        for edge in record["edges"]:
            out.write(f"    {edge['op']:<6} {edge['source']}\n")


def _top_frame(server, *, clear: bool) -> str:
    """One rendered frame of the ``repro top`` dashboard."""
    snapshot = server.stats()
    slo = server.slo_snapshot()
    flight = server.flight_stats()
    lines = []
    if clear:
        lines.append("\x1b[2J\x1b[H")
    lines.append(f"eva top - uptime {snapshot.uptime:6.1f}s   "
                 f"clients {len(snapshot.clients)}   "
                 f"workers {snapshot.workers}")
    lines.append(f"queries   submitted {snapshot.submitted}  "
                 f"completed {snapshot.completed}  "
                 f"failed {snapshot.failed}  "
                 f"rejected {snapshot.rejected}   "
                 f"qps {snapshot.aggregate_qps:.1f}")
    lines.append(f"queue     depth {snapshot.queue_depth} "
                 f"(peak {snapshot.peak_queue_depth})   "
                 f"hit rate {snapshot.hit_percentage:.1f}%   "
                 f"views {snapshot.num_views} "
                 f"({snapshot.view_storage_bytes / 1024:.0f} KiB)")
    wait = snapshot.admission_wait
    if wait.get("count"):
        lines.append(f"admission p50 {wait['p50_s'] * 1e3:.2f}ms  "
                     f"p99 {wait['p99_s'] * 1e3:.2f}ms  "
                     f"max {wait['max_s'] * 1e3:.2f}ms  "
                     f"({wait['count']} waits)")
    latency = slo.latency
    lines.append(f"latency   p50 {latency.p50 * 1e3:.1f}ms  "
                 f"p95 {latency.p95 * 1e3:.1f}ms  "
                 f"p99 {latency.p99 * 1e3:.1f}ms  "
                 f"({latency.count} queries)")
    if slo.enabled:
        targets = []
        if slo.target_p50 is not None:
            targets.append(f"p50<{slo.target_p50 * 1e3:.0f}ms "
                           f"burn {slo.burn_rate_p50:.2f}")
        if slo.target_p99 is not None:
            targets.append(f"p99<{slo.target_p99 * 1e3:.0f}ms "
                           f"burn {slo.burn_rate_p99:.2f}")
        lines.append(f"slo       {'   '.join(targets)}   "
                     f"violations {slo.over_p99}")
    dominant = flight["dominant"]
    if flight["records"]:
        share = ", ".join(
            f"{name} {dominant[name]}"
            for name in sorted(dominant, key=dominant.get, reverse=True)
            if dominant[name])
        lines.append(f"dominant  {share}   "
                     f"(over-slo {flight['over_slo']})")
    ranked = sorted(
        snapshot.lock_waits.items(),
        key=lambda kv: kv[1]["read_s"] + kv[1]["write_s"], reverse=True)
    if ranked:
        lines.append("lock class                          "
                     "waits   read ms  write ms  max-wq")
        for name, waits in ranked[:5]:
            lines.append(
                f"  {name:<32} {waits['waits']:>6} "
                f"{waits['read_s'] * 1e3:>9.2f} "
                f"{waits['write_s'] * 1e3:>9.2f} "
                f"{waits.get('writers_waiting_high_water', 0):>7}")
    views = sorted(server.ledger_snapshot(),
                   key=lambda row: (-row["net_benefit"], row["id"]))
    if views:
        lines.append("top views                           "
                     "   hits    net vs   idle s  status")
        for row in views[:5]:
            lines.append(
                f"  {row['id'][:34]:<34} {row['hits']:>6} "
                f"{row['net_benefit']:>+9.3f} "
                f"{row['idle_s']:>8.1f}  {row['status']}")
    return "\n".join(lines)


def run_top(dataset: str, clients: int, workers: int, duration: float,
            interval: float, once: bool, stdout: IO[str], *,
            slo_p50: float | None = None,
            slo_p99: float | None = None,
            pool: int = 0, shards: int | None = None,
            store_path: str | None = None) -> int:
    """``repro top``: live terminal dashboard over a running server.

    Spins up an in-process :class:`~repro.server.EvaServer` — or, with
    ``--pool N``, a multi-process :class:`~repro.server.PoolServer`
    with N spawned workers over a sharded durable view store — drives
    the overlapping demo workload from ``clients`` background threads,
    and refreshes a QPS / queue / latency-quantile / lock-contention /
    SLO view every ``interval`` seconds; in pool mode every number on
    the dashboard is the fleet-wide merge of the per-worker telemetry.
    ``--once`` renders a single frame after the workload settles and
    exits (CI smoke mode).
    """
    import shutil
    import tempfile
    import threading
    import time as _time

    from repro.errors import ServerOverloadedError
    from repro.server import EvaServer, PoolServer

    video = make_video(dataset)
    queries = demo_queries(video.name, video.num_frames)
    scratch_store = None
    if pool > 0:
        if store_path is None:
            store_path = tempfile.mkdtemp(prefix="eva-top-pool-")
            scratch_store = store_path
        config = EvaConfig(slo_latency_p50=slo_p50,
                           slo_latency_p99=slo_p99,
                           workers=pool, shards=shards or 2 * pool,
                           store_mode="durable", store_path=store_path)
        server = PoolServer(config, worker_threads=workers)
    else:
        config = EvaConfig(slo_latency_p50=slo_p50,
                           slo_latency_p99=slo_p99)
        server = EvaServer(config, max_workers=workers)
    stop = threading.Event()

    def run_client(handle, offset: int) -> None:
        i = 0
        while not stop.is_set():
            sql = queries[(i + offset) % len(queries)]
            i += 1
            try:
                handle.execute(sql)
            except ServerOverloadedError as error:
                _time.sleep(error.retry_after)
            except EvaError:  # pragma: no cover - workload best-effort
                return

    try:
        with server.start():
            # Pool workers exist only after start(), so registration
            # (broadcast in pool mode) happens inside the with-block.
            server.register_video(video)
            handles = [server.connect() for _ in range(clients)]
            threads = [threading.Thread(target=run_client, args=(h, i),
                                        name=f"top-client-{i}",
                                        daemon=True)
                       for i, h in enumerate(handles)]
            for thread in threads:
                thread.start()
            try:
                deadline = _time.monotonic() + duration
                if once:
                    # Let the workload produce a few records, then render.
                    while (server.stats().completed < clients
                           and _time.monotonic() < deadline):
                        _time.sleep(0.05)
                    print(_top_frame(server, clear=False), file=stdout)
                else:
                    while _time.monotonic() < deadline:
                        print(_top_frame(server,
                                         clear=stdout.isatty()),
                              file=stdout)
                        _time.sleep(interval)
                    print(_top_frame(server, clear=stdout.isatty()),
                          file=stdout)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=5.0)
    finally:
        if scratch_store is not None:
            shutil.rmtree(scratch_store, ignore_errors=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EVA (SIGMOD 2022) reproduction - exploratory video "
                    "analytics with materialized UDF views")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--policy", default="eva",
                       choices=[p.value for p in ReusePolicy],
                       help="reuse policy (default: eva)")
        p.add_argument("--dataset", default="ua_detrac:short",
                       help="ua_detrac[:size] | jackson | "
                            "synthetic:<frames>[:<density>]")
        p.add_argument("--execution-mode", default="vectorized",
                       choices=["vectorized", "row"],
                       help="column-at-a-time kernels (default) or the "
                            "row-at-a-time interpreter")
        p.add_argument("--parallelism", type=int, default=0,
                       help="morsel-driven worker threads per query "
                            "(0/1 = serial; results and virtual costs "
                            "are identical either way)")
        p.add_argument("--store-path", default=None, metavar="DIR",
                       help="back the session with a durable view store "
                            "at DIR (WAL + snapshots; reuse state "
                            "survives restarts)")

    shell = sub.add_parser("shell", help="interactive EVAQL shell")
    common(shell)
    run = sub.add_parser("run", help="execute an EVAQL script")
    common(run)
    run.add_argument("script", help="path to a .sql file")
    bench = sub.add_parser("bench", help="run a VBENCH workload")
    bench.add_argument("--policy", default="eva",
                       choices=[p.value for p in ReusePolicy])
    bench.add_argument("--workload", default="high",
                       choices=["high", "low"])
    bench.add_argument("--frames", type=int, default=2000)
    bench.add_argument("--artifacts", default=None, metavar="DIR",
                       help="write trace.jsonl / metrics.json / "
                            "metrics.prom into DIR")
    bench.add_argument("--execution-mode", default="vectorized",
                       choices=["vectorized", "row"],
                       help="column-at-a-time kernels (default) or the "
                            "row-at-a-time interpreter")
    bench.add_argument("--parallelism", type=int, default=0,
                       help="morsel-driven worker threads per query "
                            "(0/1 = serial)")
    bench.add_argument("--store-path", default=None, metavar="DIR",
                       help="run against a durable view store at DIR "
                            "(snapshot + flush on completion)")
    trace = sub.add_parser(
        "trace",
        help="run statement(s) and print the hierarchical span tree "
             "with reuse-decision audit records")
    common(trace)
    trace.add_argument("query",
                       help="';'-separated EVAQL statement(s); they "
                            "share one session, so later statements "
                            "show the reuse earlier ones materialized")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also export every event as JSON lines")
    trace.add_argument("--chrome-trace", default=None, metavar="PATH",
                       help="export the recorded spans as a Chrome "
                            "trace (chrome://tracing / Perfetto) on a "
                            "synthetic deterministic timeline")
    profile = sub.add_parser(
        "profile",
        help="run a VBENCH workload under the continuous profiler and "
             "print operator/model rollups, the cost-drift table, and "
             "any calibration diff")
    profile.add_argument("--policy", default="eva",
                         choices=[p.value for p in ReusePolicy])
    profile.add_argument("--workload", default="high",
                         choices=["high", "low"])
    profile.add_argument("--frames", type=int, default=2000)
    profile.add_argument("--calibration", default="report",
                         choices=["off", "report", "apply"],
                         help="cost-model calibration mode (default: "
                              "report drift without re-fitting)")
    profile.add_argument("--top", type=int, default=10,
                         help="rows per rollup table")
    profile.add_argument("--jsonl", default=None, metavar="PATH",
                         help="also persist the profile rollups as "
                              "JSON lines")
    profile.add_argument("--execution-mode", default="vectorized",
                         choices=["vectorized", "row"],
                         help="column-at-a-time kernels (default) or "
                              "the row-at-a-time interpreter")
    metrics = sub.add_parser(
        "metrics-dump",
        help="run the multi-client demo workload and print the "
             "Prometheus text exposition")
    metrics.add_argument("--dataset", default="synthetic:240",
                         help="ua_detrac[:size] | jackson | "
                              "synthetic:<frames>[:<density>]")
    metrics.add_argument("--clients", type=int, default=2)
    metrics.add_argument("--workers", type=int, default=2)
    serve = sub.add_parser(
        "serve-demo",
        help="smoke the multi-client query server (shared reuse state)")
    serve.add_argument("--dataset", default="synthetic:240",
                       help="ua_detrac[:size] | jackson | "
                            "synthetic:<frames>[:<density>]")
    serve.add_argument("--clients", type=int, default=4)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--pool", type=int, default=0, metavar="N",
                       help="serve from N spawned worker processes "
                            "(PoolServer) instead of one in-process "
                            "server; --workers becomes threads per "
                            "worker")
    serve.add_argument("--shards", type=int, default=None,
                       help="view-store shards in --pool mode "
                            "(default: 2x the worker count)")
    serve.add_argument("--store-path", default=None, metavar="DIR",
                       help="durable store directory for --pool mode "
                            "(default: a scratch directory)")
    serve.add_argument("--rounds", type=int, default=2,
                       help="workload repetitions per client")
    serve.add_argument("--queue", type=int, default=16,
                       help="admission queue bound")
    flight = sub.add_parser(
        "flight",
        help="run statement(s) and dump their per-query flight records "
             "(stage breakdown, lock waits, store io, Eq. 3/4 costs)")
    common(flight)
    flight.add_argument("query",
                        help="';'-separated EVAQL statement(s) sharing "
                             "one session")
    flight.add_argument("--stage", default=None,
                        help="only records whose dominant stage matches "
                             "(queueing | contention | inference | "
                             "store-io | compute)")
    flight.add_argument("--jsonl", default=None, metavar="PATH",
                        help="export the raw flight records as JSON "
                             "lines")
    flight.add_argument("--slo-p50", type=float, default=None,
                        help="p50 latency target in seconds")
    flight.add_argument("--slo-p99", type=float, default=None,
                        help="p99 latency target in seconds (arms the "
                             "over-slo column)")
    lineage = sub.add_parser(
        "lineage",
        help="run statement(s) and report per-view provenance: what "
             "each materialized view cost, who reads it, what it saves "
             "(Eq. 3), and the derivation DAG")
    common(lineage)
    lineage.add_argument("query",
                         help="';'-separated EVAQL statement(s) sharing "
                              "one session")
    lineage.add_argument("--view", default=None, metavar="NAME",
                         help="drill into one view (name or lineage "
                              "id): creation provenance, reader "
                              "attribution, derivation edges")
    lineage.add_argument("--graph", default=None,
                         choices=["dot", "json"],
                         help="export the lineage DAG instead of the "
                              "table")
    lineage.add_argument("--jsonl", default=None, metavar="PATH",
                         help="write the restart-stable ledger records "
                              "as JSON lines "
                              "(tests/schemas/lineage.schema.json)")
    top = sub.add_parser(
        "top",
        help="live refreshing dashboard over a running multi-client "
             "server: QPS, queue depth, hit rate, latency quantiles, "
             "lock contention, SLO burn")
    top.add_argument("--dataset", default="synthetic:240",
                     help="ua_detrac[:size] | jackson | "
                          "synthetic:<frames>[:<density>]")
    top.add_argument("--clients", type=int, default=4)
    top.add_argument("--workers", type=int, default=4)
    top.add_argument("--duration", type=float, default=10.0,
                     help="seconds to keep the dashboard running")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period in seconds")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (CI smoke mode)")
    top.add_argument("--slo-p50", type=float, default=None,
                     help="p50 latency target in seconds")
    top.add_argument("--slo-p99", type=float, default=None,
                     help="p99 latency target in seconds")
    top.add_argument("--pool", type=int, default=0, metavar="N",
                     help="drive a PoolServer with N spawned worker "
                          "processes (--workers becomes threads per "
                          "worker); the dashboard shows fleet-wide "
                          "merged telemetry")
    top.add_argument("--shards", type=int, default=None,
                     help="view-store shards in --pool mode "
                          "(default: 2x the worker count)")
    top.add_argument("--store-path", default=None, metavar="DIR",
                     help="durable store directory for --pool mode "
                          "(default: a scratch directory)")
    store = sub.add_parser(
        "store",
        help="inspect a durable view store directory (read-only)")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    check = store_sub.add_parser(
        "check", help="integrity pass: checksums, torn tails, manifest "
                      "vs control-log consistency")
    check.add_argument("path", help="store directory")
    check.add_argument("--schema", default=None, metavar="PATH",
                       help="also validate manifest.jsonl against this "
                            "JSON schema")
    stats = store_sub.add_parser(
        "stats", help="tier/partition/WAL sizes and audit counters")
    stats.add_argument("path", help="store directory")
    return parser


def main(argv: list[str] | None = None, stdin: IO[str] | None = None,
         stdout: IO[str] | None = None) -> int:
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "bench":
        return run_bench(args.policy, args.workload, args.frames, stdout,
                         artifacts=args.artifacts,
                         execution_mode=args.execution_mode,
                         parallelism=args.parallelism,
                         store_path=args.store_path)
    if args.command == "store":
        try:
            return run_store(args.store_command, args.path, stdout,
                             schema=getattr(args, "schema", None))
        except EvaError as error:
            print(f"error: {error}", file=stdout)
            return 1
    if args.command == "serve-demo":
        try:
            return run_serve_demo(args.dataset, args.clients, args.workers,
                                  args.rounds, args.queue, stdout,
                                  pool=args.pool, shards=args.shards,
                                  store_path=args.store_path)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    if args.command == "trace":
        try:
            return run_trace(args.policy, args.dataset, args.query,
                             args.jsonl, stdout,
                             execution_mode=args.execution_mode,
                             chrome_trace=args.chrome_trace,
                             parallelism=args.parallelism)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    if args.command == "profile":
        try:
            return run_profile(args.policy, args.workload, args.frames,
                               args.calibration, args.top, args.jsonl,
                               stdout,
                               execution_mode=args.execution_mode)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    if args.command == "flight":
        try:
            return run_flight(args.policy, args.dataset, args.query,
                              stdout, stage=args.stage, jsonl=args.jsonl,
                              execution_mode=args.execution_mode,
                              parallelism=args.parallelism,
                              store_path=args.store_path,
                              slo_p50=args.slo_p50, slo_p99=args.slo_p99)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    if args.command == "lineage":
        try:
            return run_lineage(args.policy, args.dataset, args.query,
                               stdout, view=args.view, graph=args.graph,
                               jsonl=args.jsonl,
                               execution_mode=args.execution_mode,
                               parallelism=args.parallelism,
                               store_path=args.store_path)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    if args.command == "top":
        try:
            return run_top(args.dataset, args.clients, args.workers,
                           args.duration, args.interval, args.once,
                           stdout, slo_p50=args.slo_p50,
                           slo_p99=args.slo_p99, pool=args.pool,
                           shards=args.shards,
                           store_path=args.store_path)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    if args.command == "metrics-dump":
        try:
            return run_metrics_dump(args.dataset, args.clients,
                                    args.workers, stdout)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    try:
        session = make_session(args.policy, args.dataset,
                               execution_mode=args.execution_mode,
                               parallelism=args.parallelism,
                               store_path=args.store_path)
    except ValueError as error:
        print(f"error: {error}", file=stdout)
        return 2
    try:
        if args.command == "shell":
            return run_shell(session, stdin, stdout)
        return run_script(session, args.script, stdout)
    finally:
        session.close()
