"""Command-line interface: an EVAQL shell, script runner, and bench driver.

Usage::

    python -m repro shell  --dataset ua_detrac:short
    python -m repro run queries.sql --dataset jackson --policy none
    python -m repro bench --workload high --frames 2000
    python -m repro serve-demo --clients 6 --workers 4

The shell reads statements terminated by ``;`` (multi-line input is fine),
prints result tables, and reports the virtual execution time and reuse hit
rate after each query.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.config import EvaConfig, ReusePolicy
from repro.errors import EvaError
from repro.session import EvaSession
from repro.types import QueryResult, VideoMetadata
from repro.vbench.reporting import format_table
from repro.video.datasets import jackson, ua_detrac
from repro.video.synthetic import SyntheticVideo

#: Rows printed per result before truncation in the shell.
MAX_ROWS_SHOWN = 20


def make_video(spec: str) -> SyntheticVideo:
    """Parse a ``--dataset`` spec into a synthetic video.

    Accepted forms: ``ua_detrac[:short|medium|long]``, ``jackson``, and
    ``synthetic:<frames>[:<vehicles_per_frame>]``.
    """
    parts = spec.split(":")
    kind = parts[0].lower()
    if kind == "ua_detrac":
        size = parts[1] if len(parts) > 1 else "medium"
        return ua_detrac(size)
    if kind == "jackson":
        return jackson()
    if kind == "synthetic":
        if len(parts) < 2:
            raise ValueError("synthetic dataset needs a frame count, "
                             "e.g. synthetic:2000")
        frames = int(parts[1])
        density = float(parts[2]) if len(parts) > 2 else 8.3
        return SyntheticVideo(
            VideoMetadata(name="synthetic", num_frames=frames, width=960,
                          height=540, fps=25.0,
                          vehicles_per_frame=density),
            seed=7)
    raise ValueError(f"unknown dataset spec {spec!r}")


def make_session(policy_name: str, dataset: str) -> EvaSession:
    policy = ReusePolicy(policy_name.lower())
    session = EvaSession(config=EvaConfig(reuse_policy=policy))
    session.register_video(make_video(dataset))
    return session


def render_result(result: QueryResult, out: IO[str],
                  max_rows: int = MAX_ROWS_SHOWN) -> None:
    if not result.columns:
        print("(no output)", file=out)
        return
    shown = result.rows[:max_rows]
    print(format_table(result.columns,
                       [[_short(v) for v in row] for row in shown]),
          file=out)
    if len(result.rows) > max_rows:
        print(f"... {len(result.rows) - max_rows} more rows", file=out)


def _short(value) -> str:
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


def execute_and_render(session: EvaSession, statement: str,
                       out: IO[str]) -> None:
    try:
        result = session.execute(statement)
    except EvaError as error:
        print(f"error: {error}", file=out)
        return
    render_result(result, out)
    metrics = session.last_query_metrics()
    if metrics is not None and metrics.query_text == statement:
        print(f"-- {len(result)} rows, {metrics.total_time:.2f}s virtual, "
              f"session hit rate {session.hit_percentage():.1f}%",
              file=out)


def read_statements(stream: IO[str]):
    """Yield ';'-terminated statements from a character stream."""
    buffer: list[str] = []
    for line in stream:
        stripped = line.strip()
        if not buffer and (not stripped or stripped.startswith("--")):
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            yield "".join(buffer).strip()
            buffer = []
    residual = "".join(buffer).strip()
    if residual:
        yield residual


def run_shell(session: EvaSession, stdin: IO[str], stdout: IO[str]) -> int:
    print("EVA reproduction shell - statements end with ';' "
          "(ctrl-D to exit)", file=stdout)
    print(f"table(s): {', '.join(session.storage.table_names())}",
          file=stdout)
    for statement in read_statements(stdin):
        execute_and_render(session, statement, stdout)
    return 0


def run_script(session: EvaSession, path: str, stdout: IO[str]) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        for statement in read_statements(handle):
            print(f"> {statement}", file=stdout)
            execute_and_render(session, statement, stdout)
    return 0


def run_bench(policy_name: str, workload: str, frames: int,
              stdout: IO[str]) -> int:
    from repro.vbench.queries import vbench_high, vbench_low
    from repro.vbench.workload import run_workload

    video = SyntheticVideo(
        VideoMetadata(name="bench", num_frames=frames, width=960,
                      height=540, fps=25.0, vehicles_per_frame=8.3),
        seed=7)
    queries = (vbench_high if workload == "high" else vbench_low)(
        "bench", frames)
    result = run_workload(video, queries,
                          EvaConfig(reuse_policy=ReusePolicy(policy_name)))
    rows = [[f"Q{i + 1}", round(m.total_time, 1), m.rows_returned]
            for i, m in enumerate(result.query_metrics)]
    rows.append(["total", round(result.total_time, 1), ""])
    print(format_table(["query", "time (s, virtual)", "rows"], rows,
                       title=f"VBENCH-{workload.upper()} under "
                             f"{policy_name}"),
          file=stdout)
    print(f"hit rate {result.hit_percentage:.1f}%, view storage "
          f"{result.storage_bytes / 1024:.0f} KiB", file=stdout)
    return 0


def demo_queries(table: str, frames: int) -> list[str]:
    """A small overlapping exploratory workload (serve-demo clients)."""
    half = frames // 2
    quarter = frames // 4
    return [
        f"SELECT id, label FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE id < {half} AND label = 'car';",
        f"SELECT id, label FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE id >= {quarter} AND id < {3 * quarter} "
        f"AND label = 'car';",
        f"SELECT id FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE label = 'bus' AND id < {half};",
        f"SELECT id, label FROM {table} CROSS APPLY "
        f"FastRCNNObjectDetector(frame) "
        f"WHERE id < {quarter} AND label = 'car' "
        f"AND CarType(frame, bbox) = 'Nissan';",
    ]


def run_serve_demo(dataset: str, clients: int, workers: int,
                   rounds: int, queue: int, stdout: IO[str]) -> int:
    """Smoke the multi-client server: N clients, overlapping queries.

    Each client runs the demo workload (rotated so clients start on
    different queries) from its own thread; rejected submissions back
    off by the server's suggested ``retry_after`` and retry.  Prints the
    server stats snapshot, whose off-diagonal hit attribution is the
    cross-client reuse the shared view store buys.
    """
    import threading
    import time as _time

    from repro.errors import ServerOverloadedError
    from repro.server import EvaServer

    video = make_video(dataset)
    queries = demo_queries(video.name, video.num_frames)
    server = EvaServer(max_workers=workers, max_queue=queue)
    server.register_video(video)
    errors: list[str] = []

    def run_client(handle) -> None:
        offset = int(handle.client_id.rsplit("-", 1)[-1])
        for round_no in range(rounds):
            for i in range(len(queries)):
                sql = queries[(i + offset + round_no) % len(queries)]
                while True:
                    try:
                        handle.execute(sql)
                        break
                    except ServerOverloadedError as error:
                        _time.sleep(error.retry_after)
                    except EvaError as error:  # pragma: no cover
                        errors.append(f"{handle.client_id}: {error}")
                        return

    with server.start():
        handles = [server.connect() for _ in range(clients)]
        threads = [threading.Thread(target=run_client, args=(h,),
                                    name=h.client_id)
                   for h in handles]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = server.stats()
    for line in errors:
        print(f"error: {line}", file=stdout)
    print(snapshot.format(), file=stdout)
    aggregate = server.aggregate_metrics()
    print(f"speedup upper bound (Eq. 7, all clients): "
          f"{aggregate.speedup_upper_bound():.2f}x", file=stdout)
    return 1 if errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EVA (SIGMOD 2022) reproduction - exploratory video "
                    "analytics with materialized UDF views")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--policy", default="eva",
                       choices=[p.value for p in ReusePolicy],
                       help="reuse policy (default: eva)")
        p.add_argument("--dataset", default="ua_detrac:short",
                       help="ua_detrac[:size] | jackson | "
                            "synthetic:<frames>[:<density>]")

    shell = sub.add_parser("shell", help="interactive EVAQL shell")
    common(shell)
    run = sub.add_parser("run", help="execute an EVAQL script")
    common(run)
    run.add_argument("script", help="path to a .sql file")
    bench = sub.add_parser("bench", help="run a VBENCH workload")
    bench.add_argument("--policy", default="eva",
                       choices=[p.value for p in ReusePolicy])
    bench.add_argument("--workload", default="high",
                       choices=["high", "low"])
    bench.add_argument("--frames", type=int, default=2000)
    serve = sub.add_parser(
        "serve-demo",
        help="smoke the multi-client query server (shared reuse state)")
    serve.add_argument("--dataset", default="synthetic:240",
                       help="ua_detrac[:size] | jackson | "
                            "synthetic:<frames>[:<density>]")
    serve.add_argument("--clients", type=int, default=4)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--rounds", type=int, default=2,
                       help="workload repetitions per client")
    serve.add_argument("--queue", type=int, default=16,
                       help="admission queue bound")
    return parser


def main(argv: list[str] | None = None, stdin: IO[str] | None = None,
         stdout: IO[str] | None = None) -> int:
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "bench":
        return run_bench(args.policy, args.workload, args.frames, stdout)
    if args.command == "serve-demo":
        try:
            return run_serve_demo(args.dataset, args.clients, args.workers,
                                  args.rounds, args.queue, stdout)
        except ValueError as error:
            print(f"error: {error}", file=stdout)
            return 2
    try:
        session = make_session(args.policy, args.dataset)
    except ValueError as error:
        print(f"error: {error}", file=stdout)
        return 2
    if args.command == "shell":
        return run_shell(session, stdin, stdout)
    return run_script(session, args.script, stdout)
